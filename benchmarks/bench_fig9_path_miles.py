"""Figure 9 bench: path-mile CDFs and per-country averages."""

import numpy as np
import pytest

from repro.analysis.distancefx import analyze_country_path_miles, analyze_path_miles
from repro.synth.countries import TOP10_CODES


def test_fig9a_path_miles(benchmark, bench_dataset, bench_geo,
                          bench_results, artifact_sink):
    def run():
        return analyze_path_miles(
            bench_dataset, bench_geo, np.random.default_rng(2), max_pairs=100_000
        )

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(artifact_sink("fig9", bench_results))
    # Paper: ~58% of friends within 1000 miles, ~15% within 10 miles;
    # reciprocal pairs closest, random pairs farthest.
    assert analysis.friends_within_1000mi() == pytest.approx(0.58, abs=0.15)
    assert analysis.friends_within_10mi() == pytest.approx(0.15, abs=0.10)
    assert analysis.ordering_holds(1000.0)
    assert analysis.ordering_holds(100.0)


def test_fig9b_country_path_miles(benchmark, bench_dataset, bench_geo):
    stats = benchmark(
        analyze_country_path_miles, bench_dataset, bench_geo, list(TOP10_CODES)
    )
    # Paper: no pattern relating country size to average path mile —
    # small countries are not uniformly short-distance (cross-border
    # edges dominate GB/CA).
    averages = {code: stats.average(code) for code in TOP10_CODES}
    assert all(np.isfinite(v) and v > 0 for v in averages.values())
    # GB's average is not much below the US's despite the tiny country.
    assert averages["GB"] > 0.3 * averages["US"]
