"""Extension bench: hub centrality via attack/failure curves.

Quantifies Section 3.3.1's "hubs play a central role" with the
Albert-Jeong-Barabási experiment on the crawled graph, and contrasts the
Google+ shape against the Twitter-like baseline (whose media hubs carry
even more of the connectivity).
"""

import numpy as np

from repro.analysis.robustness import analyze_robustness
from repro.synth.baselines import generate_twitter_like

FRACTIONS = np.array([0.0, 0.01, 0.05, 0.1, 0.2])


def test_robustness_attack_vs_failure(benchmark, bench_graph):
    def run():
        return analyze_robustness(
            bench_graph, np.random.default_rng(3), fractions=FRACTIONS
        )

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nremoved:  " + "  ".join(f"{f:.2f}" for f in FRACTIONS)
        + "\ntargeted: "
        + "  ".join(f"{g:.2f}" for g in analysis.targeted.giant_fractions)
        + "\nrandom:   "
        + "  ".join(f"{g:.2f}" for g in analysis.random.giant_fractions)
    )
    # Targeted attack always does at least as much damage, and visibly
    # more once a fifth of the network is gone.
    assert (
        analysis.targeted.giant_fractions <= analysis.random.giant_fractions + 1e-9
    ).all()
    assert analysis.hub_dependence(0.2) > 0.03


def test_twitter_model_more_hub_dependent(benchmark):
    """Twitter's media-outlet concentration makes it frailer under attack
    than Google+'s celebrity-plus-mesh structure."""
    twitter = generate_twitter_like(4_000, seed=9)

    def run():
        return analyze_robustness(
            twitter, np.random.default_rng(4), fractions=FRACTIONS
        )

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ntwitter-like giant after 5% targeted removal:"
        f" {analysis.targeted.giant_at(0.05):.2f}"
        f" (random: {analysis.random.giant_at(0.05):.2f})"
    )
    assert analysis.targeted.giant_at(0.2) < analysis.random.giant_at(0.2)
