"""Extension bench: the Section 7 future-work growth study.

Times the snapshot analysis and asserts the growth-arc findings: the
open-signup tipping point, Leskovec densification (a > 1), and the
shrink of path lengths after adolescence — the paper's explanation for
Google+'s long 5.9-hop separation.
"""

import numpy as np
import pytest

from repro.analysis.growth import analyze_growth
from repro.synth import build_world, WorldConfig
from repro.synth.growth import build_timeline, OPEN_SIGNUP_DAY


def test_growth_study(benchmark):
    world = build_world(WorldConfig(n_users=5_000, seed=41))
    timeline = build_timeline(
        world.graph, world.config.field_trial_fraction, seed=42
    )

    def run():
        return analyze_growth(timeline, seed=43, n_snapshots=8, path_samples=120)

    growth = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        f"\ntipping day {growth.tipping_day:.0f}, stabilization"
        f" {growth.stabilization_day:.0f}, densification a ="
        f" {growth.densification_exponent:.2f}"
    )
    assert growth.tipping_day == pytest.approx(OPEN_SIGNUP_DAY, abs=12)
    assert growth.stabilization_day > growth.tipping_day
    assert growth.densifies()
    defined = [
        s for s in growth.snapshots if np.isfinite(s.mean_path_length)
    ]
    peak = max(defined, key=lambda s: s.mean_path_length)
    assert peak.mean_path_length > defined[-1].mean_path_length
