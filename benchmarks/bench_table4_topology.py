"""Table 4 bench: the full topological summary row.

The heaviest single artifact: BFS path sampling (directed + undirected),
SCC decomposition, reciprocity and degree means in one pass.
"""

import numpy as np

from repro.graph.stats import summarize_graph


def test_table4_topology(benchmark, bench_graph, bench_results, artifact_sink):
    def run():
        return summarize_graph(
            bench_graph,
            np.random.default_rng(5),
            path_samples=400,
            diameter_sweeps=5,
        )

    summary = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(artifact_sink("table4", bench_results))
    # Who-wins checks against the quoted rows:
    assert summary.reciprocity > 0.221        # above Twitter
    assert summary.reciprocity < 1.0          # below Facebook/Orkut
    assert summary.mean_in_degree < 190.2     # far below Facebook
    assert summary.avg_path_length > 1.0
    assert (
        summary.avg_path_length > summary.undirected_avg_path_length
    )  # directed paths longer, as in the paper (5.9 vs 4.7)
