"""Figure 4c bench: strongly-connected-component decomposition."""

from repro.analysis.structure import analyze_sccs


def test_fig4c_scc(benchmark, bench_graph, bench_results, artifact_sink):
    analysis = benchmark.pedantic(
        analyze_sccs, args=(bench_graph,), rounds=3, iterations=1
    )
    print()
    print(artifact_sink("fig4c", bench_results))
    # Paper: one giant SCC (~70% of nodes); every other SCC is tiny
    # (only one component above 100 nodes in 35M).
    assert analysis.giant_fraction > 0.5
    sizes = analysis.sizes()
    assert sizes[0] > 100
    assert sizes[1] <= 100
    # Long singleton tail.
    assert (sizes == 1).sum() > 0.5 * (analysis.n_components - 1)
