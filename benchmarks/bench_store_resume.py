"""Store overhead bench: durable campaign vs in-memory crawl.

The durable store journals every page, shards every edge, and writes
periodic checkpoints — all of it on the wall clock only.  Checkpoints
cost zero *virtual* time (no simulated requests are spent persisting),
so the headline assertion is that a campaign's virtual throughput is
within 10% of the in-memory crawl — and in fact the virtual timeline is
bit-identical, which ``dataset_diff`` checks outright.  The wall-clock
overhead of durability is measured and printed for the run report.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.crawler import BidirectionalBFSCrawler
from repro.obs.metrics import Registry
from repro.store import CampaignConfig, CrawlCampaign, dataset_diff
from repro.synth import build_world, WorldConfig

#: Same world scale/seed as the crawl-methodology bench (known-good).
CONFIG = CampaignConfig(
    n_users=4_000,
    seed=31,
    n_machines=11,
    checkpoint_every_pages=500,
)


def plain_crawl():
    """The undurable baseline: world build + in-memory crawl."""
    world = build_world(
        WorldConfig(
            n_users=CONFIG.n_users,
            seed=CONFIG.seed,
            circle_display_limit=CONFIG.circle_display_limit,
        )
    )
    frontend = world.frontend(
        rate_per_ip=CONFIG.rate_per_ip, burst=CONFIG.burst, error_rate=CONFIG.error_rate
    )
    crawler = BidirectionalBFSCrawler(frontend, CONFIG.crawl_config())
    return crawler.crawl([world.seed_user_id()])


def test_campaign_virtual_throughput_penalty(benchmark):
    start = time.perf_counter()
    reference = plain_crawl()
    plain_wall = time.perf_counter() - start

    scratch: list[Path] = []
    campaign_walls: list[float] = []

    def run():
        directory = Path(tempfile.mkdtemp(prefix="bench-store-"))
        scratch.append(directory)
        tick = time.perf_counter()
        dataset = CrawlCampaign(directory / "camp", CONFIG).run(registry=Registry())
        campaign_walls.append(time.perf_counter() - tick)
        return dataset

    try:
        dataset = benchmark.pedantic(run, rounds=2, iterations=1)

        # Durability must not bend the simulated timeline at all: the
        # campaign dataset (stats and virtual duration included) is
        # bit-identical to the in-memory crawl's.
        assert dataset_diff(dataset, reference) == []
        assert dataset.stats.virtual_duration == reference.stats.virtual_duration

        # The <10% virtual-throughput budget from the issue, stated
        # explicitly even though the equality above makes it trivial.
        plain_throughput = len(reference.profiles) / reference.stats.virtual_duration
        campaign_throughput = len(dataset.profiles) / dataset.stats.virtual_duration
        penalty = 1.0 - campaign_throughput / plain_throughput
        assert penalty < 0.10

        campaign_wall = min(campaign_walls)
        print()
        print(
            f"store-resume: plain={plain_wall:.3f}s wall, "
            f"campaign={campaign_wall:.3f}s wall "
            f"({campaign_wall / plain_wall:.2f}x, includes journal+segments+"
            f"checkpoints+archive), virtual penalty={penalty:.4%}"
        )
    finally:
        for directory in scratch:
            shutil.rmtree(directory, ignore_errors=True)
