"""Serving-layer bench: cached vs uncached page serving under the
read-heavy mix, SLO quantiles, and crawl isolation.

Each speedup arm runs in a fresh subprocess — heap history (the world,
the loadgen trace, page garbage from the other arm) otherwise swings
the timings several-fold.  Both children rebuild the same seeded world
and load-generator run, so determinism guarantees they replay the
*identical* zipf-skewed ``(owner, viewer)`` browse sequence straight
through the page-serving path — ``PageCache.lookup`` vs
``service.profile_page`` — after a warm-up segment; the timed segment
therefore measures steady-state serving throughput rather than
cold-cache fills.  The acceptance gate (≥5× cached speedup at a ≥60%
hit rate) is asserted at full scale; smoke sizes keep a lower floor.
A separate cell proves the crawler's edge arrays are bit-identical
with and without read-only traffic sharing the world.

Override sizes with ``REPRO_BENCH_SERVE_USERS``,
``REPRO_BENCH_SERVE_CLIENTS``, ``REPRO_BENCH_SERVE_REQUESTS``,
``REPRO_BENCH_SERVE_CRAWL_USERS`` and ``REPRO_BENCH_SERVE_TRIALS``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.metrics import Registry
from repro.serve import EventClock, build_traffic, validate_serving_section
from repro.store.campaign import CampaignConfig, CrawlCampaign, dataset_diff
from repro.synth import WorldConfig, build_world

USERS = int(os.environ.get("REPRO_BENCH_SERVE_USERS", "25000"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "1500"))
REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "50000"))
CRAWL_USERS = int(os.environ.get("REPRO_BENCH_SERVE_CRAWL_USERS", "2500"))
TRIALS = int(os.environ.get("REPRO_BENCH_SERVE_TRIALS", "2"))
SEED = 7

#: The ≥5x/≥60% acceptance gate only means something once celebrity
#: pages are heavy and the workload saturates the class memo.
FULL_SCALE = USERS >= 20_000 and REQUESTS >= 40_000

_CHILD = """\
import json
import sys
import time

from repro.obs.metrics import Registry
from repro.serve import EventClock, PageCache, build_traffic
from repro.synth import WorldConfig, build_world

arm, users, clients, requests, seed = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]),
    int(sys.argv[5]),
)
world = build_world(WorldConfig(n_users=users, seed=seed))
clock = EventClock(world.clock.now())
world.clock = clock
traffic = build_traffic(
    world.service, clock,
    {"n_clients": clients, "seed": seed, "mix": "read_heavy",
     "think_mean": 0.05, "cache": False, "keep_trace": True},
    registry=Registry(enabled=False),
)
wall0 = time.perf_counter()
traffic.run_requests(requests)
loadgen_wall = time.perf_counter() - wall0
viewers = traffic.client_user_ids
pairs = [
    (int(record[3][3:]), viewers[record[1]])
    for record in traffic.trace
    if record[2] == "browse"
]
warm, timed = pairs[: len(pairs) // 2], pairs[len(pairs) // 2 :]
service = world.service
result = {
    "arm": arm,
    "n_timed": len(timed),
    "trace_digest": traffic.trace_digest,
    "loadgen_requests_per_second": requests / loadgen_wall,
}
if arm == "uncached":
    wall0 = time.perf_counter()
    for owner_id, viewer_id in timed:
        service.profile_page(owner_id, viewer_id)
    result["wall_seconds"] = time.perf_counter() - wall0
else:
    cache = PageCache(
        service, EventClock(), capacity=32768, registry=Registry(enabled=False)
    )
    for owner_id, viewer_id in warm:
        cache.lookup(owner_id, viewer_id)
    hits0, misses0 = cache.hits, cache.misses
    wall0 = time.perf_counter()
    for owner_id, viewer_id in timed:
        cache.lookup(owner_id, viewer_id)
    result["wall_seconds"] = time.perf_counter() - wall0
    hits = cache.hits - hits0
    misses = cache.misses - misses0
    result["hit_rate"] = hits / (hits + misses)
print(json.dumps(result))
"""


def _run_arm(arm: str) -> dict:
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [
            sys.executable, "-c", _CHILD,
            arm, str(USERS), str(CLIENTS), str(REQUESTS), str(SEED),
        ],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout)


def _best_of(arm: str, trials: int) -> dict:
    runs = [_run_arm(arm) for _ in range(trials)]
    digests = {run["trace_digest"] for run in runs}
    assert len(digests) == 1, f"{arm} workload not deterministic: {digests}"
    best = min(runs, key=lambda run: run["wall_seconds"])
    return {**best, "all_wall_seconds": sorted(r["wall_seconds"] for r in runs)}


def test_cached_serving_speedup(bench_extra):
    uncached = _best_of("uncached", TRIALS)
    cached = _best_of("cached", TRIALS)
    # Both children replayed the same deterministic request sequence.
    assert uncached["trace_digest"] == cached["trace_digest"]
    assert uncached["n_timed"] == cached["n_timed"] > REQUESTS // 4

    n = cached["n_timed"]
    speedup = uncached["wall_seconds"] / cached["wall_seconds"]
    hit_rate = cached["hit_rate"]
    print(
        f"\nbrowse replay n={n}: uncached {n / uncached['wall_seconds']:,.0f}"
        f" pages/s, cached {n / cached['wall_seconds']:,.0f} pages/s"
        f" ({speedup:.2f}x, hit rate {100 * hit_rate:.1f}%)"
    )
    bench_extra(
        users=USERS,
        clients=CLIENTS,
        requests=REQUESTS,
        trials=TRIALS,
        browse_replayed=n,
        uncached=uncached,
        cached=cached,
        uncached_pages_per_second=round(n / uncached["wall_seconds"], 1),
        cached_pages_per_second=round(n / cached["wall_seconds"], 1),
        speedup=round(speedup, 3),
        hit_rate=round(hit_rate, 4),
    )
    if n >= 2_000:
        assert hit_rate >= 0.6, f"hit rate only {hit_rate:.2%}"
    if FULL_SCALE:
        assert speedup >= 5.0, f"cache only {speedup:.2f}x faster at full scale"
    else:
        assert speedup >= 2.0  # smoke-scale floor


def test_slo_section_reports_quantiles(bench_extra):
    world = build_world(WorldConfig(n_users=min(USERS, 8_000), seed=SEED))
    clock = EventClock(world.clock.now())
    world.clock = clock
    traffic = build_traffic(
        world.service,
        clock,
        {
            "n_clients": min(CLIENTS, 500),
            "seed": SEED,
            "mix": "read_heavy",
            "think_mean": 0.05,
        },
        registry=Registry(enabled=True),
    )
    wall0 = time.perf_counter()
    traffic.run_requests(min(REQUESTS, 20_000))
    wall = time.perf_counter() - wall0

    section = traffic.slo.section()
    assert validate_serving_section(section) == []
    latency = section["latency"]
    assert latency["p50"] is not None and latency["p99"] is not None
    assert latency["p99"] >= latency["p50"]
    assert section["availability"]["observed"] is not None
    bench_extra(
        loadgen_requests_per_second=round(traffic.n_requests / wall, 1),
        p50_virtual_seconds=latency["p50"],
        p99_virtual_seconds=latency["p99"],
        availability=section["availability"]["observed"],
        burn_rate=section["availability"]["burn_rate"],
        hit_rate=traffic.cache.stats()["hit_rate"],
        trace_digest=traffic.trace_digest,
    )


def test_traffic_leaves_crawler_edges_bit_identical(bench_extra, tmp_path):
    def run(name, traffic):
        config = CampaignConfig(
            n_users=CRAWL_USERS,
            seed=SEED,
            checkpoint_every_pages=500,
            traffic=traffic,
        )
        campaign = CrawlCampaign(tmp_path / name, config)
        return campaign, campaign.run(registry=Registry(enabled=False))

    _, quiet = run("quiet", None)
    busy_campaign, busy = run(
        "busy",
        {"n_clients": 200, "seed": 11, "mix": "read_heavy", "think_mean": 0.05},
    )
    assert busy_campaign.last_traffic.n_requests > 0
    assert dataset_diff(quiet, busy) == []
    bench_extra(
        crawl_users=CRAWL_USERS,
        crawl_edges=len(quiet.sources),
        traffic_requests=busy_campaign.last_traffic.n_requests,
    )
