"""Extension bench: Table 4 measured end-to-end across all four OSNs.

Instead of quoting Facebook/Twitter/Orkut numbers from other papers,
generate each network's model at equal scale and measure the comparison
with our own instruments, asserting the orderings Table 4 exhibits.
"""

from repro.analysis.cross_network import compare_networks
from repro.experiments.render import format_table, percent


def test_table4_cross_network(benchmark, bench_graph):
    def run():
        return compare_networks(
            bench_graph, seed=7, baseline_n=3_000, path_samples=250
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            name,
            f"{summary.n_nodes:,}",
            f"{summary.n_edges:,}",
            f"{summary.mean_in_degree:.1f}",
            percent(summary.reciprocity, 0),
            f"{summary.avg_path_length:.2f}",
            summary.diameter,
        )
        for name, summary in comparison.rows.items()
    ]
    print()
    print(
        format_table(
            ["Network", "Nodes", "Edges", "Mean degree",
             "Reciprocity", "Path length", "Diameter"],
            rows,
            title="Table 4, measured on our own models",
        )
    )
    assert comparison.reciprocity_ordering_holds()
    assert comparison.degree_ordering_holds()
