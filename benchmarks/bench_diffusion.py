"""Extension bench: content diffusion through circles (future work #2).

Times the activity simulation plus diffusion analysis and asserts the
qualitative findings: public posts travel several times farther than
circle-scoped ones, cascade sizes are heavy-tailed, and open cultures
post more publicly.
"""

import numpy as np

from repro.analysis.diffusion import analyze_diffusion
from repro.synth import build_world, WorldConfig
from repro.synth.activity import simulate_activity


def test_content_diffusion(benchmark):
    world = build_world(WorldConfig(n_users=5_000, seed=61))

    def run():
        log = simulate_activity(world, seed=62)
        return analyze_diffusion(log, world.population)

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    reach = analysis.reach
    print(
        f"\npublic reach {reach.public_mean_audience:.1f} vs scoped"
        f" {reach.scoped_mean_audience:.1f} ({reach.reach_ratio:.1f}x);"
        f" max cascade {analysis.max_cascade()}"
    )
    assert reach.reach_ratio > 2.0
    assert analysis.max_cascade() > 5 * np.median(analysis.cascade_sizes)
    assert 0.2 < reach.public_share < 0.9
