"""fsck + StoreIO seam benches: verification is cheap, injection is free.

Two numbers guard the robustness layer:

* **Seam overhead**: every journal flush, segment seal, and checkpoint
  publish now routes through :class:`~repro.store.atomio.StoreIO`.  A
  campaign run with an *armed-but-quiet* disk-fault schedule (windows
  the clock never reaches) must stay within 2% of the unarmed run's
  wall clock, and its dataset must be bit-identical — chaos plumbing
  costs nothing when chaos isn't firing.
* **fsck wall time**: a clean verify, a deep scrub, and a
  damage-and-repair pass over the same store, so the doctor's cost
  shows up in the perf trajectory file-by-file across PRs.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.obs.metrics import Registry
from repro.store import CampaignConfig, CrawlCampaign, dataset_diff, fsck
from repro.store.campaign import SEGMENTS_DIR
from repro.store.segments import iter_segment_paths

try:  # merged into BENCH_fsck.json's ``extra`` when the harness is live
    from conftest import _BENCH_EXTRA
except ImportError:  # direct invocation outside the bench harness
    _BENCH_EXTRA = {}

USERS = 4_000
SEED = 11
ROUNDS = 5

#: One of every disk-fault rule kind, all scripted for windows the
#: virtual clock never reaches: armed, consulted on every I/O operation,
#: firing nothing.
QUIET_DISK_SPEC = {
    "seed": 5,
    "rules": [
        {"kind": "torn_write", "start": 1e9, "end": 2e9, "rate": 0.5},
        {"kind": "bit_rot", "start": 1e9, "end": 2e9, "rate": 0.5},
        {"kind": "missing_file", "start": 1e9, "end": 2e9, "rate": 0.5},
        {"kind": "dropped_fsync", "start": 1e9, "end": 2e9, "rate": 0.5},
        {"kind": "enospc", "start": 1e9, "end": 2e9, "rate": 0.5},
    ],
}

CONFIG = dict(
    n_users=USERS,
    seed=SEED,
    checkpoint_every_pages=400,
    shard_edges=8_192,
)


def timed_campaign(scratch: list[Path], disk_faults: dict | None):
    directory = Path(tempfile.mkdtemp(prefix="bench-fsck-")) / "camp"
    scratch.append(directory.parent)
    config = CampaignConfig(**CONFIG, disk_faults=disk_faults)
    start = time.perf_counter()
    dataset = CrawlCampaign(directory, config).run(registry=Registry())
    return directory, dataset, time.perf_counter() - start


def test_quiet_seam_overhead(benchmark):
    scratch: list[Path] = []
    unarmed_walls: list[float] = []
    armed_walls: list[float] = []
    reference = armed = None
    try:
        # Interleaved so machine drift hits both sides equally.
        for _ in range(ROUNDS):
            _, reference, wall = timed_campaign(scratch, None)
            unarmed_walls.append(wall)
            _, armed, wall = timed_campaign(scratch, QUIET_DISK_SPEC)
            armed_walls.append(wall)

        # Armed-but-quiet leaves the crawl untouched, exactly.
        assert dataset_diff(armed, reference) == []

        overhead = min(armed_walls) / min(unarmed_walls) - 1.0
        print(
            f"\nquiet StoreIO seam overhead: {overhead:+.2%} "
            f"(unarmed {min(unarmed_walls):.3f}s, armed {min(armed_walls):.3f}s)"
        )
        assert overhead < 0.02

        _BENCH_EXTRA.setdefault("bench_fsck", {})["seam_overhead"] = {
            "unarmed_seconds": min(unarmed_walls),
            "armed_quiet_seconds": min(armed_walls),
            "overhead_fraction": overhead,
            "budget_fraction": 0.02,
        }

        benchmark.pedantic(
            lambda: timed_campaign(scratch, QUIET_DISK_SPEC), rounds=1, iterations=1
        )
    finally:
        for directory in scratch:
            shutil.rmtree(directory, ignore_errors=True)


def test_fsck_clean_scrub_and_repair(benchmark):
    scratch: list[Path] = []
    try:
        camp, _, _ = timed_campaign(scratch, None)

        start = time.perf_counter()
        report = fsck(camp, registry=Registry())
        clean_wall = time.perf_counter() - start
        assert report.status == "clean"

        start = time.perf_counter()
        report = fsck(camp, scrub=True, registry=Registry())
        scrub_wall = time.perf_counter() - start
        assert report.status == "clean"

        # Damage a segment, then time the diagnose+rebuild pass.
        target = iter_segment_paths(camp / SEGMENTS_DIR)[0]
        blob = bytearray(target.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        target.write_bytes(bytes(blob))
        start = time.perf_counter()
        report = fsck(camp, repair=True, registry=Registry())
        repair_wall = time.perf_counter() - start
        assert report.status == "repaired"
        assert fsck(camp, registry=Registry()).status == "clean"

        print(
            f"\nfsck: clean={clean_wall * 1e3:.1f}ms scrub={scrub_wall * 1e3:.1f}ms "
            f"damaged+rebuild={repair_wall * 1e3:.1f}ms"
        )
        _BENCH_EXTRA.setdefault("bench_fsck", {})["fsck_walls"] = {
            "clean_seconds": clean_wall,
            "scrub_seconds": scrub_wall,
            "repair_seconds": repair_wall,
        }

        benchmark.pedantic(
            lambda: fsck(camp, registry=Registry()), rounds=1, iterations=1
        )
    finally:
        for directory in scratch:
            shutil.rmtree(directory, ignore_errors=True)
