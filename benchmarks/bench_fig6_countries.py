"""Figure 6 bench: top-10 countries among located users."""

import pytest

from repro.analysis.geo_dist import top_countries


def test_fig6_top_countries(benchmark, bench_geo, bench_results, artifact_sink):
    shares = benchmark(top_countries, bench_geo, 10)
    print()
    print(artifact_sink("fig6", bench_results))
    codes = [s.code for s in shares]
    # Paper ordering at the top: US, IN, BR.
    assert codes[:3] == ["US", "IN", "BR"]
    by_code = {s.code: s.fraction for s in shares}
    assert by_code["US"] == pytest.approx(0.3138, abs=0.06)
    assert by_code["IN"] == pytest.approx(0.1671, abs=0.05)
    # GB and CA in the top tier, as in the paper.
    assert {"GB", "CA"} <= set(codes)
