"""Ablation benches for the generator's design choices (DESIGN.md §3).

Each ablation disables one mechanism and measures the artifact that
mechanism exists to reproduce:

* triadic closure        -> clustering coefficient (Figure 4b),
* follow-back model      -> global reciprocity (Figure 4a / Table 4),
* geo-homophily kernel   -> path-mile CDF (Figure 9a),
* partial BFS crawl      -> degree-distribution bias (Section 2.2 caveat).
"""

import numpy as np
import pytest

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.graph.clustering import average_clustering
from repro.graph.csr import CSRGraph
from repro.graph.reciprocity import global_reciprocity
from repro.graph.sampling import sample_nodes
from repro.geo.distance import haversine_miles
from repro.synth.config import GraphGenConfig, WorldConfig
from repro.synth.graphgen import generate_graph
from repro.synth.profiles import generate_population

N = 3_000


@pytest.fixture(scope="module")
def population():
    config = WorldConfig(n_users=N, seed=55)
    return generate_population(config, np.random.default_rng(config.seed))


def build(population, **overrides):
    generated = generate_graph(
        population, GraphGenConfig(**overrides), np.random.default_rng(1)
    )
    graph = CSRGraph.from_edge_arrays(
        generated.sources, generated.targets, node_ids=np.arange(N)
    )
    return generated, graph


def test_ablation_triadic_closure(benchmark, population):
    """Without triadic closure, clustering collapses toward the random
    baseline — the mechanism is what produces Figure 4b's fat CC mass."""
    def run():
        _, with_tc = build(population)
        _, without_tc = build(population, triadic_prob=0.0)
        rng = np.random.default_rng(0)
        return (
            average_clustering(with_tc, sample_nodes(with_tc, 500, rng)),
            average_clustering(without_tc, sample_nodes(without_tc, 500, rng)),
        )

    cc_with, cc_without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmean CC with triadic closure: {cc_with:.4f}, without: {cc_without:.4f}")
    # Same-city gravity alone already produces triangles; triadic closure
    # must add a clear margin on top of that baseline.
    assert cc_with > 1.3 * cc_without


def test_ablation_followback(benchmark, population):
    """Zeroing the follow-back gain kills reciprocity; the calibrated
    model sits in the paper's 32% neighbourhood."""
    def run():
        _, calibrated = build(population)
        _, muted = build(population, followback_wish_gain=0.0)
        return global_reciprocity(calibrated), global_reciprocity(muted)

    calibrated, muted = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nreciprocity calibrated: {calibrated:.3f}, follow-back off: {muted:.3f}")
    assert calibrated > 0.22
    assert muted < 0.05


def test_ablation_geo_homophily(benchmark, population):
    """The gravity kernel is what concentrates friends within 1000 miles
    (Figure 9a); uniform in-country attachment spreads them out."""
    def run():
        lats, lons = population.latitudes, population.longitudes

        def friends_within(generated, miles):
            distances = haversine_miles(
                lats[generated.sources], lons[generated.sources],
                lats[generated.targets], lons[generated.targets],
            )
            return float((distances <= miles).mean())

        with_geo, _ = build(population)
        without_geo, _ = build(population, geo_homophily=False, same_city_prob=0.0)
        return friends_within(with_geo, 1000.0), friends_within(without_geo, 1000.0)

    with_geo, without_geo = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nfriends<=1000mi with gravity: {with_geo:.3f}, without: {without_geo:.3f}")
    assert with_geo > without_geo + 0.05


def test_ablation_bfs_coverage_bias(benchmark):
    """Stopping the BFS early biases the sample toward high-degree users
    — the limitation the paper flags in Section 2.2."""
    from repro.synth.world import build_world

    world = build_world(WorldConfig(n_users=N, seed=77))

    def crawl(fraction):
        max_pages = int(N * fraction) if fraction < 1.0 else None
        crawler = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=4, max_pages=max_pages)
        )
        return crawler.crawl([world.seed_user_id()])

    def run():
        full = crawl(1.0)
        partial = crawl(0.3)
        graph = full.to_csr()
        in_degrees = graph.in_degrees()
        degree_of = {
            int(graph.node_ids[i]): int(in_degrees[i]) for i in range(graph.n)
        }
        full_mean = np.mean([degree_of[uid] for uid in full.profiles])
        partial_mean = np.mean([degree_of[uid] for uid in partial.profiles])
        return full_mean, partial_mean

    full_mean, partial_mean = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmean true in-degree: full crawl {full_mean:.1f}, 30% BFS {partial_mean:.1f}")
    assert partial_mean > full_mean  # early BFS over-samples popular users
