"""Section 2.2 bench: the crawl itself and the lost-edge accounting.

Times a full bidirectional BFS campaign on a fresh world with an
aggressive circle-list display cap, so the truncation/recovery machinery
fires at bench scale the way the 10,000 cap fired at 35M-node scale.
"""

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.crawler.lost_edges import estimate_lost_edges, naive_truncation_loss
from repro.synth import build_world, WorldConfig

CAP = 150


def test_crawl_and_lost_edges(benchmark, bench_results, artifact_sink):
    world = build_world(
        WorldConfig(n_users=4_000, seed=31, circle_display_limit=CAP)
    )

    def run():
        crawler = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=11)
        )
        return crawler.crawl([world.seed_user_id()])

    dataset = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(artifact_sink("methodology", bench_results))
    naive = naive_truncation_loss(dataset, display_limit=CAP)
    recovered = estimate_lost_edges(dataset, display_limit=CAP)
    # The cap bites...
    assert naive.capped_users > 0
    assert naive.lost_fraction > 0.01
    # ...and bidirectional crawling recovers almost everything (paper: the
    # final loss is 1.6% of edges at their scale).
    assert recovered.lost_fraction < naive.lost_fraction / 2
    assert recovered.lost_fraction < 0.05
    # Crawl accounting mirrors Section 2.2's fleet.
    assert dataset.stats.n_machines == 11
    assert dataset.n_profiles == world.n_users
