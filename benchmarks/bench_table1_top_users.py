"""Table 1 bench: top-20 users by in-degree.

Regenerates the table and checks the paper's qualitative signature: the
top list is celebrity-dominated with an unusually strong IT presence.
"""

from repro.analysis.top_users import top_users_by_in_degree
from repro.platform.models import Occupation


def test_table1_top_users(benchmark, bench_dataset, bench_graph,
                          bench_results, artifact_sink):
    rows = benchmark(top_users_by_in_degree, bench_dataset, bench_graph, 20)
    print()
    print(artifact_sink("table1", bench_results))
    assert len(rows) == 20
    assert rows[0].in_degree >= rows[-1].in_degree
    it_count = sum(1 for r in rows if r.occupation is Occupation.IT)
    assert it_count >= 3  # paper: 7 of 20
    names = {r.name for r in rows}
    assert "Larry Page" in names
