"""Table 5 bench: per-country top occupations and Jaccard vs US."""

from repro.analysis.top_users import top_occupations_by_country
from repro.synth.countries import TOP10_CODES


def test_table5_occupations(benchmark, bench_dataset, bench_graph, bench_geo,
                            bench_results, artifact_sink):
    rows = benchmark(
        top_occupations_by_country,
        bench_dataset,
        bench_graph,
        bench_geo,
        list(TOP10_CODES),
    )
    print()
    print(artifact_sink("table5", bench_results))
    by_country = {r.country: r for r in rows}
    assert by_country["US"].jaccard_vs_us == 1.0
    # Anglophone countries resemble the US far more than Latin ones do
    # (paper: CA 0.83 vs BR 0.18).
    assert by_country["CA"].jaccard_vs_us > by_country["BR"].jaccard_vs_us
