"""Figure 2 bench: CCDF of fields shared, tel-users vs all users."""

from repro.analysis.tel_users import fields_shared_ccdfs


def test_fig2_fields_ccdf(benchmark, bench_dataset, bench_results, artifact_sink):
    ccdfs = benchmark(fields_shared_ccdfs, bench_dataset)
    print()
    print(artifact_sink("fig2", bench_results))
    tel = ccdfs.fraction_sharing_more_than(6, "tel")
    everyone = ccdfs.fraction_sharing_more_than(6, "all")
    # Paper: 66% of tel-users vs 10% of all users share more than 6 fields.
    assert everyone < 0.25
    assert tel > everyone + 0.18
    # The tel-user curve dominates the population curve pointwise.
    for k in range(2, 10):
        assert ccdfs.fraction_sharing_more_than(k, "tel") >= (
            ccdfs.fraction_sharing_more_than(k, "all") - 0.05
        )
