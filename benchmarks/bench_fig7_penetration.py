"""Figure 7 bench: Google+ vs Internet penetration against GDP per capita."""

from repro.analysis.geo_dist import penetration_analysis


def test_fig7_penetration(benchmark, bench_geo, bench_results, artifact_sink):
    analysis = benchmark(penetration_analysis, bench_geo)
    print()
    print(artifact_sink("fig7", bench_results))
    # Paper observation 1: Internet penetration is linear in GDP.
    assert analysis.ipr_gdp_correlation > 0.6
    # Paper observation 2: Google+ penetration is decoupled from GDP.
    assert analysis.gpr_gdp_correlation < analysis.ipr_gdp_correlation - 0.2
    # Paper observation 3: India (low IPR) tops the GPR ranking.
    ranked = analysis.ranked_by_gpr()
    assert ranked[0].code == "IN"
    assert ranked[0].internet_penetration < 0.5
