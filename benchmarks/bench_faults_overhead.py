"""Fault-layer overhead bench: chaos must be free when it isn't firing.

Every request the front end admits consults the armed
:class:`~repro.faults.FaultSchedule` — so the zero-fault cost of the
machinery is the number that matters for every non-chaos study run.
Two guarantees, one strict and one statistical:

* **Virtual timeline**: an armed schedule whose windows never open
  produces a dataset *bit-identical* to the unarmed crawl — zero
  virtual overhead, checked outright with ``dataset_diff``.
* **Wall clock**: the same quiet schedule stays within the 2% budget of
  the unarmed crawl (the window-envelope fast path in
  ``FaultSchedule.evaluate`` skips the rule loop outside all windows).
  Rounds are interleaved so drift hits both sides equally.
"""

from __future__ import annotations

import time

from repro.crawler import BidirectionalBFSCrawler
from repro.faults import FaultSchedule
from repro.store import dataset_diff
from repro.synth import build_world, WorldConfig

USERS = 4_000
SEED = 31
ROUNDS = 5

#: A full scenario's worth of rules, all scripted for windows the crawl
#: never reaches: armed, evaluated per request, firing nothing.
QUIET_SPEC = {
    "seed": 7,
    "rules": [
        {"kind": "error_burst", "start": 1e9, "end": 2e9, "rate": 0.5},
        {"kind": "ip_ban", "start": 1e9, "end": 2e9},
        {"kind": "corrupt_pages", "start": 1e9, "end": 2e9, "rate": 0.2},
    ],
}


def timed_crawl(faults: FaultSchedule | None):
    world = build_world(WorldConfig(n_users=USERS, seed=SEED))
    frontend = world.frontend(faults=faults)
    crawler = BidirectionalBFSCrawler(frontend)
    start = time.perf_counter()
    dataset = crawler.crawl([world.seed_user_id()])
    return dataset, time.perf_counter() - start


def test_quiet_schedule_overhead(benchmark):
    unarmed_walls: list[float] = []
    armed_walls: list[float] = []
    reference = armed = None
    for _ in range(ROUNDS):
        reference, wall = timed_crawl(None)
        unarmed_walls.append(wall)
        armed, wall = timed_crawl(FaultSchedule.from_dict(QUIET_SPEC))
        armed_walls.append(wall)

    # Zero virtual overhead, exactly: same pages, same edges, same
    # virtual timeline, same stats.
    assert dataset_diff(armed, reference) == []

    # Wall budget: best-of-N against best-of-N keeps scheduler noise out.
    overhead = min(armed_walls) / min(unarmed_walls) - 1.0
    print(
        f"\nzero-fault overhead: {overhead:+.2%} "
        f"(unarmed {min(unarmed_walls):.3f}s, armed-quiet {min(armed_walls):.3f}s)"
    )
    assert overhead < 0.02

    # One representative timed pass for the harness's run report.
    benchmark.pedantic(
        lambda: timed_crawl(FaultSchedule.from_dict(QUIET_SPEC)),
        rounds=1,
        iterations=1,
    )
