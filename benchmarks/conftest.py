"""Shared fixtures for the benchmark harness.

One bench-scale world (larger than the test worlds) is built and crawled
once per session; every per-artifact bench times its *analysis* stage on
that shared crawl and writes the rendered artifact (the same rows/series
the paper reports) to ``benchmarks/output/<artifact>.txt``.

The harness also records every bench's wall time: each ``bench_<name>``
module gets a ``benchmarks/output/BENCH_<name>.json`` run report (see
:mod:`repro.obs.report`), so the perf trajectory of each artifact is
tracked file-by-file across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import MeasurementStudy, StudyConfig, StudyResults
from repro.experiments.registry import EXPERIMENTS
from repro.obs import RunReport, get_registry

#: Bench world scale; large enough for stable per-country statistics.
BENCH_USERS = 12_000
BENCH_SEED = 7

OUTPUT_DIR = Path(__file__).parent / "output"


#: Per-module bench timings collected as run-report phase records.
_BENCH_PHASES: dict[str, list[dict]] = {}

#: Free-form per-module payloads merged into each report's ``extra``
#: (e.g. the fig5 bench records its sequential-vs-parallel speedup).
_BENCH_EXTRA: dict[str, dict] = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Time every bench and collect it as a run-report phase."""
    start = time.perf_counter()
    yield
    elapsed = time.perf_counter() - start
    module = Path(str(item.fspath)).stem
    if module.startswith("bench_"):
        _BENCH_PHASES.setdefault(module, []).append(
            {
                "name": item.name,
                "path": item.name,
                "count": 1,
                "wall_seconds": elapsed,
                "virtual_seconds": 0.0,
            }
        )


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<name>.json run report per bench module."""
    if not _BENCH_PHASES:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    for module, phases in sorted(_BENCH_PHASES.items()):
        report = RunReport(
            kind="bench",
            config={"module": module, "users": BENCH_USERS, "seed": BENCH_SEED},
            phases=phases,
            metrics=get_registry().snapshot(),
            extra=_BENCH_EXTRA.get(module, {}),
        )
        report.write(OUTPUT_DIR / f"BENCH_{module.removeprefix('bench_')}.json")


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    return StudyConfig(
        n_users=BENCH_USERS,
        seed=BENCH_SEED,
        path_sample_start=300,
        path_sample_max=1_000,
        path_mile_pairs=150_000,
    )


@pytest.fixture(scope="session")
def bench_study(bench_config) -> MeasurementStudy:
    return MeasurementStudy(bench_config)


@pytest.fixture(scope="session")
def bench_dataset(bench_study):
    return bench_study.crawl()


@pytest.fixture(scope="session")
def bench_graph(bench_dataset):
    return bench_dataset.to_csr()


@pytest.fixture(scope="session")
def bench_geo(bench_dataset):
    from repro.geo.index import build_geo_index

    return build_geo_index(bench_dataset)


@pytest.fixture(scope="session")
def bench_results(bench_study, bench_dataset) -> StudyResults:
    """Full study results over the shared crawl (computed once)."""
    return bench_study.run(dataset=bench_dataset)


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(99)


@pytest.fixture
def bench_extra(request):
    """Record a payload into this bench module's BENCH_<name>.json extra."""
    module = Path(str(request.fspath)).stem

    def record(**payload) -> None:
        _BENCH_EXTRA.setdefault(module, {}).update(payload)

    return record


@pytest.fixture(scope="session")
def artifact_sink():
    """Writes rendered artifacts to benchmarks/output/ for inspection."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(artifact_id: str, results: StudyResults) -> str:
        text = EXPERIMENTS[artifact_id].render(results)
        (OUTPUT_DIR / f"{artifact_id}.txt").write_text(text + "\n")
        return text

    return write
