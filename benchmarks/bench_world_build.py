"""World-build bench: reference vs fast engine wall time and peak RSS.

Each (engine, size) cell runs ``build_world`` in a fresh subprocess —
heap reuse and allocator state make in-process trials flatter than
reality — and takes the best of ``TRIALS`` runs, the standard way to damp
scheduler noise on a busy box. The per-cell numbers land in
``BENCH_world_build.json`` via the shared bench harness, and the ≥5×
speedup acceptance gate is asserted at the largest size when that size
reaches 100k users.

Override the sizes with ``REPRO_BENCH_WORLD_USERS`` (comma-separated)
and the trial count with ``REPRO_BENCH_WORLD_TRIALS``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_WORLD_USERS", "20000,100000").split(",")
)
TRIALS = int(os.environ.get("REPRO_BENCH_WORLD_TRIALS", "3"))

_CHILD = """\
import json
import resource
import sys
import time

from repro.synth import build_world, WorldConfig

engine, n = sys.argv[1], int(sys.argv[2])
wall0 = time.perf_counter()
cpu0 = time.process_time()
world = build_world(WorldConfig(n_users=n, engine=engine))
cpu1 = time.process_time()
wall1 = time.perf_counter()
print(json.dumps({
    "wall_seconds": wall1 - wall0,
    "cpu_seconds": cpu1 - cpu0,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024,
    "edges": world.graph.n_edges,
}))
"""


def _build_once(engine: str, n_users: int) -> dict:
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, engine, str(n_users)],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    return json.loads(out.stdout)


def _best_of(engine: str, n_users: int, trials: int) -> dict:
    runs = [_build_once(engine, n_users) for _ in range(trials)]
    best = min(runs, key=lambda r: r["wall_seconds"])
    edges = {r["edges"] for r in runs}
    assert len(edges) == 1, f"{engine} n={n_users} not deterministic: {edges}"
    return {
        **best,
        "trials": trials,
        "all_wall_seconds": sorted(r["wall_seconds"] for r in runs),
    }


def test_world_build_speedup(bench_extra):
    cells: dict[str, dict] = {}
    for n_users in SIZES:
        for engine in ("reference", "fast"):
            cell = _best_of(engine, n_users, TRIALS)
            cells[f"{engine}_{n_users}"] = cell
            print(
                f"\n{engine:>9} n={n_users}: wall {cell['wall_seconds']:.2f}s"
                f" cpu {cell['cpu_seconds']:.2f}s rss {cell['peak_rss_mb']}MB"
                f" edges {cell['edges']}"
            )
    largest = max(SIZES)
    speedups = {
        n: cells[f"reference_{n}"]["wall_seconds"]
        / cells[f"fast_{n}"]["wall_seconds"]
        for n in SIZES
    }
    for n, ratio in speedups.items():
        print(f"speedup n={n}: {ratio:.2f}x")
    bench_extra(
        sizes=list(SIZES),
        trials=TRIALS,
        cells=cells,
        speedups={str(n): round(s, 3) for n, s in speedups.items()},
    )
    # Memory: the fast engine must not out-eat the reference.
    assert (
        cells[f"fast_{largest}"]["peak_rss_mb"]
        <= 1.2 * cells[f"reference_{largest}"]["peak_rss_mb"]
    )
    # Acceptance gate: ≥5× at 100k users.
    if largest >= 100_000:
        assert speedups[largest] >= 5.0, (
            f"fast engine only {speedups[largest]:.2f}x faster at n={largest}"
        )
    else:
        assert speedups[largest] >= 3.0  # smoke-scale floor
