"""World-build bench: engine × store wall time and peak RSS.

Each (engine, store, size) cell runs ``build_world`` in a fresh
subprocess — heap reuse and allocator state make in-process trials
flatter than reality. Wall time takes the best of ``TRIALS`` runs (the
standard way to damp scheduler noise on a busy box); peak RSS takes the
*max* across trials, because the memory requirement of a build is its
worst observed footprint, not its luckiest.

Peak RSS is the kernel's own account of the child: the parent reaps the
subprocess with ``os.wait4`` and reads ``ru_maxrss`` from the returned
rusage. A self-report from inside the child (``RUSAGE_SELF`` before
exit) misses everything after the measurement point — interpreter
teardown, late GC, the report itself — and a parent-side
``RUSAGE_CHILDREN`` read is a high-water mark over *all* reaped
children, so one big trial poisons every later cell. ``wait4`` charges
exactly one child's whole lifetime.

The per-cell numbers land in ``BENCH_world_build.json`` via the shared
bench harness. Gates: the fast engine must not out-eat the reference,
the columnar store must not out-eat the dict store, and ≥5× speedup is
asserted at the largest size when it reaches 100k users.

Override the sizes with ``REPRO_BENCH_WORLD_USERS`` (comma-separated)
and the trial count with ``REPRO_BENCH_WORLD_TRIALS``. Setting
``REPRO_BENCH_MILLION=1`` enables the million-user cell: a 1M-user
fast+columnar build with a hard ≤2 GB RSS gate and a crawl sample over
the built world (the CI ``million-user`` job runs exactly this).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_WORLD_USERS", "20000,100000").split(",")
)
TRIALS = int(os.environ.get("REPRO_BENCH_WORLD_TRIALS", "3"))

#: (engine, store) grid; the reference engine only ships a dict-store
#: bench cell — reference+columnar exists but is a conversion of the
#: same objects, so it adds time without adding information.
CELLS = (
    ("reference", "dict"),
    ("fast", "dict"),
    ("fast", "columnar"),
)

MILLION_USERS = 1_000_000
MILLION_RSS_MB = 2_048
MILLION_WALL_SECONDS = 900.0

_CHILD = """\
import json
import sys
import time

from repro.synth import build_world, WorldConfig

engine, store, n, crawl_pages = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
)
wall0 = time.perf_counter()
cpu0 = time.process_time()
world = build_world(WorldConfig(n_users=n, engine=engine, store=store))
cpu1 = time.process_time()
wall1 = time.perf_counter()
result = {
    "wall_seconds": wall1 - wall0,
    "cpu_seconds": cpu1 - cpu0,
    "edges": world.graph.n_edges,
}
if crawl_pages:
    from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig

    crawler = BidirectionalBFSCrawler(
        world.frontend(rate_per_ip=1e9, burst=1e9),
        CrawlConfig(n_machines=3, max_pages=crawl_pages, request_latency=0.0),
    )
    dataset = crawler.crawl([world.seed_user_id()])
    result["crawl_pages"] = dataset.stats.pages_fetched
    result["crawl_edges"] = int(dataset.n_edges)
print(json.dumps(result))
"""


def _build_once(engine: str, store: str, n_users: int, crawl_pages: int = 0) -> dict:
    """One subprocess build; RSS comes from the wait4 rusage, not the child."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    argv = [
        sys.executable, "-c", _CHILD, engine, store, str(n_users), str(crawl_pages)
    ]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    output = proc.stdout.read()
    proc.stdout.close()
    _, status, rusage = os.wait4(proc.pid, 0)
    # Hand the already-reaped status to Popen so its cleanup never waits
    # on a pid the kernel no longer knows.
    proc.returncode = os.waitstatus_to_exitcode(status)
    if proc.returncode != 0:
        raise RuntimeError(
            f"child build failed ({engine}/{store} n={n_users}):\n{output}"
        )
    result = json.loads(output.splitlines()[-1])
    # Linux ru_maxrss is in KiB.
    result["peak_rss_mb"] = rusage.ru_maxrss // 1024
    return result


def _bench_cell(engine: str, store: str, n_users: int, trials: int) -> dict:
    runs = [_build_once(engine, store, n_users) for _ in range(trials)]
    best = min(runs, key=lambda r: r["wall_seconds"])
    edges = {r["edges"] for r in runs}
    assert len(edges) == 1, f"{engine}/{store} n={n_users} not deterministic: {edges}"
    return {
        **best,
        "peak_rss_mb": max(r["peak_rss_mb"] for r in runs),
        "trials": trials,
        "all_wall_seconds": sorted(r["wall_seconds"] for r in runs),
        "all_peak_rss_mb": sorted(r["peak_rss_mb"] for r in runs),
    }


def test_world_build_speedup(bench_extra):
    cells: dict[str, dict] = {}
    for n_users in SIZES:
        for engine, store in CELLS:
            cell = _bench_cell(engine, store, n_users, TRIALS)
            cells[f"{engine}_{store}_{n_users}"] = cell
            print(
                f"\n{engine:>9}/{store:<8} n={n_users}:"
                f" wall {cell['wall_seconds']:.2f}s"
                f" cpu {cell['cpu_seconds']:.2f}s rss {cell['peak_rss_mb']}MB"
                f" edges {cell['edges']}"
            )
    largest = max(SIZES)
    speedups = {
        n: cells[f"reference_dict_{n}"]["wall_seconds"]
        / cells[f"fast_dict_{n}"]["wall_seconds"]
        for n in SIZES
    }
    for n, ratio in speedups.items():
        print(f"speedup n={n}: {ratio:.2f}x")
    bench_extra(
        sizes=list(SIZES),
        trials=TRIALS,
        cells=cells,
        speedups={str(n): round(s, 3) for n, s in speedups.items()},
    )
    # Memory: the fast engine must not out-eat the reference, and the
    # columnar store must not out-eat the dict store.
    assert (
        cells[f"fast_dict_{largest}"]["peak_rss_mb"]
        <= 1.2 * cells[f"reference_dict_{largest}"]["peak_rss_mb"]
    )
    assert (
        cells[f"fast_columnar_{largest}"]["peak_rss_mb"]
        <= 1.1 * cells[f"fast_dict_{largest}"]["peak_rss_mb"]
    )
    # Acceptance gate: ≥5× at 100k users.
    if largest >= 100_000:
        assert speedups[largest] >= 5.0, (
            f"fast engine only {speedups[largest]:.2f}x faster at n={largest}"
        )
    else:
        assert speedups[largest] >= 3.0  # smoke-scale floor


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_MILLION"),
    reason="million-user cell is opt-in (REPRO_BENCH_MILLION=1)",
)
def test_million_user_world(bench_extra):
    """The headline cell: 1M users, columnar store, hard RSS + wall gates."""
    cell = _build_once("fast", "columnar", MILLION_USERS, crawl_pages=2_000)
    print(
        f"\nmillion-user build: wall {cell['wall_seconds']:.1f}s"
        f" rss {cell['peak_rss_mb']}MB edges {cell['edges']}"
        f" crawl_pages {cell['crawl_pages']} crawl_edges {cell['crawl_edges']}"
    )
    bench_extra(million=cell)
    assert cell["peak_rss_mb"] <= MILLION_RSS_MB, (
        f"1M-user columnar build peaked at {cell['peak_rss_mb']}MB"
        f" (gate {MILLION_RSS_MB}MB)"
    )
    assert cell["wall_seconds"] <= MILLION_WALL_SECONDS
    assert cell["crawl_pages"] > 0 and cell["crawl_edges"] > 0
