"""Figure 3 bench: degree CCDFs and the paper's log-log regression."""

from repro.analysis.structure import analyze_degrees


def test_fig3_degree_distributions(benchmark, bench_graph, bench_results,
                                   artifact_sink):
    analysis = benchmark(analyze_degrees, bench_graph)
    print()
    print(artifact_sink("fig3", bench_results))
    # Power-law shape with exponents near the paper's 1.3 / 1.2 and a
    # high-quality regression (paper R^2 = 0.99).
    assert 1.0 < analysis.in_fit.alpha < 2.0
    assert 0.9 < analysis.out_fit.alpha < 1.8
    assert analysis.in_fit.r_squared > 0.9
    assert analysis.out_fit.r_squared > 0.9
    # Heavy tail: max in-degree far above the mean.
    dist = analysis.distributions
    assert dist.in_degrees.max() > 20 * dist.in_degrees.mean()
