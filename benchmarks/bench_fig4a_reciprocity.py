"""Figure 4a bench: relation-reciprocity distribution."""

import numpy as np

from repro.analysis.structure import analyze_reciprocity


def test_fig4a_reciprocity(benchmark, bench_graph, bench_results, artifact_sink):
    analysis = benchmark.pedantic(
        analyze_reciprocity, args=(bench_graph,), rounds=2, iterations=1
    )
    print()
    print(artifact_sink("fig4a", bench_results))
    # Paper: 32% global reciprocity, above Twitter's 22.1%.
    assert 0.22 < analysis.global_reciprocity < 0.55
    # The RR CDF spreads over the whole unit interval: popular users near
    # zero, many ordinary users high.
    values = analysis.rr_values
    assert (values < 0.1).mean() > 0.05
    assert (values > 0.6).mean() > 0.15
    assert np.all((values >= 0) & (values <= 1))
