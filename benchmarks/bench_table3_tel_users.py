"""Table 3 bench: all users vs tel-users."""

from repro.analysis.tel_users import compare_tel_users


def test_table3_tel_users(benchmark, bench_dataset, bench_geo,
                          bench_results, artifact_sink):
    comparison = benchmark(compare_tel_users, bench_dataset, bench_geo)
    print()
    print(artifact_sink("table3", bench_results))
    # Paper skews: male and single overrepresented among tel-users;
    # India overrepresented, US underrepresented. The tel-user rate is
    # 0.26%, so bench-scale subsamples are small; skew assertions only
    # make sense where the subgroup has enough members (the paper's own
    # columns rest on 29k-71k tel-user observations).
    assert comparison.gender_tel.shares["Male"] > comparison.gender_all.shares["Male"]
    if comparison.relationship_tel.total >= 20:
        assert (
            comparison.relationship_tel.shares["Single"]
            > comparison.relationship_all.shares["Single"]
        )
    assert comparison.location_tel.shares["IN"] > comparison.location_all.shares["IN"]
    assert comparison.location_tel.shares["US"] < comparison.location_all.shares["US"]
