"""Figure 5 bench: sampled path-length distributions (degrees of separation).

Besides the artifact itself, this bench races the retained sequential
reference (one ``bfs_distances`` per source) against the batched BFS
engine with 4 workers, asserts the two distributions are bit-identical,
and records both wall times and the speedup into
``BENCH_fig5_path_length.json`` (the ``extra`` block).
"""

import time

import numpy as np

from repro.analysis.structure import analyze_path_lengths
from repro.graph.parallel import BFSEngine
from repro.graph.paths import (
    DIRECTED,
    sampled_path_lengths,
    sampled_path_lengths_sequential,
    UNDIRECTED,
)


def test_fig5_path_length(benchmark, bench_graph, bench_results, artifact_sink):
    def run():
        return analyze_path_lengths(
            bench_graph, np.random.default_rng(11), initial_k=200, max_k=600
        )

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(artifact_sink("fig5", bench_results))
    # Shape targets (absolute values shrink with n; paper: 5.9/4.7 at 35M):
    # directed paths longer than undirected, unimodal distribution, and a
    # directed mode >= undirected mode.
    assert analysis.directed.mean > analysis.undirected.mean
    assert analysis.directed.mode >= analysis.undirected.mode
    probabilities = analysis.directed.probabilities()
    mode = analysis.directed.mode
    assert probabilities[mode] == probabilities.max()


def test_fig5_parallel_speedup(bench_graph, bench_extra):
    """Sequential vs engine (n_workers=4): identical counts, >= 3x faster."""
    kwargs = dict(initial_k=200, max_k=600)

    started = time.perf_counter()
    sequential = {
        mode: sampled_path_lengths_sequential(
            bench_graph, np.random.default_rng(11), mode=mode, **kwargs
        )
        for mode in (DIRECTED, UNDIRECTED)
    }
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    with BFSEngine(bench_graph, n_workers=4) as engine:
        parallel = {
            mode: sampled_path_lengths(
                bench_graph, np.random.default_rng(11), mode=mode,
                engine=engine, **kwargs,
            )
            for mode in (DIRECTED, UNDIRECTED)
        }
    parallel_seconds = time.perf_counter() - started

    for mode in (DIRECTED, UNDIRECTED):
        assert sequential[mode].n_sources == parallel[mode].n_sources
        np.testing.assert_array_equal(
            sequential[mode].counts, parallel[mode].counts
        )
    speedup = sequential_seconds / parallel_seconds
    bench_extra(
        sequential_seconds=sequential_seconds,
        parallel_seconds=parallel_seconds,
        parallel_workers=4,
        speedup=speedup,
        n_sources={m: d.n_sources for m, d in sequential.items()},
    )
    print(
        f"\nfig5 sequential {sequential_seconds:.2f}s, "
        f"engine(4 workers) {parallel_seconds:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0
