"""Figure 5 bench: sampled path-length distributions (degrees of separation)."""

import numpy as np

from repro.analysis.structure import analyze_path_lengths


def test_fig5_path_length(benchmark, bench_graph, bench_results, artifact_sink):
    def run():
        return analyze_path_lengths(
            bench_graph, np.random.default_rng(11), initial_k=200, max_k=600
        )

    analysis = benchmark.pedantic(run, rounds=2, iterations=1)
    print()
    print(artifact_sink("fig5", bench_results))
    # Shape targets (absolute values shrink with n; paper: 5.9/4.7 at 35M):
    # directed paths longer than undirected, unimodal distribution, and a
    # directed mode >= undirected mode.
    assert analysis.directed.mean > analysis.undirected.mean
    assert analysis.directed.mode >= analysis.undirected.mode
    probabilities = analysis.directed.probabilities()
    mode = analysis.directed.mode
    assert probabilities[mode] == probabilities.max()
