"""Figure 10 bench: the country-to-country link graph."""

import pytest

from repro.analysis.linkgeo import analyze_link_geography
from repro.core.paper_tables import GooglePlusPaper
from repro.synth.countries import TOP10_CODES


def test_fig10_country_links(benchmark, bench_dataset, bench_geo,
                             bench_results, artifact_sink):
    analysis = benchmark(
        analyze_link_geography, bench_dataset, bench_geo, list(TOP10_CODES)
    )
    print()
    print(artifact_sink("fig10", bench_results))
    graph = analysis.graph
    # Per-country self-loop weights near the published figure.
    for code, paper_value in GooglePlusPaper.SELF_LOOPS.items():
        assert graph.self_loop(code) == pytest.approx(paper_value, abs=0.15), code
    # Qualitative reads: inward-looking IN/BR/ID/US, outward GB/CA,
    # and the US as the dominant cross-border sink.
    assert {"US", "IN", "BR", "ID"} <= set(analysis.inward_looking(0.5))
    assert {"GB", "CA"} <= set(analysis.outward_looking(0.45))
    assert analysis.us_is_dominant_sink()
