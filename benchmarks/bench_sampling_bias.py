"""Extension bench: crawler sampling-bias study (Section 2.2 caveat).

Quantifies the degree bias of each sampling strategy the measurement
literature (Gjoka et al.; Ribeiro & Towsley) discusses for OSN crawls:
plain random walk (degree-biased), RW with Hansen-Hurwitz reweighting,
and Metropolis-Hastings RW — all against the uniform ground truth only
the simulator knows.
"""

import numpy as np

from repro.crawler.fetch import Fetcher
from repro.crawler.graph_sampling import (
    MHRWSampler,
    RandomWalkSampler,
    reweighted_mean_degree,
    SamplingBiasReport,
)
from repro.synth import build_world, WorldConfig


def test_sampling_bias(benchmark):
    world = build_world(WorldConfig(n_users=4_000, seed=51))
    true_mean = 2 * world.graph.n_edges / world.n_users

    def run():
        fetcher = Fetcher(frontend=world.frontend(), ip="10.1.1.1")
        rng = np.random.default_rng(5)
        seed = world.seed_user_id()
        rw = RandomWalkSampler(fetcher, rng).walk(seed, 1_500, burn_in=150)
        mhrw = MHRWSampler(fetcher, rng).walk(seed, 1_500, burn_in=150)
        return SamplingBiasReport(
            true_mean_degree=true_mean,
            bfs_mean_degree=float("nan"),  # covered by bench_ablations
            rw_mean_degree=rw.mean_degree(),
            rw_reweighted_mean_degree=reweighted_mean_degree(rw),
            mhrw_mean_degree=mhrw.mean_degree(),
        )

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    print(
        f"\ntrue mean degree {report.true_mean_degree:.1f} |"
        f" RW {report.rw_mean_degree:.1f}"
        f" (bias {report.bias_of(report.rw_mean_degree):+.0%}) |"
        f" RW reweighted {report.rw_reweighted_mean_degree:.1f} |"
        f" MHRW {report.mhrw_mean_degree:.1f}"
        f" (bias {report.bias_of(report.mhrw_mean_degree):+.0%})"
    )
    # Plain RW over-samples hubs by a wide margin...
    assert report.bias_of(report.rw_mean_degree) > 0.5
    # ...while the two unbiased estimators land near the truth.
    assert abs(report.bias_of(report.rw_reweighted_mean_degree)) < 0.35
    assert abs(report.bias_of(report.mhrw_mean_degree)) < 0.35
