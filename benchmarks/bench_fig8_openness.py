"""Figure 8 bench: per-country CCDF of fields shared."""

from repro.analysis.openness import openness_by_country
from repro.synth.countries import TOP10_CODES


def test_fig8_openness(benchmark, bench_dataset, bench_geo,
                       bench_results, artifact_sink):
    analysis = benchmark(
        openness_by_country, bench_dataset, bench_geo, list(TOP10_CODES)
    )
    print()
    print(artifact_sink("fig8", bench_results))
    ranking = analysis.ranking()
    # Paper: Indonesia and Mexico the most open; Germany the most
    # conservative ("only country with <10% sharing more than 12 fields").
    assert {"ID", "MX"} & set(ranking[:3])
    assert "DE" in ranking[-3:]
    # Everyone's minimum is 2 fields (name + places lived).
    for country in analysis.by_country.values():
        assert country.counts.min() >= 2
