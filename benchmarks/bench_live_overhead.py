"""Live-telemetry overhead bench: observation must not distort the crawl.

:class:`~repro.obs.live.LiveTelemetry` deploys as the ``--live`` flag of
a durable campaign — chained *after* the store, riding every ``on_page``
and checkpoint — so the number that matters is the marginal cost of
flipping that flag on a campaign run.  Three guarantees, one strict and
two statistical:

* **Virtual timeline**: the instrumented campaign produces a dataset
  *bit-identical* to the uninstrumented one — the hook observes the
  page stream without perturbing it, checked with ``dataset_diff``.
* **Wall clock (enabled)**: full telemetry — sketch ingestion from
  sealed segments, epochs with figure computation and msbfs path
  refreshes, atomic report rewrites — stays within the 3% budget.
* **Wall clock (killed)**: with the registry disabled (``REPRO_OBS=0``)
  the campaign never chains the hook at all, so the kill switch leaves
  the bare code path and the residual is measurement noise.

Measurement: scheduler/thermal drift on a shared machine swings whole
campaign walls by tens of percent between rounds, and always *adds*
time.  So each round times its arms back-to-back and contributes one
paired ratio, and the assertion uses the minimum ratio across rounds —
the round least contaminated by one-sided noise — after a discarded
warmup round that absorbs import/page-cache effects.
"""

from __future__ import annotations

import shutil
import time

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import Registry
from repro.store import dataset_diff
from repro.store.campaign import CampaignConfig, CrawlCampaign

USERS = 4_000
SEED = 31
ROUNDS = 6


def timed_campaign(tmp_path, live: bool, enabled: bool):
    """One fresh campaign run; returns (dataset, wall_seconds)."""
    directory = tmp_path / "campaign"
    if directory.exists():
        shutil.rmtree(directory)
    old_registry = metrics_mod.get_registry()
    metrics_mod.set_registry(Registry(enabled=enabled))
    try:
        campaign = CrawlCampaign(directory, CampaignConfig(n_users=USERS, seed=SEED))
        start = time.perf_counter()
        dataset = campaign.run(live=live)
        return dataset, time.perf_counter() - start
    finally:
        metrics_mod.set_registry(old_registry)


def test_live_telemetry_overhead(benchmark, tmp_path, bench_extra):
    arms = [
        (False, True),   # bare campaign, metrics on
        (True, True),    # --live campaign, metrics on
        (False, False),  # bare campaign, REPRO_OBS=0
        (True, False),   # --live campaign, REPRO_OBS=0
    ]
    walls: dict[tuple[bool, bool], list[float]] = {arm: [] for arm in arms}
    datasets: dict[tuple[bool, bool], object] = {}
    for round_index in range(ROUNDS + 1):
        for arm in arms:
            dataset, wall = timed_campaign(tmp_path, *arm)
            if round_index:  # round 0 is warmup: discard its walls
                walls[arm].append(wall)
            datasets[arm] = dataset

    # The observer must not perturb the crawl: every arm yields the
    # bit-identical dataset.
    reference = datasets[(False, True)]
    for arm in arms[1:]:
        assert dataset_diff(datasets[arm], reference) == []

    # Paired per-round ratios, then min across rounds (see module
    # docstring for why min is the right estimator here).
    def paired_overhead(live_arm, bare_arm):
        ratios = [
            live / bare
            for live, bare in zip(walls[live_arm], walls[bare_arm])
        ]
        return min(ratios) - 1.0

    live_overhead = paired_overhead((True, True), (False, True))
    killed_overhead = paired_overhead((True, False), (False, False))
    bare_best = min(walls[(False, True)])
    print(
        f"\nlive-telemetry overhead: enabled {live_overhead:+.2%}, "
        f"REPRO_OBS=0 {killed_overhead:+.2%} (bare {bare_best:.3f}s)"
    )
    bench_extra(
        bare_seconds=bare_best,
        live_overhead=live_overhead,
        killed_overhead=killed_overhead,
    )
    assert live_overhead < 0.03
    # The kill switch skips chaining the hook entirely: within noise.
    assert killed_overhead < 0.01

    # One representative timed pass for the harness's run report.
    benchmark.pedantic(
        lambda: timed_campaign(tmp_path, live=True, enabled=True),
        rounds=1,
        iterations=1,
    )
