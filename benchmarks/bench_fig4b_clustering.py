"""Figure 4b bench: clustering-coefficient distribution over a node sample."""

import numpy as np

from repro.analysis.structure import analyze_clustering


def test_fig4b_clustering(benchmark, bench_graph, bench_results, artifact_sink):
    def run():
        return analyze_clustering(
            bench_graph, np.random.default_rng(3), sample_size=2_000
        )

    analysis = benchmark.pedantic(run, rounds=3, iterations=1)
    print()
    print(artifact_sink("fig4b", bench_results))
    # Paper: 40% of sampled users have CC > 0.2 — far denser than a
    # degree-matched random graph.
    assert analysis.fraction_above(0.2) > 0.15
    random_baseline = bench_graph.n_edges / bench_graph.n**2
    assert analysis.mean > 10 * random_baseline
