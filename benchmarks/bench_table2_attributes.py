"""Table 2 bench: public attribute availability."""

import pytest

from repro.analysis.attributes import attribute_availability


def test_table2_attributes(benchmark, bench_dataset, bench_results, artifact_sink):
    rows = benchmark(attribute_availability, bench_dataset)
    print()
    print(artifact_sink("table2", bench_results))
    by_key = {r.key: r for r in rows}
    assert by_key["name"].percent == 100.0
    assert by_key["gender"].percent == pytest.approx(97.67, abs=1.5)
    assert by_key["places_lived"].percent == pytest.approx(26.75, abs=5.0)
    assert by_key["work_contact"].percent < 1.0
