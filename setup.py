"""Setup shim: enables legacy editable installs on environments without
the ``wheel`` package (``python setup.py develop``). Configuration lives
in pyproject.toml.
"""

from setuptools import setup

setup()
