"""Geography of adoption: where Google+ users live and whom they befriend.

Reproduces Section 4: the country ranking (Figure 6), the economics of
adoption (Figure 7 — GPR decoupled from GDP, India on top), the distance
structure of friendships (Figure 9) and the cross-country link landscape
(Figure 10), plus the Table 5 occupation profiles with Jaccard indices.

Run:  python examples/geo_adoption.py [n_users] [seed]
"""

import sys

from repro.core import MeasurementStudy, StudyConfig
from repro.experiments.registry import EXPERIMENTS


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 23
    results = MeasurementStudy(StudyConfig(n_users=n_users, seed=seed)).run()

    for artifact in ("fig6", "fig7", "fig9", "fig10", "table5"):
        print(EXPERIMENTS[artifact].render(results))
        print()

    graph = results.fig10_links.graph
    print("Recommendation-system hint (Section 6):")
    for code in graph.countries:
        stance = "domestic" if graph.self_loop(code) > 0.5 else "foreign"
        print(
            f"  {code}: self-loop {graph.self_loop(code):.2f}"
            f" -> recommend {stance} users/content first"
        )


if __name__ == "__main__":
    main()
