"""Big world: generate a 200k-user Google+ world with the fast engine.

The vectorized engine (``WorldConfig(engine="fast")``) produces the same
calibrated graph family as the bit-stable reference generator at ≥5× the
speed (see ``docs/synth.md``), which is what makes paper-scale worlds
practical: 200k users build in seconds instead of minutes.

Prints the same calibration targets the acceptance suite checks —
power-law exponent, reciprocity, domesticity — so you can see the big
world still behaves like the paper's graph.

Run:  python examples/big_world.py [n_users] [seed]
"""

import sys
import time

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.powerlaw import fit_powerlaw
from repro.graph.reciprocity import global_reciprocity
from repro.synth import build_world, WorldConfig


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    print(f"Building a {n_users:,}-user world with the fast engine...")
    started = time.perf_counter()
    world = build_world(WorldConfig(n_users=n_users, seed=seed, engine="fast"))
    elapsed = time.perf_counter() - started
    graph = world.graph
    print(
        f"built in {elapsed:.1f}s: {world.n_users:,} accounts,"
        f" {graph.n_edges:,} directed edges"
        f" ({graph.n_edges / max(elapsed, 1e-9):,.0f} edges/s)"
    )

    csr = CSRGraph.from_edge_arrays(
        graph.sources, graph.targets, node_ids=np.arange(world.n_users)
    )
    in_fit = fit_powerlaw(csr.in_degrees(), x_min=10)
    reciprocity = global_reciprocity(csr)
    codes = np.asarray(world.population.country_codes)
    domestic = float((codes[graph.sources] == codes[graph.targets]).mean())

    print("\n-- calibration targets at scale --")
    print(f"  mean degree:     {graph.n_edges / world.n_users:.1f}  (paper 16.4)")
    print(f"  alpha_in:        {in_fit.alpha:.2f}  (paper 1.3)")
    print(f"  reciprocity:     {100 * reciprocity:.1f}%  (paper 32%)")
    print(f"  domestic links:  {100 * domestic:.1f}%  (Figure 10 diagonal)")

    seed_user = world.seed_user_id()
    print(
        f"\nseed user for a crawl: #{seed_user}"
        f" ({world.profiles[seed_user].name}),"
        f" {world.service.in_degree(seed_user):,} followers"
    )


if __name__ == "__main__":
    main()
