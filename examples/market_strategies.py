"""Market strategies: the Section 6 implications, derived from data.

The paper's discussion section argues its measurements should drive
product decisions — recommender scope (domestic vs foreign content),
which professions to feature per country, where political campaigning
works, and how to pitch privacy defaults. This example runs the full
measurement study and derives exactly those strategies, country by
country, from the measured artifacts.

Run:  python examples/market_strategies.py [n_users] [seed]
"""

import sys

from repro.analysis.implications import campaign_countries, derive_strategies
from repro.core import MeasurementStudy, StudyConfig
from repro.experiments import format_table


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    results = MeasurementStudy(StudyConfig(n_users=n_users, seed=seed)).run()
    strategies = derive_strategies(results)

    rows = [
        (
            s.country,
            s.recommend_scope,
            f"{s.self_loop:.2f}",
            s.featured_label,
            "viable" if s.political_campaign_viable else "-",
            s.privacy_posture,
        )
        for s in strategies.values()
    ]
    print(
        format_table(
            ["Country", "Recommender scope", "Self-loop", "Feature first",
             "Political ads", "Privacy posture"],
            rows,
            title="Per-country product strategy (Section 6, derived)",
        )
    )
    print()
    print(
        "Political campaigning viable in:",
        ", ".join(campaign_countries(strategies)) or "none",
        " (the paper: 'except for in Spain')",
    )
    conservative = [
        s.country for s in strategies.values() if s.privacy_posture == "conservative"
    ]
    print(
        "Ship stricter privacy defaults first in:",
        ", ".join(conservative),
        " (Figure 8's conservative tier)",
    )


if __name__ == "__main__":
    main()
