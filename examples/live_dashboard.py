"""Live telemetry: watch a campaign's figures converge, survive a crash.

A durable campaign run with ``live=True`` chains a
:class:`repro.obs.live.LiveTelemetry` hook behind the store: incremental
sketches ingest every sealed edge segment and crawled profile, each
checkpoint publishes an *epoch* (degree CCDFs, reciprocity, components,
country mix, sampled path lengths) pinned to that checkpoint's exact
cut, and ``run_report.json`` is atomically rewritten as the crawl runs —
so the figures are observable *while* the campaign is in flight, and a
crash leaves partial figures behind instead of nothing.

The script shows both halves:

1. a full campaign, printing the per-epoch figure trajectory and the
   rendered dashboard (what ``python -m repro.obs.live`` shows);
2. the same campaign crashed mid-crawl — the surviving report's newest
   epoch is then *proven* bit-equal to the batch pipeline recomputed
   over exactly the crawled prefix, and the campaign resumes to
   completion with telemetry still attached.

Run:  python examples/live_dashboard.py [--users N] [--seed S]

Render any live campaign's report yourself:

    python -m repro.store run --dir /tmp/camp --users 2000 --live
    python -m repro.obs.live /tmp/camp/run_report.json --follow
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro.analysis.streaming import verify_live_report
from repro.obs.live.dashboard import load_report_document, render_report
from repro.obs.report import RUN_REPORT_FILENAME
from repro.store.campaign import CampaignConfig, CrawlCampaign, SimulatedCrash


def print_trajectory(report_path: Path) -> None:
    """One line per epoch: how the figure estimates converged."""
    live = load_report_document(report_path)["extra"]["live"]
    epochs = list(live["history"]) + ([live["epoch"]] if live["epoch"] else [])
    print(f"  {'epoch':>5} {'pages':>6} {'edges':>7} {'recip':>7} {'giant':>6} {'hops':>5}")
    for epoch in epochs:
        figures = epoch["figures"]
        paths = figures.get("path_lengths") or {}
        mean_hops = paths.get("mean_hops")
        hops = f"{mean_hops:>5.2f}" if mean_hops is not None else "  n/a"
        print(
            f"  {epoch['sequence']:>5} {epoch['n_pages']:>6} {epoch['n_edges']:>7}"
            f" {figures['reciprocity']:>7.4f}"
            f" {figures['components']['giant_size']:>6} {hops}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--crash-after", type=int, default=900,
                        help="pages before the injected crash in part 2")
    args = parser.parse_args()

    config = CampaignConfig(n_users=args.users, seed=args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        # -- 1. a full campaign, observed live --------------------------------
        campaign_dir = Path(tmp) / "full"
        dataset = CrawlCampaign(campaign_dir, config).run(live=True)
        report_path = campaign_dir / RUN_REPORT_FILENAME
        print(f"campaign complete: {dataset.n_profiles:,} pages,"
              f" {dataset.n_edges:,} edges")
        print("figure trajectory (one row per epoch):")
        print_trajectory(report_path)
        print()
        print(render_report(load_report_document(report_path)))
        print()

        # -- 2. crash mid-crawl: partial figures survive, and verify ---------
        crashed_dir = Path(tmp) / "crashed"
        try:
            CrawlCampaign(crashed_dir, config).run(
                live=True, crash_after_pages=args.crash_after
            )
            raise RuntimeError("expected the injected crash")
        except SimulatedCrash as crash:
            print(f"crashed on purpose: {crash}")
        surviving = crashed_dir / RUN_REPORT_FILENAME
        live = json.loads(surviving.read_text())["extra"]["live"]
        epoch = live["epoch"]
        print(f"surviving report: status={live['status']!r}, newest epoch at"
              f" {epoch['n_pages']} pages / {epoch['n_edges']} edges")

        problems = verify_live_report(surviving, campaign_dir=crashed_dir)
        if problems:
            raise SystemExit("\n".join(problems))
        print("verified: partial live figures are bit-equal to the batch"
              " pipeline on the crawled prefix")

        # -- 3. resume to completion, telemetry still attached ----------------
        resumed = CrawlCampaign(crashed_dir, config).run(live=True)
        assert resumed.n_profiles == dataset.n_profiles
        print(f"resumed to completion: {resumed.n_profiles:,} pages"
              f" (matches the uninterrupted run)")


if __name__ == "__main__":
    main()
