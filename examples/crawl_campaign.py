"""Crawl campaign: the lower-level API, end to end.

Shows what :func:`repro.run_study` hides: building a world, standing up
the rate-limited HTTP front end, configuring the 11-machine crawl fleet,
archiving the dataset to disk, reloading it, and running the Section 2.2
lost-edge accounting — here with a deliberately small circle-list display
cap so the truncation machinery fires at laptop scale.

Run:  python examples/crawl_campaign.py [--users N] [--seed S]

Durable-campaign walkthrough (see docs/storage.md) — a crawl that
survives being killed and resumes bit-identically:

    # start a durable campaign, crash it partway through
    python examples/crawl_campaign.py --campaign-dir /tmp/camp --crash-after 300

    # pick it up where the last checkpoint left it and finish
    python examples/crawl_campaign.py --campaign-dir /tmp/camp --resume
"""

import argparse
import tempfile
from pathlib import Path

from repro.crawler import (
    BidirectionalBFSCrawler,
    CrawlConfig,
    CrawlDataset,
    estimate_lost_edges,
    naive_truncation_loss,
)
from repro.synth import build_world, WorldConfig


def run_durable_campaign(args: argparse.Namespace) -> None:
    """The repro.store path: journal + segments + checkpoints on disk."""
    from repro.store import CampaignConfig, CrawlCampaign, SimulatedCrash

    config = CampaignConfig(
        n_users=args.users,
        seed=args.seed,
        circle_display_limit=200,
        rate_per_ip=100.0,
        burst=200.0,
        error_rate=0.01,
        checkpoint_every_pages=200,
    )
    # Resuming reopens the directory and loads the stored config; pass
    # the config only on first creation.
    campaign = CrawlCampaign(
        args.campaign_dir, None if args.resume else config
    )
    print(f"campaign at {args.campaign_dir} [{campaign.status}]")
    try:
        dataset = campaign.run(crash_after_pages=args.crash_after)
    except SimulatedCrash as crash:
        report = campaign.inspect()
        print(f"crashed on purpose: {crash}")
        print(
            f"durable so far: {report['segments']['edges']} edges in "
            f"{report['segments']['count']} segment shards, "
            f"{len(report['checkpoints'])} checkpoints"
        )
        print("resume with:  python examples/crawl_campaign.py "
              f"--campaign-dir {args.campaign_dir} --resume")
        return
    stats = dataset.stats
    print(
        f"campaign complete: {dataset.n_profiles:,} profiles, "
        f"{dataset.n_edges:,} edges, {stats.virtual_duration:,.0f}s virtual"
    )
    # The archive under <dir>/archive is a normal CrawlDataset directory
    # — and equals what an uninterrupted in-memory crawl produces, even
    # if the campaign was killed and resumed along the way.
    from repro.store import dataset_diff

    archive = CrawlDataset.load(Path(args.campaign_dir) / "archive")
    assert dataset_diff(archive, dataset) == []
    print(f"archive verified at {args.campaign_dir}/archive")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=8_000)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--campaign-dir",
        default=None,
        help="run as a durable repro.store campaign rooted at this directory",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign at --campaign-dir instead of creating it",
    )
    parser.add_argument(
        "--crash-after",
        type=int,
        default=None,
        metavar="PAGES",
        help="inject a crash after N pages (demonstrates recovery)",
    )
    args = parser.parse_args()

    if args.campaign_dir is not None:
        run_durable_campaign(args)
        return

    n_users, seed = args.users, args.seed

    # A small display cap (the real service used 10,000) makes celebrity
    # in-lists overflow even in a small world.
    world = build_world(
        WorldConfig(n_users=n_users, seed=seed, circle_display_limit=200)
    )
    print(
        f"world: {world.n_users:,} users, {world.graph.n_edges:,} true edges,"
        f" display cap {world.service.circle_display_limit}"
    )

    # The front end throttles per IP and injects transient 503s; the
    # fetchers back off and retry, like the authors' 46-day campaign.
    frontend = world.frontend(rate_per_ip=100.0, burst=200.0, error_rate=0.01)
    crawler = BidirectionalBFSCrawler(
        frontend, CrawlConfig(n_machines=11, request_latency=0.05)
    )
    dataset = crawler.crawl([world.seed_user_id()])
    stats = dataset.stats
    print(
        f"crawl: {dataset.n_profiles:,} profiles, {dataset.n_edges:,} edges,"
        f" {stats.throttled} throttles, {stats.server_errors} retried errors,"
        f" {stats.virtual_duration:,.0f}s of virtual time on {stats.n_machines} machines"
    )

    # Archive and reload — the role of the authors' public dataset.
    with tempfile.TemporaryDirectory() as tmp:
        dataset.save(Path(tmp) / "gplus-crawl")
        reloaded = CrawlDataset.load(Path(tmp) / "gplus-crawl")
        assert reloaded.n_profiles == dataset.n_profiles
        assert reloaded.n_edges == dataset.n_edges
        print(f"dataset archived and reloaded from {tmp}/gplus-crawl")

    # Section 2.2: how many edges did the display cap cost us?
    naive = naive_truncation_loss(dataset, display_limit=200)
    recovered = estimate_lost_edges(dataset, display_limit=200)
    print(
        f"capped users: {recovered.capped_users}"
        f" (declared {recovered.declared_edges:,} incoming edges)"
    )
    print(
        f"loss without bidirectional recovery: {naive.lost_fraction:.2%};"
        f" after recovery: {recovered.lost_fraction:.2%}"
        f" (paper: 1.6% at the 10,000 cap)"
    )

    # The crawled graph vs the ground truth the simulator knows.
    true_edges = world.graph.n_edges
    print(
        f"edge recall vs ground truth: {dataset.n_edges / true_edges:.2%}"
        f" ({dataset.n_edges:,} of {true_edges:,})"
    )


if __name__ == "__main__":
    main()
