"""Chaos crawl: a fleet that survives a scripted hostile service.

Arms the simulated HTTP front end with a :class:`repro.faults.FaultSchedule`
— a 503 burst, a whole-fleet 403 ban, and a stretch of corrupted pages —
and crawls through it with the resilience machinery turned on: jittered
backoff, per-machine circuit breakers, a retry budget, and a dead-letter
queue whose pages are re-driven once the hostile windows pass. The punch
line: the chaos crawl recovers the *identical graph* a clean-weather
crawl of the same world collects — chaos changes the journey, not the
destination.

Run:  python examples/chaos_crawl.py [--users N] [--seed S]

      # or a curated scenario end-to-end as a durable campaign:
      python -m repro.faults --scenario flaky-fleet

See docs/faults.md for the scenario schema and determinism guarantees.
"""

import argparse

from repro.crawler import BidirectionalBFSCrawler, CrawlConfig
from repro.crawler.lost_edges import estimate_dead_letter_loss
from repro.faults import FaultSchedule
from repro.synth import build_world, WorldConfig

#: A hostile afternoon, scripted.  Windows are in virtual seconds; the
#: whole crawl below spans ~4 of them.
SCENARIO = {
    "seed": 5,
    "rules": [
        # Transient 503s while the frontier is still expanding.
        {"kind": "error_burst", "start": 0.1, "end": 0.8, "rate": 0.4,
         "retry_after": 0.01},
        # Then the site bans the entire fleet for half a virtual second.
        {"kind": "ip_ban", "start": 1.0, "end": 1.5, "retry_after": 0.05},
        # And some pages come back mangled throughout.
        {"kind": "corrupt_pages", "start": 0.2, "end": 2.0, "rate": 0.1},
    ],
}

#: Backoffs on the simulated transport's ~20 ms request scale.
RESILIENCE = CrawlConfig(
    n_machines=11,
    initial_backoff=0.02,
    max_backoff=0.3,
    breaker_cooldown=0.2,
    max_retries=4,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    config = WorldConfig(n_users=args.users, seed=args.seed)
    world = build_world(config)
    print(f"world: {world.n_users:,} users, {world.graph.n_edges:,} true edges")

    # Clean weather first: the reference the chaos crawl must match.
    clean = BidirectionalBFSCrawler(world.frontend(), RESILIENCE).crawl(
        [world.seed_user_id()]
    )
    print(
        f"clean crawl:  {clean.n_profiles:,} profiles, {clean.n_edges:,} edges,"
        f" {clean.stats.virtual_duration:.1f}s virtual"
    )

    # Same world, same fleet — but the server is now hostile.  Rebuilt
    # from the same config so the chaos run's virtual clock starts at
    # zero, where the scenario windows are scripted.
    world = build_world(config)
    frontend = world.frontend(faults=FaultSchedule.from_dict(SCENARIO))
    chaos = BidirectionalBFSCrawler(frontend, RESILIENCE).crawl(
        [world.seed_user_id()]
    )
    stats = chaos.stats
    print(
        f"chaos crawl:  {chaos.n_profiles:,} profiles, {chaos.n_edges:,} edges,"
        f" {stats.virtual_duration:.1f}s virtual"
    )
    print(
        f"absorbed: {stats.server_errors} 503s, {stats.banned} bans,"
        f" {stats.parse_errors} corrupt pages;"
        f" {stats.redriven} dead letters re-driven, {stats.dead_lettered} lost"
    )

    # Dead letters that stayed dead would cost edges; price the damage.
    loss = estimate_dead_letter_loss(chaos)
    print(
        f"estimated edge loss from dead pages: {loss.lost_fraction:.4%}"
        f" ({loss.estimated_missing_edges:.0f} edges)"
    )

    # The payoff: chaos changed the *journey* (pages were re-driven out
    # of BFS order, retries cost virtual time) but not the *graph*.
    if set(chaos.profiles) != set(clean.profiles):
        print("DIVERGED: chaos crawl covered different profiles")
        raise SystemExit(1)
    clean_edges = set(zip(clean.sources.tolist(), clean.targets.tolist()))
    chaos_edges = set(zip(chaos.sources.tolist(), chaos.targets.tolist()))
    if chaos_edges != clean_edges:
        print(f"DIVERGED: {len(chaos_edges ^ clean_edges)} edges differ")
        raise SystemExit(1)
    print("chaos crawl recovered the identical graph — edge for edge")


if __name__ == "__main__":
    main()
