"""Privacy deep dive: risk-taking tel-users and cultural openness.

Reproduces the privacy thread of the paper (Sections 3.2 and 4.3):

* Table 2 — which profile attributes users make public;
* Table 3 — how tel-users (publicly sharing a phone number) differ in
  gender, relationship status and country;
* Figure 2 — tel-users share far more profile fields;
* Figure 8 — how openness varies across the top-10 countries.

Run:  python examples/privacy_study.py [n_users] [seed]
"""

import sys

from repro.core import MeasurementStudy, StudyConfig
from repro.experiments import format_table, percent
from repro.experiments.registry import EXPERIMENTS


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    results = MeasurementStudy(StudyConfig(n_users=n_users, seed=seed)).run()

    print(EXPERIMENTS["table2"].render(results))
    print()
    print(EXPERIMENTS["table3"].render(results))
    print()
    print(EXPERIMENTS["fig2"].render(results))
    print()
    print(EXPERIMENTS["fig8"].render(results))

    # A couple of derived observations the paper calls out in prose.
    t3 = results.table3_tel_users
    male_gap = t3.gender_tel.shares.get("Male", 0) - t3.gender_all.shares.get("Male", 0)
    single_gap = (
        t3.relationship_tel.shares.get("Single", 0)
        - t3.relationship_all.shares.get("Single", 0)
    )
    print()
    print(
        format_table(
            ["Observation", "Value"],
            [
                ("tel-users male surplus vs population", percent(male_gap)),
                ("tel-users single surplus vs population", percent(single_gap)),
                (
                    "tel-users sharing >6 fields",
                    percent(results.fig2_fields.fraction_sharing_more_than(6, "tel")),
                ),
                (
                    "all users sharing >6 fields",
                    percent(results.fig2_fields.fraction_sharing_more_than(6, "all")),
                ),
            ],
            title="Risk-taking signatures (Section 3.2)",
        )
    )


if __name__ == "__main__":
    main()
