"""Network growth: the paper's future-work study, implemented.

Section 7 of the paper proposes measuring "the speed at which a new
social network service grows", predicting "the tipping point when a
network suddenly shows a rapid growth or the point where the growth
stabilizes", and using "multiple snapshots of the Google+ topology" to
watch the internal structure change. This example does all three on the
synthetic world's growth timeline, and confirms the Section 5 hypothesis
that the young network's long paths (5.9 hops vs Facebook's 4.7) were a
symptom of youth: snapshots densify (Leskovec's E ∝ N^a, a > 1) and path
lengths shrink after the open-signup spike.

Run:  python examples/network_growth.py [n_users] [seed]
"""

import sys

from repro.analysis.growth import analyze_growth
from repro.experiments import AsciiPlot, format_table
from repro.synth import build_world, WorldConfig
from repro.synth.growth import build_timeline, OPEN_SIGNUP_DAY


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    world = build_world(WorldConfig(n_users=n_users, seed=seed))
    timeline = build_timeline(
        world.graph, world.config.field_trial_fraction, seed=seed + 1
    )
    growth = analyze_growth(timeline, seed=seed + 2, n_snapshots=8)

    plot = AsciiPlot(title="Adoption curve (registered users by day)")
    plot.add_series(growth.days, growth.adoption, "*", "users")
    print(plot.render())
    print(
        f"\ntipping point: day {growth.tipping_day:.0f}"
        f" (open signup was day {OPEN_SIGNUP_DAY:.0f});"
        f" growth stabilizes around day {growth.stabilization_day:.0f}"
    )

    rows = [
        (
            f"{s.day:.0f}",
            f"{s.n_nodes:,}",
            f"{s.n_edges:,}",
            f"{s.mean_degree:.1f}",
            f"{s.mean_path_length:.2f}",
            f"{s.reciprocity:.2f}",
        )
        for s in growth.snapshots
    ]
    print()
    print(
        format_table(
            ["Day", "Nodes", "Edges", "Mean degree", "Path length", "Reciprocity"],
            rows,
            title="Topology snapshots over the growth arc",
        )
    )
    print(
        f"\ndensification exponent a = {growth.densification_exponent:.2f}"
        f" (E ~ N^a; a > 1 means the network densifies as it grows)"
    )
    defined = [s for s in growth.snapshots if s.mean_path_length == s.mean_path_length]
    peak = max(defined, key=lambda s: s.mean_path_length)
    print(
        f"path length peaked at {peak.mean_path_length:.2f} hops on day"
        f" {peak.day:.0f} and fell to {defined[-1].mean_path_length:.2f} by the"
        f" crawl - the paper's 'new system still growing' explanation for its"
        f" 5.9-hop separation."
    )


if __name__ == "__main__":
    main()
