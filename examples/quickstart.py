"""Quickstart: reproduce the paper's headline results in one call.

Builds a synthetic Google+ world, crawls it the way Magno et al. did
(bidirectional BFS over public profile pages), and prints the headline
numbers of every section next to the paper's values.

Run:  python examples/quickstart.py [n_users] [seed]
"""

import sys

from repro import GooglePlusPaper as paper, run_study
from repro.experiments import percent


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    print(f"Running the measurement study (n_users={n_users}, seed={seed})...")
    results = run_study(n_users=n_users, seed=seed)

    print("\n-- Crawl (Section 2.2) --")
    print(
        f"profiles crawled: {results.dataset.n_profiles:,}"
        f" | graph: {results.graph.n:,} nodes, {results.graph.n_edges:,} edges"
    )

    print("\n-- Who is popular? (Table 1) --")
    for user in results.table1_top_users[:5]:
        print(f"  #{user.rank} {user.name} ({user.about}) - {user.in_degree:,} circles")

    print("\n-- Structure (Section 3.3) --")
    t4 = results.table4_row
    print(f"  mean degree: {t4.mean_in_degree:.1f}  (paper 16.4)")
    print(
        f"  reciprocity: {percent(t4.reciprocity)}"
        f"  (paper {percent(paper.GLOBAL_RECIPROCITY)},"
        f" Twitter {percent(paper.TWITTER_RECIPROCITY)})"
    )
    print(
        f"  avg path length: {t4.avg_path_length:.2f} directed /"
        f" {t4.undirected_avg_path_length:.2f} undirected"
        f"  (paper 5.9 / 4.7 at 35M nodes)"
    )
    print(
        f"  power law: alpha_in={results.fig3_degrees.in_fit.alpha:.2f},"
        f" alpha_out={results.fig3_degrees.out_fit.alpha:.2f}"
        f"  (paper 1.3 / 1.2)"
    )
    print(
        f"  giant SCC: {percent(results.fig4c_sccs.giant_fraction)} of nodes"
        f"  (paper ~70%)"
    )

    print("\n-- Geography (Section 4) --")
    top = results.fig6_countries
    print("  top countries:", ", ".join(f"{c.code} {c.fraction:.1%}" for c in top[:5]))
    gpr_top = results.fig7_penetration.ranked_by_gpr()[0]
    print(f"  highest Google+ penetration: {gpr_top.code}  (paper: IN)")
    f9 = results.fig9a_path_miles
    print(
        f"  friends within 1000 miles: {percent(f9.friends_within_1000mi())}"
        f"  (paper ~58%)"
    )
    print(
        f"  most conservative profile culture:"
        f" {results.fig8_openness.most_conservative()}  (paper: DE)"
    )


if __name__ == "__main__":
    main()
