"""Traffic storm: thousands of clients hammer the site mid-crawl.

A 50k-user world serves two populations at once — a crawler fleet
walking the graph under transient 503 bursts, and a seeded client
population browsing, searching and editing circles through the
privacy-aware page cache while the serving frontend degrades under the
``serving-rush`` chaos scenario.  Both ride one virtual clock, so the
whole storm is deterministic: same seed, same request trace, same SLO
numbers, and a crawl dataset bit-identical to a quiet-weather run.

The wrap-up renders the live dashboard frame (crawl progress + serving
SLO block) and the chained request-trace digest.

Run:  python examples/traffic_storm.py [--users N] [--clients C]
                                       [--seed S] [--dir PATH]

See docs/serving.md for the cache keying and SLO definitions.
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro.obs.live import LiveTelemetry
from repro.obs.live.dashboard import load_report_document, render_report
from repro.obs.metrics import Registry
from repro.store.campaign import CampaignConfig, CrawlCampaign

#: Crawler-side chaos: a 503 burst while the frontier is still wide.
CRAWLER_FAULTS = {
    "seed": 5,
    "rules": [
        {"kind": "error_burst", "start": 0.2, "end": 1.0, "rate": 0.3,
         "retry_after": 0.01},
    ],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=50_000)
    parser.add_argument("--clients", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--dir", default=None, help="campaign directory")
    args = parser.parse_args()

    directory = Path(
        args.dir if args.dir else tempfile.mkdtemp(prefix="traffic-storm-")
    )
    config = CampaignConfig(
        n_users=args.users,
        seed=args.seed,
        checkpoint_every_pages=max(250, args.users // 25),
        faults=CRAWLER_FAULTS,
        traffic={
            "n_clients": args.clients,
            "seed": args.seed + 1,
            "mix": "mixed",
            "think_mean": 0.05,
            "faults": "serving-rush",
        },
    )
    campaign = CrawlCampaign(directory / "campaign", config)
    registry = Registry(enabled=True)
    live = LiveTelemetry(
        directory / "run_report.json",
        registry=registry,
        epoch_every_pages=config.checkpoint_every_pages,
        path_sources=0,
    )
    print(f"storm: {args.users:,} users, {args.clients:,} clients + crawl fleet")
    dataset = campaign.run(registry=registry, live=live)
    traffic = campaign.last_traffic

    print(
        f"\ncrawl: {dataset.n_profiles:,} pages, {dataset.n_edges:,} edges"
        f" (under {CRAWLER_FAULTS['rules'][0]['kind']} chaos)"
    )
    section = traffic.slo.section()
    requests = section["requests"]
    availability = section["availability"]
    latency = section["latency"]
    cache = section["cache"]
    print(
        f"traffic: {requests['total']:,} requests, ops {json.dumps(requests['by_op'])}"
    )
    if availability["observed"] is not None:
        print(
            f"  availability {availability['observed']:.4%}"
            f" (target {availability['target']:.1%},"
            f" burn rate {availability['burn_rate']:.2f})"
        )
    if latency["p50"] is not None:
        print(
            f"  latency p50 {latency['p50'] * 1e3:.2f}ms"
            f" p99 {latency['p99'] * 1e3:.2f}ms"
        )
    if cache["hit_rate"] is not None:
        print(f"  page cache hit rate {cache['hit_rate']:.1%} ({cache['size']} entries)")

    print("\ndashboard frame:")
    print(render_report(load_report_document(directory / "run_report.json")))
    print(f"\ntrace digest: {traffic.trace_digest}")
    print(f"campaign archived in {directory}")


if __name__ == "__main__":
    main()
