"""Content diffusion: privacy settings vs sharing patterns.

The paper's closing future-work question: "how different privacy
settings and openness impact the types of conversations and the patterns
of content sharing in Google+". This example simulates posting activity
through the platform's circles machinery — users choose between public
posts and circle-scoped ones according to their country's openness
culture — and measures what that choice costs in reach, how cascades
grow through reshares, and how the §4.3 openness ordering shows up in
content behaviour.

Run:  python examples/content_diffusion.py [n_users] [seed]
"""

import sys

import numpy as np

from repro.analysis.diffusion import analyze_diffusion
from repro.experiments import format_table, percent
from repro.synth import build_world, WorldConfig
from repro.synth.activity import simulate_activity
from repro.synth.countries import TOP10_CODES


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 13
    world = build_world(WorldConfig(n_users=n_users, seed=seed))
    log = simulate_activity(world, seed=seed + 1)
    analysis = analyze_diffusion(log, world.population, countries=list(TOP10_CODES))

    print(
        f"activity: {log.n_posts:,} posts, {log.n_reshares:,} reshares,"
        f" {log.n_plus_ones:,} +1s"
    )

    reach = analysis.reach
    print(
        f"\npublic posts ({percent(reach.public_share)} of all) reach"
        f" {reach.public_mean_audience:.1f} users on average;"
        f" circle-scoped posts reach {reach.scoped_mean_audience:.1f}"
        f" — a {reach.reach_ratio:.1f}x walled-garden penalty."
    )

    sizes = analysis.cascade_sizes
    print(
        f"cascades: median size {np.median(sizes):.0f}, max"
        f" {analysis.max_cascade()} (depth up to"
        f" {analysis.cascade_depths.max()});"
        f" {percent(analysis.viral_fraction())} grow past 5 reshares."
    )

    rows = []
    for code in TOP10_CODES:
        activity = analysis.by_country.get(code)
        if activity is None:
            continue
        rows.append(
            (
                code,
                activity.n_posts,
                percent(activity.public_share),
                f"{activity.mean_audience:.1f}",
            )
        )
    print()
    print(
        format_table(
            ["Country", "Posts", "Public share", "Mean audience"],
            rows,
            title="Posting culture by country (openness shapes publicness)",
        )
    )


if __name__ == "__main__":
    main()
