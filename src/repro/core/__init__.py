"""Core pipeline: the measurement study, paper constants, comparisons."""

from .compare import Comparison, compare_results
from .paper_tables import GooglePlusPaper, OSNTopologyRow, TABLE4_ROWS
from .pipeline import MeasurementStudy, run_study, StudyConfig, StudyResults
from .validation import CrawlValidation, validate_crawl

__all__ = [
    "Comparison",
    "compare_results",
    "GooglePlusPaper",
    "MeasurementStudy",
    "OSNTopologyRow",
    "run_study",
    "StudyConfig",
    "StudyResults",
    "TABLE4_ROWS",
    "CrawlValidation",
    "validate_crawl",
]
