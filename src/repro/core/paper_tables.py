"""Reference values published in the paper.

Every number the reproduction compares itself against lives here: the
paper's own measurements of Google+, and the statistics it quotes for
Facebook, Twitter and Orkut from prior work (Kwak et al. 2010, Ugander et
al. 2011, Mislove et al. 2007). Keeping them in one module makes the
EXPERIMENTS.md paper-vs-measured accounting mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OSNTopologyRow:
    """One row of Table 4 (dashes in the paper become ``None``)."""

    network: str
    nodes: float
    edges: float
    crawled_percent: float
    path_length: float
    reciprocity_percent: float
    diameter: int
    mean_in_degree: float | None
    mean_out_degree: float | None


#: Table 4 as printed.
TABLE4_ROWS: tuple[OSNTopologyRow, ...] = (
    OSNTopologyRow("Google+", 35e6, 575e6, 56.0, 5.9, 32.0, 19, 16.4, 16.4),
    OSNTopologyRow("Facebook", 721e6, 62e9, 100.0, 4.7, 100.0, 41, 190.2, 190.2),
    OSNTopologyRow("Twitter", 41.7e6, 106e6, 100.0, 4.1, 22.0, 18, 28.19, 29.34),
    OSNTopologyRow("Orkut", 3e6, 223e6, 11.0, 4.3, 100.0, 9, None, None),
)


class GooglePlusPaper:
    """The paper's own Google+ measurements, one attribute per headline."""

    # Section 2.2 — crawl accounting.
    CRAWLED_PROFILES = 27_556_390
    GRAPH_NODES = 35_114_957
    GRAPH_EDGES = 575_141_097
    ESTIMATED_COVERAGE = 0.56
    CRAWL_MACHINES = 11
    CIRCLE_DISPLAY_LIMIT = 10_000
    CAPPED_USERS = 915
    CAPPED_DECLARED_EDGES = 37_185_272
    CAPPED_COLLECTED_EDGES = 27_600_503
    LOST_EDGE_FRACTION = 0.016

    # Section 3.2 — tel-users.
    TEL_USERS = 72_736
    TEL_USER_RATE = 0.0026
    TEL_SHARE_MORE_THAN_6_FIELDS = 0.66
    ALL_SHARE_MORE_THAN_6_FIELDS = 0.10

    # Section 3.3 — structure.
    ALPHA_IN = 1.3
    ALPHA_OUT = 1.2
    ALPHA_R_SQUARED = 0.99
    OUT_DEGREE_KNEE = 5_000
    GLOBAL_RECIPROCITY = 0.32
    TWITTER_RECIPROCITY = 0.221
    RR_ABOVE_06_FRACTION = 0.60
    CC_ABOVE_02_FRACTION = 0.40
    CC_SAMPLE = 1_000_000
    N_SCCS = 9_771_696
    GIANT_SCC_SIZE = 25_240_000
    GIANT_SCC_FRACTION = 0.70  # "included 70% of the crawled users"
    PATH_LENGTH_DIRECTED_MEAN = 5.9
    PATH_LENGTH_DIRECTED_MODE = 6
    PATH_LENGTH_UNDIRECTED_MEAN = 4.7
    PATH_LENGTH_UNDIRECTED_MODE = 5
    DIAMETER_DIRECTED = 19
    DIAMETER_UNDIRECTED = 13
    BFS_SAMPLE_START = 2_000
    BFS_SAMPLE_MAX = 10_000

    # Section 3.1 — top users.
    TOP20_IT_COUNT = 7

    # Section 4 — geography.
    LOCATED_FRACTION = 0.2675
    LOCATED_USERS = 6_621_644
    FRIENDS_WITHIN_1000_MILES = 0.58
    FRIENDS_WITHIN_10_MILES = 0.15
    TOP_COUNTRY_SHARES = {
        "US": 0.3138,
        "IN": 0.1671,
        "BR": 0.0576,
        "GB": 0.0335,
        "CA": 0.0230,
    }
    TEL_COUNTRY_SHARES = {
        "US": 0.0892,
        "IN": 0.3190,
        "BR": 0.0472,
        "GB": 0.0219,
        "CA": 0.0152,
    }
    #: Figure 10 self-loop weights (read off the published figure).
    SELF_LOOPS = {
        "US": 0.79,
        "IN": 0.77,
        "BR": 0.78,
        "GB": 0.30,
        "CA": 0.33,
        "DE": 0.49,
        "ID": 0.74,
        "MX": 0.46,
        "IT": 0.56,
        "ES": 0.49,
    }
    #: Figure 8 qualitative ordering endpoints.
    MOST_OPEN_COUNTRIES = ("ID", "MX")
    MOST_CONSERVATIVE_COUNTRY = "DE"
    #: Table 3 gender splits.
    GENDER_ALL = {"Male": 0.6765, "Female": 0.3146, "Other": 0.0089}
    GENDER_TEL = {"Male": 0.8599, "Female": 0.1126, "Other": 0.0275}
    #: Table 3 headline relationship contrasts.
    SINGLE_ALL = 0.4282
    SINGLE_TEL = 0.5724
