"""The measurement study pipeline — the library's primary entry point.

:class:`MeasurementStudy` replays the paper end to end:

1. build (or accept) a synthetic Google+ world,
2. crawl it bidirectionally over the simulated HTTP front end,
3. freeze the crawl into the social graph ``G(V, E)``,
4. resolve the located users,
5. run every analysis of Sections 3 and 4.

Typical use::

    from repro.core import MeasurementStudy, StudyConfig

    study = MeasurementStudy(StudyConfig(n_users=20_000, seed=7))
    results = study.run()
    print(results.table4_row)

The paper crawled 27.5M of the ~35M users it discovered (and stopped
there); ``crawl_fraction`` reproduces that partial-coverage situation,
which is what gives the graph its fringe of uncrawled nodes and the SCC
decomposition its singleton tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.analysis.attributes import attribute_availability, AttributeAvailability
from repro.analysis.distancefx import (
    analyze_country_path_miles,
    analyze_path_miles,
    CountryPathMiles,
    PathMileAnalysis,
)
from repro.analysis.geo_dist import (
    CountryShare,
    penetration_analysis,
    PenetrationAnalysis,
    top_countries,
)
from repro.analysis.linkgeo import analyze_link_geography, LinkGeographyAnalysis
from repro.analysis.openness import openness_by_country, OpennessAnalysis
from repro.analysis.structure import (
    analyze_clustering,
    analyze_degrees,
    analyze_path_lengths,
    analyze_reciprocity,
    analyze_sccs,
    ClusteringAnalysis,
    DegreeAnalysis,
    google_plus_table4_row,
    PathLengthAnalysis,
    ReciprocityAnalysis,
    SCCAnalysis,
)
from repro.analysis.tel_users import (
    compare_tel_users,
    fields_shared_ccdfs,
    FieldsSharedCCDFs,
    TelUserComparison,
)
from repro.analysis.top_users import (
    CountryTopRow,
    top_occupations_by_country,
    top_users_by_in_degree,
    TopUser,
)
from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.crawler.dataset import CrawlDataset
from repro.crawler.lost_edges import estimate_lost_edges, LostEdgeEstimate
from repro.geo.index import build_geo_index, GeoIndex
from repro.graph.csr import CSRGraph
from repro.graph.parallel import BFSEngine
from repro.obs import trace
from repro.graph.stats import GraphSummary
from repro.synth.countries import TOP10_CODES
from repro.synth.world import build_world, SyntheticWorld, WorldConfig


@dataclass(frozen=True)
class StudyConfig:
    """End-to-end study configuration."""

    n_users: int = 20_000
    seed: int = 7
    #: Fraction of discovered users actually crawled before stopping.
    #: The paper fetched 27.5M of ~35M discovered (≈ 0.78).
    crawl_fraction: float = 0.78
    n_machines: int = 11
    #: BFS path-length sampling bounds (the paper used 2,000 → 10,000 out
    #: of 35M nodes; proportionally we need far fewer sources).
    path_sample_start: int = 300
    path_sample_max: int = 1_200
    #: Maximum pairs per population for the path-mile analysis.
    path_mile_pairs: int = 200_000
    #: Worker processes for the batched BFS analysis engine (Figure 5,
    #: Table 4 diameters). 1 = in-process; results are identical for any
    #: worker count (see ``docs/analysis.md``).
    path_workers: int = 1
    #: World generation engine: "reference" (bit-stable sequential) or
    #: "fast" (vectorized, statistically equivalent — see docs/synth.md).
    engine: str = "reference"
    world: WorldConfig | None = None

    def world_config(self) -> WorldConfig:
        if self.world is not None:
            return self.world
        return WorldConfig(n_users=self.n_users, seed=self.seed, engine=self.engine)


@dataclass
class StudyResults:
    """Every artifact of the paper, computed from one crawl."""

    config: StudyConfig
    dataset: CrawlDataset
    graph: CSRGraph
    geo: GeoIndex
    # Section 3.
    table1_top_users: list[TopUser]
    table2_attributes: list[AttributeAvailability]
    table3_tel_users: TelUserComparison
    table4_row: GraphSummary
    fig2_fields: FieldsSharedCCDFs
    fig3_degrees: DegreeAnalysis
    fig4a_reciprocity: ReciprocityAnalysis
    fig4b_clustering: ClusteringAnalysis
    fig4c_sccs: SCCAnalysis
    fig5_paths: PathLengthAnalysis
    lost_edges: LostEdgeEstimate
    # Section 4.
    fig6_countries: list[CountryShare]
    fig7_penetration: PenetrationAnalysis
    fig8_openness: OpennessAnalysis
    fig9a_path_miles: PathMileAnalysis
    fig9b_country_miles: CountryPathMiles
    fig10_links: LinkGeographyAnalysis
    table5_occupations: list[CountryTopRow]
    extras: dict = dataclass_field(default_factory=dict)


class MeasurementStudy:
    """Orchestrates world → crawl → graph → analyses."""

    def __init__(self, config: StudyConfig | None = None):
        self.config = config if config is not None else StudyConfig()
        self._world: SyntheticWorld | None = None

    @property
    def world(self) -> SyntheticWorld:
        if self._world is None:
            with trace.span("study.build_world"):
                self._world = build_world(self.config.world_config())
        return self._world

    def crawl(self, hooks=None) -> CrawlDataset:
        """Run the bidirectional BFS crawl over the world's front end.

        ``hooks`` (a :class:`~repro.crawler.bfs.CrawlHooks`, e.g. a
        :class:`~repro.obs.live.LiveTelemetry`) observes the crawl as it
        runs; ``None`` keeps the plain in-memory behaviour.
        """
        world = self.world
        max_pages = None
        if self.config.crawl_fraction < 1.0:
            max_pages = int(world.n_users * self.config.crawl_fraction)
        crawler = BidirectionalBFSCrawler(
            world.frontend(),
            CrawlConfig(n_machines=self.config.n_machines, max_pages=max_pages),
        )
        with trace.span("study.crawl", machines=self.config.n_machines):
            return crawler.crawl([world.seed_user_id()], hooks=hooks)

    def run(
        self, dataset: CrawlDataset | None = None, hooks=None
    ) -> StudyResults:
        """Crawl (unless given a dataset) and compute every artifact.

        Each pipeline phase runs under its own span, so a run report can
        show where wall time (and, for the crawl, virtual time) went.
        ``hooks`` is forwarded to :meth:`crawl` (ignored with a dataset).
        """
        config = self.config
        if dataset is None:
            dataset = self.crawl(hooks=hooks)
        world = self._world  # populated by .crawl(); None for foreign datasets
        with trace.span("study.freeze_graph"):
            graph = dataset.to_csr()
        with trace.span("study.geo_index"):
            geo = build_geo_index(dataset)
        rng = np.random.default_rng(config.seed + 1)
        top10 = list(TOP10_CODES)
        engine = BFSEngine(graph, n_workers=config.path_workers)
        try:
            with trace.span("study.analyze.paths", workers=config.path_workers):
                fig5 = analyze_path_lengths(
                    graph,
                    rng,
                    initial_k=config.path_sample_start,
                    max_k=config.path_sample_max,
                    engine=engine,
                )
            with trace.span("study.analyze.structure"):
                table4_row = google_plus_table4_row(
                    graph,
                    rng,
                    path_samples=config.path_sample_max,
                    paths=fig5,
                    engine=engine,
                )
                fig3_degrees = analyze_degrees(graph)
                fig4a_reciprocity = analyze_reciprocity(graph)
                fig4b_clustering = analyze_clustering(graph, rng)
                fig4c_sccs = analyze_sccs(graph)
        finally:
            engine.close()
        with trace.span("study.analyze.profiles"):
            table1_top_users = top_users_by_in_degree(dataset, graph, k=20)
            table2_attributes = attribute_availability(dataset)
            table3_tel_users = compare_tel_users(dataset, geo)
            fig2_fields = fields_shared_ccdfs(dataset)
            lost_edges = estimate_lost_edges(dataset)
        with trace.span("study.analyze.geography"):
            fig6_countries = top_countries(geo, k=10)
            fig7_penetration = penetration_analysis(geo)
            fig8_openness = openness_by_country(dataset, geo, top10)
            fig9a_path_miles = analyze_path_miles(
                dataset, geo, rng, max_pairs=config.path_mile_pairs
            )
            fig9b_country_miles = analyze_country_path_miles(dataset, geo, top10)
            fig10_links = analyze_link_geography(dataset, geo, top10)
            table5_occupations = top_occupations_by_country(
                dataset, graph, geo, top10
            )
        return StudyResults(
            config=config,
            dataset=dataset,
            graph=graph,
            geo=geo,
            table1_top_users=table1_top_users,
            table2_attributes=table2_attributes,
            table3_tel_users=table3_tel_users,
            table4_row=table4_row,
            fig2_fields=fig2_fields,
            fig3_degrees=fig3_degrees,
            fig4a_reciprocity=fig4a_reciprocity,
            fig4b_clustering=fig4b_clustering,
            fig4c_sccs=fig4c_sccs,
            fig5_paths=fig5,
            lost_edges=lost_edges,
            fig6_countries=fig6_countries,
            fig7_penetration=fig7_penetration,
            fig8_openness=fig8_openness,
            fig9a_path_miles=fig9a_path_miles,
            fig9b_country_miles=fig9b_country_miles,
            fig10_links=fig10_links,
            table5_occupations=table5_occupations,
            extras={"world": world},
        )


def run_study(
    n_users: int = 20_000, seed: int = 7, **kwargs
) -> StudyResults:
    """One-call convenience: build, crawl, analyse."""
    return MeasurementStudy(StudyConfig(n_users=n_users, seed=seed, **kwargs)).run()
