"""Paper-vs-measured comparison helpers.

Turns a :class:`~repro.core.pipeline.StudyResults` into a list of
:class:`Comparison` records — one per headline number — annotated with
whether the *shape* target holds (orderings, who-wins) even when the
absolute value shifts with scale. EXPERIMENTS.md is generated from these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.top_users import it_fraction
from repro.platform.models import Occupation

from .paper_tables import GooglePlusPaper as P
from .pipeline import StudyResults


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured line."""

    artifact: str
    metric: str
    paper: float
    measured: float
    shape_note: str = ""
    scale_sensitive: bool = False

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return float("nan")
        return self.measured / self.paper


def compare_results(results: StudyResults) -> list[Comparison]:
    """All headline comparisons for one study run."""
    rows: list[Comparison] = []

    def add(artifact, metric, paper, measured, note="", scale=False):
        rows.append(Comparison(artifact, metric, float(paper), float(measured),
                               shape_note=note, scale_sensitive=scale))

    top = results.table1_top_users
    it_count = sum(1 for r in top if r.occupation is Occupation.IT)
    add("Table 1", "IT users in global top-20", P.TOP20_IT_COUNT, it_count,
        note="IT-heavy top list is the signature")
    add("Table 1", "IT fraction of top-20", P.TOP20_IT_COUNT / 20, it_fraction(top))

    availability = {row.key: row.percent / 100 for row in results.table2_attributes}
    add("Table 2", "gender available", 0.9767, availability.get("gender", 0))
    add("Table 2", "places lived available", 0.2675, availability.get("places_lived", 0))
    add("Table 2", "education available", 0.2711, availability.get("education", 0))
    add("Table 2", "work contact available", 0.0022, availability.get("work_contact", 0))

    t3 = results.table3_tel_users
    add("Table 3", "tel-user rate", P.TEL_USER_RATE, t3.tel_rate)
    add("Table 3", "male share (all)", P.GENDER_ALL["Male"],
        t3.gender_all.shares.get("Male", 0))
    add("Table 3", "male share (tel)", P.GENDER_TEL["Male"],
        t3.gender_tel.shares.get("Male", 0), note="tel-users skew male")
    add("Table 3", "single share (all)", P.SINGLE_ALL,
        t3.relationship_all.shares.get("Single", 0))
    add("Table 3", "single share (tel)", P.SINGLE_TEL,
        t3.relationship_tel.shares.get("Single", 0), note="tel-users skew single")
    add("Table 3", "IN share of tel-users", P.TEL_COUNTRY_SHARES["IN"],
        t3.location_tel.shares.get("IN", 0), note="India overrepresented among tel-users")
    add("Table 3", "US share of tel-users", P.TEL_COUNTRY_SHARES["US"],
        t3.location_tel.shares.get("US", 0), note="US underrepresented among tel-users")

    t4 = results.table4_row
    add("Table 4", "mean degree", 16.4, t4.mean_in_degree)
    add("Table 4", "global reciprocity", P.GLOBAL_RECIPROCITY, t4.reciprocity,
        note="higher than Twitter's 22%")
    add("Table 4", "avg path length (directed)", P.PATH_LENGTH_DIRECTED_MEAN,
        t4.avg_path_length, note="shrinks logarithmically with n", scale=True)
    add("Table 4", "avg path length (undirected)", P.PATH_LENGTH_UNDIRECTED_MEAN,
        t4.undirected_avg_path_length, scale=True)
    add("Table 4", "diameter (directed)", P.DIAMETER_DIRECTED, t4.diameter, scale=True)

    f2 = results.fig2_fields
    add("Figure 2", "all users sharing >6 fields", P.ALL_SHARE_MORE_THAN_6_FIELDS,
        f2.fraction_sharing_more_than(6, "all"))
    add("Figure 2", "tel-users sharing >6 fields", P.TEL_SHARE_MORE_THAN_6_FIELDS,
        f2.fraction_sharing_more_than(6, "tel"),
        note="tel-users share far more fields")

    f3 = results.fig3_degrees
    add("Figure 3", "in-degree CCDF alpha", P.ALPHA_IN, f3.in_fit.alpha)
    add("Figure 3", "out-degree CCDF alpha", P.ALPHA_OUT, f3.out_fit.alpha)
    add("Figure 3", "in-degree fit R^2", P.ALPHA_R_SQUARED, f3.in_fit.r_squared)

    add("Figure 4a", "global reciprocity", P.GLOBAL_RECIPROCITY,
        results.fig4a_reciprocity.global_reciprocity)
    add("Figure 4a", "fraction RR > 0.6", P.RR_ABOVE_06_FRACTION,
        results.fig4a_reciprocity.fraction_rr_above(0.6),
        note="celebrities low, ordinary users moderate-high")
    add("Figure 4b", "fraction CC > 0.2", P.CC_ABOVE_02_FRACTION,
        results.fig4b_clustering.fraction_above(0.2),
        note="denser than Facebook/Twitter at same degree")
    add("Figure 4c", "giant SCC fraction", P.GIANT_SCC_FRACTION,
        results.fig4c_sccs.giant_fraction,
        note="one giant SCC, all other SCCs tiny")

    f5 = results.fig5_paths
    add("Figure 5", "directed mode", P.PATH_LENGTH_DIRECTED_MODE,
        f5.directed.mode, scale=True)
    add("Figure 5", "undirected mode", P.PATH_LENGTH_UNDIRECTED_MODE,
        f5.undirected.mode, scale=True)
    add("Figure 5", "directed mean", P.PATH_LENGTH_DIRECTED_MEAN,
        f5.directed.mean, scale=True)
    add("Figure 5", "undirected mean", P.PATH_LENGTH_UNDIRECTED_MEAN,
        f5.undirected.mean, scale=True)

    add("Sec 2.2", "lost-edge fraction", P.LOST_EDGE_FRACTION,
        results.lost_edges.lost_fraction,
        note="bidirectional crawl recovers truncated edges", scale=True)

    shares = {row.code: row.fraction for row in results.fig6_countries}
    for code, paper_share in P.TOP_COUNTRY_SHARES.items():
        add("Figure 6", f"{code} user share", paper_share, shares.get(code, 0.0))

    gpr = {p.code: p.gplus_penetration for p in results.fig7_penetration.points}
    ranked = results.fig7_penetration.ranked_by_gpr()
    add("Figure 7", "IPR-GDP correlation", 0.9,
        results.fig7_penetration.ipr_gdp_correlation,
        note="Internet penetration tracks GDP linearly")
    add("Figure 7", "GPR-GDP correlation (weak)", 0.0,
        results.fig7_penetration.gpr_gdp_correlation,
        note="G+ adoption decoupled from GDP")
    add("Figure 7", "India is top GPR", 1.0,
        1.0 if ranked and ranked[0].code == "IN" else 0.0)
    del gpr

    f8 = results.fig8_openness
    ranking = f8.ranking()
    add("Figure 8", "DE most conservative", 1.0,
        1.0 if f8.most_conservative() == "DE" else 0.0)
    add("Figure 8", "ID/MX in top-3 open", 1.0,
        1.0 if set(ranking[:3]) & set(P.MOST_OPEN_COUNTRIES) else 0.0)

    f9 = results.fig9a_path_miles
    add("Figure 9a", "friends within 1000 miles", P.FRIENDS_WITHIN_1000_MILES,
        f9.friends_within_1000mi())
    add("Figure 9a", "friends within 10 miles", P.FRIENDS_WITHIN_10_MILES,
        f9.friends_within_10mi())
    add("Figure 9a", "reciprocal<friends<random ordering", 1.0,
        1.0 if f9.ordering_holds() else 0.0,
        note="reciprocal pairs live closest")

    f10 = results.fig10_links.graph
    for code, paper_loop in P.SELF_LOOPS.items():
        if code in f10.countries:
            add("Figure 10", f"{code} self-loop", paper_loop, f10.self_loop(code))
    add("Figure 10", "US is dominant sink", 1.0,
        1.0 if results.fig10_links.us_is_dominant_sink() else 0.0)

    jaccard = {row.country: row.jaccard_vs_us for row in results.table5_occupations}
    add("Table 5", "CA Jaccard vs US", 0.83, jaccard.get("CA", 0.0),
        note="anglophone countries resemble the US")
    add("Table 5", "BR Jaccard vs US", 0.18, jaccard.get("BR", 0.0),
        note="Latin countries diverge")
    return rows
