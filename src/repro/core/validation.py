"""Crawl validation against ground truth.

The simulator knows the true world; a crawl only saw public pages. This
module quantifies the gap — edge recall/precision, profile coverage,
public-field recall, privacy leaks (which must be zero), tel-user
agreement — both to test the crawler and to let users studying crawl
methodology measure exactly what a page-scraping measurement loses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.dataset import CrawlDataset
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True)
class CrawlValidation:
    """Fidelity report of one crawl against its generating world."""

    n_true_edges: int
    n_crawled_edges: int
    n_false_edges: int
    profile_coverage: float
    field_recall: float
    privacy_leaks: int
    tel_user_agreement: bool
    missing_tel_users: int

    @property
    def edge_recall(self) -> float:
        if self.n_true_edges == 0:
            return 1.0
        return (self.n_crawled_edges - self.n_false_edges) / self.n_true_edges

    @property
    def edge_precision(self) -> float:
        if self.n_crawled_edges == 0:
            return 1.0
        return 1.0 - self.n_false_edges / self.n_crawled_edges

    def is_sound(self) -> bool:
        """A crawl is sound when it invents nothing and leaks nothing."""
        return self.n_false_edges == 0 and self.privacy_leaks == 0


def validate_crawl(world: SyntheticWorld, dataset: CrawlDataset) -> CrawlValidation:
    """Compare a crawl dataset with the world that produced it."""
    true_edges = set(
        zip(world.graph.sources.tolist(), world.graph.targets.tolist())
    )
    crawled_edges = set(
        zip(dataset.sources.tolist(), dataset.targets.tolist())
    )
    false_edges = len(crawled_edges - true_edges)

    fields_seen = 0
    fields_public = 0
    privacy_leaks = 0
    for user_id, parsed in dataset.profiles.items():
        truth = world.profiles[user_id]
        public_keys = set(truth.public_field_keys()) - {"name"}
        fields_public += len(public_keys)
        for key in parsed.fields:
            entry = truth.fields.get(key)
            if entry is None or not entry.is_public():
                privacy_leaks += 1
            else:
                fields_seen += 1

    true_tel = {
        uid
        for uid in range(world.n_users)
        if world.population.tel_users[uid] and uid in dataset.profiles
    }
    crawled_tel = {
        p.user_id for p in dataset.profiles.values() if p.shares_phone()
    }
    return CrawlValidation(
        n_true_edges=len(true_edges),
        n_crawled_edges=len(crawled_edges),
        n_false_edges=false_edges,
        profile_coverage=len(dataset.profiles) / max(1, world.n_users),
        field_recall=fields_seen / max(1, fields_public),
        privacy_leaks=privacy_leaks,
        tel_user_agreement=crawled_tel == true_tel,
        missing_tel_users=len(true_tel - crawled_tel),
    )
