"""Experiment runner: regenerate every table and figure in one go.

Usage (module CLI)::

    python -m repro.experiments                 # all artifacts, default world
    python -m repro.experiments --users 30000 --seed 11 table1 fig3

The runner performs exactly one study (world + crawl + analyses) and
renders the requested artifacts from it.
"""

from __future__ import annotations

import argparse
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from repro.core.compare import compare_results
from repro.core.pipeline import MeasurementStudy, StudyConfig, StudyResults
from repro.obs import RUN_REPORT_FILENAME, RunReport, build_report, get_registry, trace

from .registry import EXPERIMENTS
from .render import format_table


def run_experiments(
    results: StudyResults, artifact_ids: Iterable[str] | None = None
) -> dict[str, str]:
    """Render the requested artifacts (all when none named)."""
    ids = list(artifact_ids) if artifact_ids else list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown artifacts: {unknown}; known: {sorted(EXPERIMENTS)}")
    return {i: EXPERIMENTS[i].render(results) for i in ids}


def save_artifacts(
    results: StudyResults,
    directory: str | Path,
    artifact_ids: Iterable[str] | None = None,
) -> list[Path]:
    """Render artifacts to ``<directory>/<id>.txt``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for artifact_id, text in run_experiments(results, artifact_ids).items():
        path = directory / f"{artifact_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        written.append(path)
    return written


def build_study_report(results: StudyResults, live=None) -> RunReport:
    """Assemble the machine-readable record of one study run.

    Phases come from the global tracer, metrics from the global registry
    (both populated by the instrumented pipeline); coverage combines the
    crawl's accounting with the Section 2.2 lost-edge estimate.  When a
    :class:`~repro.obs.live.LiveTelemetry` rode along on the crawl, its
    final ``live`` section is embedded so the study report supersedes
    the streaming one.
    """
    lost = results.lost_edges
    coverage = {
        **vars(results.dataset.stats),
        "profiles": results.dataset.n_profiles,
        "edges": results.dataset.n_edges,
        "graph_nodes": results.graph.n,
        "lost_edges": {
            "capped_users": lost.capped_users,
            "declared_edges": lost.declared_edges,
            "collected_edges": lost.collected_edges,
            "missing_edges": lost.missing_edges,
            "lost_fraction": lost.lost_fraction,
            "display_limit": lost.display_limit,
        },
    }
    fig5 = results.fig5_paths
    extra = {
        # The Figure 5 distribution rides along verbatim so runs with
        # different BFS worker counts can be diffed for bit-identity
        # (the CI analysis-parallel job does exactly that).
        "fig5_paths": {
            "directed": {
                "counts": fig5.directed.counts.tolist(),
                "n_sources": fig5.directed.n_sources,
            },
            "undirected": {
                "counts": fig5.undirected.counts.tolist(),
                "n_sources": fig5.undirected.n_sources,
            },
        },
        "path_workers": results.config.path_workers,
    }
    if live is not None:
        extra["live"] = live.live_section()
    return build_report(
        kind="study", config=asdict(results.config), coverage=coverage, extra=extra
    )


def save_run_report(
    results: StudyResults, directory: str | Path | None = None, live=None
) -> Path:
    """Write ``run_report.json`` into ``directory`` (default: cwd)."""
    directory = Path(directory) if directory is not None else Path(".")
    return build_study_report(results, live=live).write(
        directory / RUN_REPORT_FILENAME
    )


def render_comparison_table(results: StudyResults) -> str:
    """The paper-vs-measured summary (EXPERIMENTS.md material)."""
    rows = []
    for comparison in compare_results(results):
        rows.append(
            (
                comparison.artifact,
                comparison.metric,
                f"{comparison.paper:.4g}",
                f"{comparison.measured:.4g}",
                "scale" if comparison.scale_sensitive else "",
                comparison.shape_note,
            )
        )
    return format_table(
        ["Artifact", "Metric", "Paper", "Measured", "", "Note"],
        rows,
        title="Paper vs measured",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("artifacts", nargs="*", help="artifact ids (default: all)")
    parser.add_argument("--users", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--path-workers", type=int, default=1, metavar="N",
        help="worker processes for the batched BFS analysis engine "
        "(default 1 = in-process; results are identical for any N)",
    )
    parser.add_argument(
        "--engine", choices=("reference", "fast"), default="reference",
        help="world generation engine: 'reference' is the bit-stable "
        "sequential original, 'fast' the vectorized statistically "
        "equivalent engine (see docs/synth.md)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also print the paper-vs-measured summary table",
    )
    parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write each artifact to DIR/<id>.txt",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="write run_report.json (config, per-phase wall+virtual timings, "
        "metric snapshot, crawl coverage) next to the artifacts",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="stream live telemetry into run_report.json during the crawl "
        "(render with `python -m repro.obs.live`; implies continuous "
        "rewrites of the report while crawling)",
    )
    args = parser.parse_args(argv)
    if args.report or args.live:
        # The report should describe this run only, not whatever the
        # process accumulated before it.
        get_registry().reset()
        trace.get_tracer().reset()
    study = MeasurementStudy(
        StudyConfig(
            n_users=args.users,
            seed=args.seed,
            path_workers=args.path_workers,
            engine=args.engine,
        )
    )
    telemetry = None
    if args.live:
        from repro.obs.live import LiveTelemetry

        live_dir = Path(args.save) if args.save else Path(".")
        live_dir.mkdir(parents=True, exist_ok=True)
        telemetry = LiveTelemetry(
            live_dir / RUN_REPORT_FILENAME,
            config={"users": args.users, "seed": args.seed, "engine": args.engine},
        )
    results = study.run(hooks=telemetry)
    for artifact_id, text in run_experiments(results, args.artifacts or None).items():
        print(f"\n=== {artifact_id}: {EXPERIMENTS[artifact_id].title} ===")
        print(text)
    if args.compare:
        print()
        print(render_comparison_table(results))
    if args.save:
        written = save_artifacts(results, args.save, args.artifacts or None)
        print(f"\nwrote {len(written)} artifacts to {args.save}")
    if args.report or args.live:
        report_path = save_run_report(results, args.save, live=telemetry)
        print(f"\nwrote run report to {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
