"""Registry of the paper's evaluation artifacts.

One entry per table/figure (plus the Section 2.2 methodology check).
Each renderer turns a :class:`~repro.core.pipeline.StudyResults` into the
text form of the artifact — the same rows/series the paper reports —
with the paper's reference numbers printed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.paper_tables import GooglePlusPaper as P, TABLE4_ROWS
from repro.core.pipeline import StudyResults
from repro.graph.degree import cdf

from .render import (
    AsciiPlot,
    format_number,
    format_table,
    percent,
    render_ccdf_plot,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact."""

    artifact_id: str
    title: str
    section: str
    render: Callable[[StudyResults], str]


def _table1(r: StudyResults) -> str:
    rows = [
        (u.rank, u.name, u.about, format_number(u.in_degree))
        for u in r.table1_top_users
    ]
    it_count = sum(
        1 for u in r.table1_top_users if u.occupation and u.occupation.value == "IT"
    )
    table = format_table(
        ["Rank", "Name", "About", "In-degree"],
        rows,
        title="Table 1: Top 20 users ranked by in-degree",
    )
    return table + (
        f"\nIT-related users in top-20: {it_count}"
        f"  (paper: {P.TOP20_IT_COUNT} of 20)"
    )


def _table2(r: StudyResults) -> str:
    rows = [
        (a.label, format_number(a.available), f"{a.percent:.2f}")
        for a in r.table2_attributes
    ]
    return format_table(
        ["Attribute", "Available", "%"],
        rows,
        title="Table 2: Public attributes available",
    )


def _table3(r: StudyResults) -> str:
    t3 = r.table3_tel_users
    lines = [
        "Table 3: Information shared by all users and tel-users",
        f"Total: all={format_number(t3.n_all)}  tel={format_number(t3.n_tel)}"
        f"  (tel rate {percent(t3.tel_rate)}; paper {percent(P.TEL_USER_RATE)})",
    ]
    sections = [
        ("Gender", t3.gender_all, t3.gender_tel),
        ("Relationship", t3.relationship_all, t3.relationship_tel),
        ("Location", t3.location_all, t3.location_tel),
    ]
    for label, all_shares, tel_shares in sections:
        keys = list(all_shares.shares)
        rows = [
            (key, percent(all_shares.shares[key]), percent(tel_shares.shares.get(key, 0.0)))
            for key in keys
        ]
        lines.append("")
        lines.append(
            format_table(
                [f"{label} (N all={all_shares.total}, tel={tel_shares.total})",
                 "All users", "Tel-users"],
                rows,
            )
        )
    return "\n".join(lines)


def _table4(r: StudyResults) -> str:
    t4 = r.table4_row
    measured = (
        "Google+ (measured)",
        format_number(t4.n_nodes),
        format_number(t4.n_edges),
        f"{100 * r.dataset.n_profiles / t4.n_nodes:.0f}%",
        f"{t4.avg_path_length:.1f}",
        percent(t4.reciprocity, 0),
        t4.diameter,
        f"{t4.mean_in_degree:.1f}",
        f"{t4.mean_out_degree:.1f}",
    )
    rows = [measured]
    for row in TABLE4_ROWS:
        rows.append(
            (
                row.network + " (paper)",
                format_number(row.nodes),
                format_number(row.edges),
                f"{row.crawled_percent:.0f}%",
                f"{row.path_length:.1f}",
                f"{row.reciprocity_percent:.0f}%",
                row.diameter,
                "-" if row.mean_in_degree is None else f"{row.mean_in_degree:.1f}",
                "-" if row.mean_out_degree is None else f"{row.mean_out_degree:.2f}",
            )
        )
    return format_table(
        ["Network", "Nodes", "Edges", "% Crawled", "Path length",
         "Reciprocity", "Diameter", "In-degree", "Out-degree"],
        rows,
        title="Table 4: Topological comparison of OSNs",
    )


def _table5(r: StudyResults) -> str:
    rows = [
        (row.country, row.codes(), f"{row.jaccard_vs_us:.2f}")
        for row in r.table5_occupations
    ]
    return format_table(
        ["Country", "Profession codes of the top-10 users", "Jaccard"],
        rows,
        title="Table 5: Occupation-job title of the top users",
    )


def _fig2(r: StudyResults) -> str:
    f2 = r.fig2_fields
    plot = render_ccdf_plot(
        [
            (f2.all_users.x, f2.all_users.p, ".", "All users"),
            (f2.tel_users.x, f2.tel_users.p, "o", "Telephone users"),
        ],
        title="Figure 2: CCDF of #fields shared (contacts excluded)",
        x_log=False,
        y_log=False,
    )
    return plot + (
        f"\nsharing >6 fields: all={percent(f2.fraction_sharing_more_than(6, 'all'))}"
        f" (paper {percent(P.ALL_SHARE_MORE_THAN_6_FIELDS)}),"
        f" tel={percent(f2.fraction_sharing_more_than(6, 'tel'))}"
        f" (paper {percent(P.TEL_SHARE_MORE_THAN_6_FIELDS)})"
    )


def _fig3(r: StudyResults) -> str:
    f3 = r.fig3_degrees
    d = f3.distributions
    plot = render_ccdf_plot(
        [
            (d.in_ccdf.x, d.in_ccdf.p, "i", "Google+ In"),
            (d.out_ccdf.x, d.out_ccdf.p, "o", "Google+ Out"),
        ],
        title="Figure 3: Degree distributions (CCDF, log-log)",
    )
    return plot + (
        f"\nalpha_in={f3.in_fit.alpha:.2f} (R2={f3.in_fit.r_squared:.3f};"
        f" paper {P.ALPHA_IN} at R2={P.ALPHA_R_SQUARED})"
        f"  alpha_out={f3.out_fit.alpha:.2f} (paper {P.ALPHA_OUT})"
        f"\nout-degree cap at {f3.out_degree_cap}: "
        + ("knee visible" if f3.cap_knee_visible() else "below cap at this scale")
    )


def _fig4a(r: StudyResults) -> str:
    rr = r.fig4a_reciprocity
    x, p = cdf(rr.rr_values)
    plot = render_ccdf_plot(
        [(x, p, "+", "Google+ RR CDF")],
        title="Figure 4a: Relation Reciprocity distribution (CDF)",
        x_log=False,
        y_log=False,
    )
    return plot + (
        f"\nglobal reciprocity={percent(rr.global_reciprocity)}"
        f" (paper {percent(P.GLOBAL_RECIPROCITY)};"
        f" Twitter {percent(P.TWITTER_RECIPROCITY)})"
        f"\nRR > 0.6: {percent(rr.fraction_rr_above(0.6))}"
        f" (paper >{percent(P.RR_ABOVE_06_FRACTION, 0)})"
    )


def _fig4b(r: StudyResults) -> str:
    cc = r.fig4b_clustering
    defined = cc.values[~np.isnan(cc.values)]
    x, p = cdf(defined)
    plot = render_ccdf_plot(
        [(x, p, "+", "Google+ CC CDF")],
        title="Figure 4b: Clustering coefficient distribution (CDF)",
        x_log=False,
        y_log=False,
    )
    return plot + (
        f"\nsampled nodes: {cc.sample_size} (paper sampled {format_number(P.CC_SAMPLE)})"
        f"\nCC > 0.2: {percent(cc.fraction_above(0.2))}"
        f" (paper {percent(P.CC_ABOVE_02_FRACTION, 0)}); mean CC {cc.mean:.3f}"
    )


def _fig4c(r: StudyResults) -> str:
    scc = r.fig4c_sccs
    sizes = scc.sizes()
    unique, counts = np.unique(sizes, return_counts=True)
    tail = np.cumsum(counts[::-1])[::-1] / len(sizes)
    plot = render_ccdf_plot(
        [(unique.astype(float), tail, "#", "SCC sizes")],
        title="Figure 4c: Size of the strongly connected components (CCDF)",
    )
    return plot + (
        f"\nSCCs: {format_number(scc.n_components)}"
        f" (paper {format_number(P.N_SCCS)});"
        f" giant SCC {percent(scc.giant_fraction)} of nodes"
        f" (paper ~{percent(P.GIANT_SCC_FRACTION, 0)})"
    )


def _fig5(r: StudyResults) -> str:
    f5 = r.fig5_paths
    pd_, pu = f5.directed, f5.undirected
    plot = AsciiPlot(
        x_log=False, y_log=False,
        title="Figure 5: Estimated path length distribution",
    )
    hops_d = np.arange(len(pd_.counts))
    hops_u = np.arange(len(pu.counts))
    plot.add_series(hops_d, pd_.probabilities(), "D", "Directed")
    plot.add_series(hops_u, pu.probabilities(), "U", "Undirected")
    return plot.render() + (
        f"\ndirected: mode={pd_.mode} mean={pd_.mean:.2f}"
        f" (paper mode {P.PATH_LENGTH_DIRECTED_MODE}, mean"
        f" {P.PATH_LENGTH_DIRECTED_MEAN}; scale-sensitive)"
        f"\nundirected: mode={pu.mode} mean={pu.mean:.2f}"
        f" (paper mode {P.PATH_LENGTH_UNDIRECTED_MODE}, mean"
        f" {P.PATH_LENGTH_UNDIRECTED_MEAN})"
        f"\nBFS sources used: {pd_.n_sources} (grown until stable, as Sec 3.3.5)"
    )


def _fig6(r: StudyResults) -> str:
    rows = [
        (share.code, format_number(share.users), f"{share.fraction:.3f}")
        for share in r.fig6_countries
    ]
    paper_note = ", ".join(
        f"{code}={frac:.3f}" for code, frac in P.TOP_COUNTRY_SHARES.items()
    )
    return (
        format_table(
            ["Country", "Located users", "Fraction"],
            rows,
            title="Figure 6: Top 10 countries with Google+ users",
        )
        + f"\npaper top-5 fractions: {paper_note}"
    )


def _fig7(r: StudyResults) -> str:
    f7 = r.fig7_penetration
    rows = [
        (
            p.code,
            p.region,
            format_number(p.gdp_per_capita),
            percent(p.internet_penetration, 0),
            format_number(p.gplus_users),
            f"{1e3 * p.gplus_penetration:.3f}",
        )
        for p in sorted(f7.points, key=lambda q: -q.gplus_penetration)
    ]
    return (
        format_table(
            ["Country", "Region", "GDP pc (PPP)", "Internet pen.",
             "G+ users", "GPR (per 1k netizens)"],
            rows,
            title="Figure 7: GDP per capita vs Google+/Internet penetration",
        )
        + f"\ncorr(GDP, IPR)={f7.ipr_gdp_correlation:.2f} (paper: linear)"
        + f"\ncorr(GDP, GPR)={f7.gpr_gdp_correlation:.2f} (paper: no trend;"
        + " India top, low-GDP countries on equal footing)"
    )


def _fig8(r: StudyResults) -> str:
    f8 = r.fig8_openness
    series = []
    markers = "IMUBGECTND"
    for marker, code in zip(markers, f8.by_country):
        curve = f8.by_country[code].curve
        series.append((curve.x, curve.p, marker, code))
    plot = render_ccdf_plot(
        series,
        title="Figure 8: CCDF of #fields shared per country",
        x_log=False,
        y_log=False,
    )
    rows = [
        (code, f"{f8.by_country[code].mean_fields:.2f}",
         percent(f8.by_country[code].fraction_sharing_more_than(10)))
        for code in f8.ranking()
    ]
    return (
        plot
        + "\n"
        + format_table(["Country", "Mean fields", ">10 fields"], rows)
        + f"\nmost conservative: {f8.most_conservative()}"
        + f" (paper: {P.MOST_CONSERVATIVE_COUNTRY});"
        + f" most open (paper): {' & '.join(P.MOST_OPEN_COUNTRIES)}"
    )


def _fig9(r: StudyResults) -> str:
    f9 = r.fig9a_path_miles
    samples = f9.samples
    series = []
    for values, marker, label in (
        (samples.random_pairs, "r", "Random"),
        (samples.friends, "f", "Friends"),
        (samples.reciprocal, "c", "Reciprocal"),
    ):
        if len(values) == 0:
            continue
        x, p = cdf(np.minimum(values, 12_000) / 1000.0)
        step = max(1, len(x) // 400)
        series.append((x[::step], p[::step], marker, label))
    plot = render_ccdf_plot(
        series,
        title="Figure 9a: Path-mile CDF (thousand miles)",
        x_log=False,
        y_log=False,
    )
    rows = [
        (code, format_number(r.fig9b_country_miles.average(code)),
         format_number(r.fig9b_country_miles.deviation(code)))
        for code in r.fig9b_country_miles.stats
    ]
    table = format_table(
        ["Country", "Avg path mile", "Std dev"],
        rows,
        title="Figure 9b: Average path mile per country",
    )
    return (
        plot
        + f"\nfriends within 1000 miles: {percent(f9.friends_within_1000mi())}"
        + f" (paper ~{percent(P.FRIENDS_WITHIN_1000_MILES, 0)});"
        + f" within 10 miles: {percent(f9.friends_within_10mi())}"
        + f" (paper ~{percent(P.FRIENDS_WITHIN_10_MILES, 0)})"
        + f"\nordering reciprocal<friends<random holds: {f9.ordering_holds()}"
        + "\n\n"
        + table
    )


def _fig10(r: StudyResults) -> str:
    graph = r.fig10_links.graph
    rows = []
    for source in graph.countries:
        weights = " ".join(
            f"{target}:{graph.weight(source, target):.2f}"
            for target in graph.countries
            if graph.weight(source, target) >= 0.01
        )
        paper_loop = P.SELF_LOOPS.get(source)
        rows.append(
            (
                source,
                f"{graph.self_loop(source):.2f}",
                "-" if paper_loop is None else f"{paper_loop:.2f}",
                weights,
            )
        )
    return (
        format_table(
            ["Country", "Self-loop", "Paper", "Out-links (weight >= 0.01)"],
            rows,
            title="Figure 10: Link distribution across the top countries",
        )
        + f"\nUS is the dominant cross-border sink: {r.fig10_links.us_is_dominant_sink()}"
        + f"\ninward looking (>0.5 self-loop): {r.fig10_links.inward_looking()}"
        + f"\noutward looking (<0.4): {r.fig10_links.outward_looking()}"
    )


def _methodology(r: StudyResults) -> str:
    lost = r.lost_edges
    stats = r.dataset.stats
    return "\n".join(
        [
            "Section 2.2: Crawl methodology accounting",
            f"profiles crawled: {format_number(r.dataset.n_profiles)}"
            f" of {format_number(r.graph.n)} discovered"
            f" ({percent(r.dataset.n_profiles / r.graph.n)})"
            f" [paper: {format_number(P.CRAWLED_PROFILES)} of"
            f" {format_number(P.GRAPH_NODES)}]",
            f"edges collected: {format_number(r.dataset.n_edges)}"
            f" [paper: {format_number(P.GRAPH_EDGES)}]",
            f"machines: {stats.n_machines} (paper: {P.CRAWL_MACHINES});"
            f" throttled requests: {format_number(stats.throttled)};"
            f" server errors retried: {format_number(stats.server_errors)}",
            f"users over the {format_number(lost.display_limit)}-entry display cap:"
            f" {format_number(lost.capped_users)} [paper: {P.CAPPED_USERS}]",
            f"declared vs collected for capped users:"
            f" {format_number(lost.declared_edges)} vs"
            f" {format_number(lost.collected_edges)}",
            f"lost-edge fraction: {percent(lost.lost_fraction)}"
            f" [paper: {percent(P.LOST_EDGE_FRACTION)}]",
        ]
    )


def _ext_growth(r: StudyResults) -> str:
    from repro.analysis.growth import analyze_growth
    from repro.synth.growth import build_timeline, OPEN_SIGNUP_DAY

    world = r.extras.get("world")
    if world is None:
        return "(growth study requires the generating world; not available)"
    timeline = build_timeline(
        world.graph, world.config.field_trial_fraction, seed=world.config.seed + 7
    )
    growth = analyze_growth(
        timeline, seed=world.config.seed + 8, n_snapshots=6, path_samples=120
    )
    rows = [
        (
            f"{s.day:.0f}",
            format_number(s.n_nodes),
            format_number(s.n_edges),
            f"{s.mean_degree:.1f}",
            f"{s.mean_path_length:.2f}",
            f"{s.reciprocity:.2f}",
        )
        for s in growth.snapshots
    ]
    return (
        format_table(
            ["Day", "Nodes", "Edges", "Mean deg", "Path len", "Reciprocity"],
            rows,
            title="Extension (Sec 7): topology snapshots over the growth arc",
        )
        + f"\ntipping point day {growth.tipping_day:.0f}"
        + f" (open signup: day {OPEN_SIGNUP_DAY:.0f});"
        + f" stabilization day {growth.stabilization_day:.0f};"
        + f" densification exponent a={growth.densification_exponent:.2f}"
    )


def _ext_diffusion(r: StudyResults) -> str:
    from repro.analysis.diffusion import analyze_diffusion
    from repro.synth.activity import simulate_activity
    from repro.synth.countries import TOP10_CODES

    world = r.extras.get("world")
    if world is None:
        return "(diffusion study requires the generating world; not available)"
    log = simulate_activity(world, seed=world.config.seed + 9, max_users=10_000)
    analysis = analyze_diffusion(log, world.population, countries=list(TOP10_CODES))
    reach = analysis.reach
    rows = [
        (code, activity.n_posts, percent(activity.public_share),
         f"{activity.mean_audience:.1f}")
        for code, activity in sorted(analysis.by_country.items())
    ]
    return (
        format_table(
            ["Country", "Posts", "Public share", "Mean audience"],
            rows,
            title="Extension (Sec 7): posting culture and reach",
        )
        + f"\npublic posts reach {reach.public_mean_audience:.1f} users vs"
        + f" {reach.scoped_mean_audience:.1f} for circle-scoped"
        + f" ({reach.reach_ratio:.1f}x); max cascade {analysis.max_cascade()}"
    )


def _ext_implications(r: StudyResults) -> str:
    from repro.analysis.implications import campaign_countries, derive_strategies

    strategies = derive_strategies(r)
    rows = [
        (
            s.country,
            s.recommend_scope,
            f"{s.self_loop:.2f}",
            s.featured_label,
            "yes" if s.political_campaign_viable else "no",
            s.privacy_posture,
        )
        for s in strategies.values()
    ]
    return (
        format_table(
            ["Country", "Recommend", "Self-loop", "Feature",
             "Political?", "Privacy posture"],
            rows,
            title="Section 6 implications, derived from the measurements",
        )
        + f"\npolitical campaigns viable in: {campaign_countries(strategies) or 'none'}"
    )


EXPERIMENTS: dict[str, Experiment] = {
    exp.artifact_id: exp
    for exp in (
        Experiment("table1", "Top 20 users by in-degree", "3.1", _table1),
        Experiment("table2", "Public attribute availability", "3.1", _table2),
        Experiment("table3", "All users vs tel-users", "3.2", _table3),
        Experiment("table4", "OSN topology comparison", "3.3", _table4),
        Experiment("table5", "Top occupations per country", "4.2", _table5),
        Experiment("fig2", "Fields shared: tel vs all (CCDF)", "3.2", _fig2),
        Experiment("fig3", "Degree distributions", "3.3.1", _fig3),
        Experiment("fig4a", "Reciprocity CDF", "3.3.2", _fig4a),
        Experiment("fig4b", "Clustering coefficient CDF", "3.3.3", _fig4b),
        Experiment("fig4c", "SCC size CCDF", "3.3.4", _fig4c),
        Experiment("fig5", "Path length distribution", "3.3.5", _fig5),
        Experiment("fig6", "Top 10 countries", "4", _fig6),
        Experiment("fig7", "Economics of adoption", "4.1", _fig7),
        Experiment("fig8", "Openness per country", "4.3", _fig8),
        Experiment("fig9", "Path miles", "4.4", _fig9),
        Experiment("fig10", "Links across geography", "4.5", _fig10),
        Experiment("methodology", "Crawl accounting", "2.2", _methodology),
        Experiment("ext_growth", "Growth phases & densification", "7", _ext_growth),
        Experiment("ext_diffusion", "Content diffusion via circles", "7", _ext_diffusion),
        Experiment("ext_implications", "Derived product strategies", "6", _ext_implications),
    )
}
