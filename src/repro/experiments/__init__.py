"""Experiment harness: one renderer per paper artifact, plus a runner."""

from .registry import Experiment, EXPERIMENTS
from .render import AsciiPlot, format_number, format_table, percent
from .runner import main, render_comparison_table, run_experiments

__all__ = [
    "AsciiPlot",
    "Experiment",
    "EXPERIMENTS",
    "format_number",
    "format_table",
    "main",
    "percent",
    "render_comparison_table",
    "run_experiments",
]
