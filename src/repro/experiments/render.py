"""Text rendering of tables and figures.

The benches and the experiment runner print every artifact the way the
paper presents it: tables as aligned columns, figures as compact ASCII
scatter plots (log or linear axes), so a terminal diff against the
paper's rows/series is possible without any plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    if value != value:  # NaN
        return "n/a"
    return f"{100.0 * value:.{digits}f}%"


class AsciiPlot:
    """A tiny scatter/step plotter for terminal figures.

    Series are drawn with one marker character each; axes can be linear
    or log10. Intended for CCDF/CDF shape checks, not pixel fidelity.
    """

    def __init__(
        self,
        width: int = 64,
        height: int = 16,
        x_log: bool = False,
        y_log: bool = False,
        title: str = "",
    ):
        self.width = width
        self.height = height
        self.x_log = x_log
        self.y_log = y_log
        self.title = title
        self._series: list[tuple[np.ndarray, np.ndarray, str, str]] = []

    def add_series(self, x, y, marker: str, label: str = "") -> None:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        keep = np.isfinite(x) & np.isfinite(y)
        if self.x_log:
            keep &= x > 0
        if self.y_log:
            keep &= y > 0
        self._series.append((x[keep], y[keep], marker[0], label))

    def _transform(self, values: np.ndarray, log: bool) -> np.ndarray:
        return np.log10(values) if log else values

    def render(self) -> str:
        drawable = [s for s in self._series if len(s[0])]
        if not drawable:
            return f"{self.title}\n(no data)"
        all_x = np.concatenate([self._transform(s[0], self.x_log) for s in drawable])
        all_y = np.concatenate([self._transform(s[1], self.y_log) for s in drawable])
        x_lo, x_hi = float(all_x.min()), float(all_x.max())
        y_lo, y_hi = float(all_y.min()), float(all_y.max())
        x_span = (x_hi - x_lo) or 1.0
        y_span = (y_hi - y_lo) or 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for x, y, marker, _ in drawable:
            tx = self._transform(x, self.x_log)
            ty = self._transform(y, self.y_log)
            cols = np.clip(
                ((tx - x_lo) / x_span * (self.width - 1)).round().astype(int),
                0,
                self.width - 1,
            )
            rows = np.clip(
                ((ty - y_lo) / y_span * (self.height - 1)).round().astype(int),
                0,
                self.height - 1,
            )
            for c, r in zip(cols, rows):
                grid[self.height - 1 - r][c] = marker

        def axis_label(v: float, log: bool) -> str:
            if log:
                return f"1e{v:.1f}" if not float(v).is_integer() else f"1e{int(v)}"
            return f"{v:.3g}"

        lines = []
        if self.title:
            lines.append(self.title)
        top = axis_label(y_hi, self.y_log)
        bottom = axis_label(y_lo, self.y_log)
        margin = max(len(top), len(bottom))
        for i, row in enumerate(grid):
            label = top if i == 0 else (bottom if i == self.height - 1 else "")
            lines.append(f"{label.rjust(margin)} |{''.join(row)}")
        lines.append(" " * margin + " +" + "-" * self.width)
        left = axis_label(x_lo, self.x_log)
        right = axis_label(x_hi, self.x_log)
        pad = self.width - len(left) - len(right)
        lines.append(" " * (margin + 2) + left + " " * max(1, pad) + right)
        legend = "   ".join(f"{m}={label}" for _, _, m, label in drawable if label)
        if legend:
            lines.append(legend)
        return "\n".join(lines)


def render_ccdf_plot(
    series: list[tuple[np.ndarray, np.ndarray, str, str]],
    title: str,
    x_log: bool = True,
    y_log: bool = True,
) -> str:
    """Convenience wrapper: a CCDF-style plot from (x, p, marker, label)."""
    plot = AsciiPlot(x_log=x_log, y_log=y_log, title=title)
    for x, p, marker, label in series:
        plot.add_series(x, p, marker, label)
    return plot.render()


def format_number(value: float) -> str:
    """Humanised counts: 575,141,097 style for ints, 3 sig figs otherwise."""
    if value != value:
        return "n/a"
    if float(value).is_integer() and abs(value) < 1e15:
        return f"{int(value):,}"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def log_bins(values: np.ndarray, n_bins: int = 40) -> np.ndarray:
    """Log-spaced bin edges covering a positive sample."""
    values = values[values > 0]
    if len(values) == 0:
        return np.array([1.0, 10.0])
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        hi = lo * 10
    return np.logspace(math.log10(lo), math.log10(hi), n_bins)
