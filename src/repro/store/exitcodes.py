"""Exit-code taxonomy for ``python -m repro.store``.

The supervisor (:mod:`repro.store.supervisor`) restarts a crashed
campaign child based purely on how it died, so the CLI's exit codes are
a contract, not a convention.  Shell scripts and CI jobs lean on the
same codes.

====  =================  =====================================================
code  name               meaning
====  =================  =====================================================
0     ``EXIT_OK``        completed; nothing left to do
2     ``EXIT_USAGE``     bad arguments / unusable config (argparse default)
70    ``EXIT_RESUMABLE`` transient failure (injected disk fault, simulated
                         crash); the store is intact — resume and carry on
71    ``EXIT_CORRUPT``   the store failed verification (CRC mismatch, torn
                         structure); run ``fsck --repair`` before resuming
72    ``EXIT_UNRECOVERABLE``  data loss is certain: no satisfiable resume
                         cut exists and the journal cannot fill the gap
====  =================  =====================================================

Negative codes (POSIX ``-signum``) and 128+signum shell conventions are
folded in by :func:`classify`: a SIGKILL'd child (``-9`` from
``Popen.returncode``, ``137`` from a shell) is ``killed`` — resumable by
definition, since kills are exactly what the journal protects against.
"""

from __future__ import annotations

__all__ = [
    "EXIT_CORRUPT",
    "EXIT_OK",
    "EXIT_RESUMABLE",
    "EXIT_UNRECOVERABLE",
    "EXIT_USAGE",
    "classify",
]

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_RESUMABLE = 70
EXIT_CORRUPT = 71
EXIT_UNRECOVERABLE = 72


def classify(code: int) -> str:
    """Map a child exit code to an outcome word the supervisor acts on.

    Returns one of ``"ok"``, ``"resumable"``, ``"corrupt"``,
    ``"unrecoverable"``, ``"killed"``, or ``"fatal"`` (anything
    unclassified — argparse errors, tracebacks — which the supervisor
    treats as not worth retrying).
    """
    if code == EXIT_OK:
        return "ok"
    if code == EXIT_RESUMABLE:
        return "resumable"
    if code == EXIT_CORRUPT:
        return "corrupt"
    if code == EXIT_UNRECOVERABLE:
        return "unrecoverable"
    if code < 0 or code > 128:
        return "killed"
    return "fatal"
