"""Sharded append-only columnar edge segments.

Edges stream into an in-memory buffer; every ``shard_edges`` edges (and
at every checkpoint) the buffer is *sealed* into an immutable segment
file holding the two int64 columns back to back.  Sealed segments are
never rewritten — rollback deletes whole files, compaction merges them
— which keeps crash recovery trivial: a segment either exists complete
and CRC-clean, or it does not count.

Format
------
::

    segment := b"RSEG1\\n" <u64 n_edges> <u32 crc32(data)> <data>
    data    := sources[n x int64 LE] ++ targets[n x int64 LE]

Files are named ``seg-000001.edges``, ``seg-000002.edges``, … and are
written to a temp name then renamed, so a kill mid-write leaves no
half-segment under a live name.

:func:`compact` merges every shard, in order, into the ``edges.npz``
archive format :meth:`repro.crawler.dataset.CrawlDataset.load` reads.
"""

from __future__ import annotations

import re
import struct
import zlib
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs.metrics import Registry, get_registry

from .atomio import StoreIO, publish_bytes

__all__ = [
    "SealCallback",
    "SegmentError",
    "SegmentWriter",
    "compact",
    "iter_segment_paths",
    "load_edges",
    "read_segment",
    "segment_edge_count",
    "write_segment",
]

MAGIC = b"RSEG1\n"
_HEADER = struct.Struct("<QI")
_NAME_RE = re.compile(r"^seg-(\d{6})\.edges$")

#: Numpy dtype of both on-disk columns.
EDGE_DTYPE = np.dtype("<i8")


class SegmentError(Exception):
    """A segment file is missing, corrupt, or inconsistent."""


def _segment_name(index: int) -> str:
    return f"seg-{index:06d}.edges"


def write_segment(
    path: str | Path,
    sources: np.ndarray,
    targets: np.ndarray,
    io: StoreIO | None = None,
) -> Path:
    """Write one sealed segment atomically (tmp → fsync → rename)."""
    path = Path(path)
    sources = np.ascontiguousarray(sources, dtype=EDGE_DTYPE)
    targets = np.ascontiguousarray(targets, dtype=EDGE_DTYPE)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise ValueError("sources/targets must be equal-length 1-D arrays")
    data = sources.tobytes() + targets.tobytes()
    blob = MAGIC + _HEADER.pack(len(sources), zlib.crc32(data)) + data
    return publish_bytes(path, blob, kind="segment", io=io)


def read_segment(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Load one segment's (sources, targets), verifying magic and CRC."""
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise SegmentError(f"{path}: not a segment file (bad magic)")
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SegmentError(f"{path}: truncated header")
        n_edges, crc = _HEADER.unpack(header)
        data = handle.read()
    expected = 2 * n_edges * EDGE_DTYPE.itemsize
    if len(data) != expected:
        raise SegmentError(f"{path}: expected {expected} data bytes, found {len(data)}")
    if zlib.crc32(data) != crc:
        raise SegmentError(f"{path}: CRC mismatch")
    column = n_edges * EDGE_DTYPE.itemsize
    sources = np.frombuffer(data[:column], dtype=EDGE_DTYPE)
    targets = np.frombuffer(data[column:], dtype=EDGE_DTYPE)
    return sources, targets


def segment_edge_count(path: str | Path) -> int:
    """Edge count from the header alone (no data read, no CRC check)."""
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise SegmentError(f"{path}: not a segment file (bad magic)")
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise SegmentError(f"{path}: truncated header")
        n_edges, _ = _HEADER.unpack(header)
    return int(n_edges)


def iter_segment_paths(directory: str | Path) -> list[Path]:
    """Sealed segment paths under a directory, in shard order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    names = [p.name for p in directory.iterdir() if _NAME_RE.match(p.name)]
    return [directory / name for name in sorted(names)]


def load_edges(
    directory: str | Path, names: Sequence[str] | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate shards (all, or exactly ``names`` in order) into arrays."""
    directory = Path(directory)
    if names is None:
        paths = iter_segment_paths(directory)
    else:
        paths = [directory / name for name in names]
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for path in paths:
        s, t = read_segment(path)
        sources.append(s)
        targets.append(t)
    if not sources:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return (
        np.concatenate(sources).astype(np.int64, copy=False),
        np.concatenate(targets).astype(np.int64, copy=False),
    )


def compact(
    directory: str | Path,
    out_dir: str | Path,
    names: Sequence[str] | None = None,
) -> Path:
    """Merge shards into ``<out_dir>/edges.npz`` (the archive format).

    The result is byte-compatible with what :meth:`CrawlDataset.save`
    writes, so :meth:`CrawlDataset.load` reads it unchanged.
    """
    sources, targets = load_edges(directory, names=names)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / "edges.npz"
    np.savez_compressed(out_path, sources=sources, targets=targets)
    return out_path


#: Signature of :attr:`SegmentWriter.on_seal` observers: the sealed
#: path plus the exact in-memory columns that were written, so stream
#: consumers (live sketches) never re-read what was just flushed.
SealCallback = Callable[[Path, np.ndarray, np.ndarray], None]


class SegmentWriter:
    """Accumulates edges and seals them into numbered shard files."""

    def __init__(
        self,
        directory: str | Path,
        shard_edges: int = 65_536,
        registry: Registry | None = None,
        on_seal: SealCallback | None = None,
        io: StoreIO | None = None,
    ):
        if shard_edges < 1:
            raise ValueError("shard_edges must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_edges = shard_edges
        self.on_seal = on_seal
        self._io = io
        self._buf_sources: list[int] = []
        self._buf_targets: list[int] = []
        registry = registry if registry is not None else get_registry()
        self._m_sealed = registry.counter(
            "store.segments_sealed", "Edge segment shards sealed to disk"
        )
        self._m_edges = registry.counter(
            "store.segment_edges", "Edges sealed into segment shards"
        )
        self._g_sealed_edges = registry.gauge(
            "store.sealed_edges", "Edges currently durable in sealed segment shards"
        )
        self._sealed: list[tuple[str, int]] = [
            (path.name, segment_edge_count(path))
            for path in iter_segment_paths(self.directory)
        ]
        self._g_sealed_edges.set(self.n_sealed_edges)

    @property
    def n_sealed_edges(self) -> int:
        return sum(count for _, count in self._sealed)

    @property
    def n_buffered(self) -> int:
        return len(self._buf_sources)

    def sealed_names(self) -> list[str]:
        return [name for name, _ in self._sealed]

    def sealed_counts(self) -> list[int]:
        """Per-shard edge counts, aligned with :meth:`sealed_names`."""
        return [count for _, count in self._sealed]

    def append(self, u: int, v: int) -> None:
        self._buf_sources.append(int(u))
        self._buf_targets.append(int(v))
        if len(self._buf_sources) >= self.shard_edges:
            self.seal()

    def extend(self, edges: Iterable[tuple[int, int]]) -> None:
        for u, v in edges:
            self.append(u, v)

    def seal(self) -> Path | None:
        """Flush the buffer into a new shard; None when nothing buffered."""
        if not self._buf_sources:
            return None
        index = self._next_index()
        sources = np.asarray(self._buf_sources, dtype=EDGE_DTYPE)
        targets = np.asarray(self._buf_targets, dtype=EDGE_DTYPE)
        path = write_segment(
            self.directory / _segment_name(index), sources, targets, io=self._io
        )
        self._sealed.append((path.name, len(self._buf_sources)))
        self._m_sealed.inc()
        self._m_edges.inc(len(self._buf_sources))
        self._g_sealed_edges.set(self.n_sealed_edges)
        self._buf_sources = []
        self._buf_targets = []
        if self.on_seal is not None:
            self.on_seal(path, sources, targets)
        return path

    def _next_index(self) -> int:
        if not self._sealed:
            return 1
        last = self._sealed[-1][0]
        return int(_NAME_RE.match(last).group(1)) + 1

    def rollback(self, keep: Sequence[str]) -> None:
        """Drop buffered edges and every shard not in ``keep``.

        ``keep`` must be a prefix of the sealed shard sequence (shards
        are append-only, so a checkpoint can only ever reference a
        prefix); everything later — including stray files left by a
        killed run — is deleted.
        """
        keep = list(keep)
        names = self.sealed_names()
        if names[: len(keep)] != keep:
            raise SegmentError(
                f"rollback target {keep!r} is not a prefix of sealed shards {names!r}"
            )
        for name in names[len(keep):]:
            (self.directory / name).unlink()
        self._sealed = self._sealed[: len(keep)]
        self._g_sealed_edges.set(self.n_sealed_edges)
        self._buf_sources = []
        self._buf_targets = []
