"""``python -m repro.store`` — run, resume, supervise, and repair campaigns.

    python -m repro.store run --dir /tmp/camp --users 2000 --seed 11
    python -m repro.store run --dir /tmp/camp --kill-after-pages 700   # dies (SIGKILL)
    python -m repro.store resume --dir /tmp/camp                       # finishes it
    python -m repro.store fsck --dir /tmp/camp --repair                # verify + heal
    python -m repro.store supervise --dir /tmp/camp --disk-scenario full-grind
    python -m repro.store inspect --dir /tmp/camp
    python -m repro.store compact --dir /tmp/camp --out /tmp/archive
    python -m repro.store verify --dir /tmp/camp --against /tmp/other  # exit 1 on diff

``run`` and ``resume`` are the same operation (a campaign always resumes
from its newest checkpoint); ``resume`` exists so scripts read honestly
and so it can refuse to *create* a campaign that does not exist.

Exit codes follow :mod:`repro.store.exitcodes`: 0 done, 2 usage/config,
70 transient-but-resumable (injected fault, simulated crash), 71 the
store needs ``fsck --repair``, 72 proven data loss.  The supervisor
drives its restart policy off exactly these codes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import build_report, get_registry, get_tracer
from repro.obs.report import RUN_REPORT_FILENAME

from .campaign import (
    ARCHIVE_DIR,
    MANIFEST_NAME,
    CampaignConfig,
    CampaignError,
    CorruptStoreError,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from .checkpoint import CheckpointError
from .exitcodes import (
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_RESUMABLE,
    EXIT_UNRECOVERABLE,
    EXIT_USAGE,
)
from .journal import JournalError
from .segments import SegmentError

#: Retry/backoff overrides applied whenever a chaos scenario is armed —
#: calibrated to the simulated transport's time scale (a request costs
#: ~0.02 virtual s), mirroring ``python -m repro.faults``.
_CHAOS_RESILIENCE = {
    "initial_backoff": 0.02,
    "max_backoff": 0.5,
    "breaker_cooldown": 0.25,
}


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--machines", type=int, default=11)
    parser.add_argument("--display-cap", type=int, default=10_000)
    parser.add_argument("--error-rate", type=float, default=0.0)
    parser.add_argument("--rate-per-ip", type=float, default=200.0)
    parser.add_argument("--burst", type=float, default=400.0)
    parser.add_argument("--max-pages", type=int, default=None)
    parser.add_argument("--checkpoint-every-pages", type=int, default=500)
    parser.add_argument("--checkpoint-every-virtual", type=float, default=0.0)
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="arm a named network chaos scenario (see python -m repro.faults --list)",
    )
    parser.add_argument(
        "--disk-scenario",
        default=None,
        metavar="NAME",
        help="arm a named disk-fault scenario against the store's I/O paths",
    )
    _add_crash_arguments(parser)
    _add_report_arguments(parser)


def _add_crash_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kill-after-pages",
        type=int,
        default=None,
        help="SIGKILL this process after N pages (crash/resume testing)",
    )
    parser.add_argument(
        "--hang-after-pages",
        type=int,
        default=None,
        help="stop progressing (and heartbeating) after N pages (stall testing)",
    )


def _add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--report",
        action="store_true",
        help=f"write {RUN_REPORT_FILENAME} into the campaign directory",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help=(
            f"stream live telemetry into {RUN_REPORT_FILENAME} while crawling "
            "(render with `python -m repro.obs.live`)"
        ),
    )


def _config_from_args(args: argparse.Namespace) -> CampaignConfig:
    faults = None
    disk_faults = None
    resilience = None
    if args.scenario:
        from repro.faults import get_scenario

        faults = get_scenario(args.scenario)
        resilience = dict(_CHAOS_RESILIENCE)
    if args.disk_scenario:
        from repro.faults import get_disk_scenario

        disk_faults = get_disk_scenario(args.disk_scenario)
    return CampaignConfig(
        n_users=args.users,
        seed=args.seed,
        circle_display_limit=args.display_cap,
        n_machines=args.machines,
        max_pages=args.max_pages,
        rate_per_ip=args.rate_per_ip,
        burst=args.burst,
        error_rate=args.error_rate,
        checkpoint_every_pages=args.checkpoint_every_pages,
        checkpoint_every_virtual=args.checkpoint_every_virtual,
        faults=faults,
        resilience=resilience,
        disk_faults=disk_faults,
    )


def _run(directory: Path, config: CampaignConfig | None, args: argparse.Namespace) -> int:
    registry = get_registry()
    registry.reset()
    get_tracer().reset()
    campaign = CrawlCampaign(directory, config)
    dataset = campaign.run(
        registry=registry,
        kill_after_pages=args.kill_after_pages,
        hang_after_pages=args.hang_after_pages,
        live=args.live,
    )
    # --live already left a final (terminal-status) run_report.json behind;
    # don't clobber it with the plain campaign report.
    if args.report and not args.live:
        report = build_report(
            kind="campaign",
            config=campaign.config.to_json_dict(),
            coverage=dict(vars(dataset.stats)),
            extra={"campaign_dir": str(directory)},
        )
        report.write(directory / RUN_REPORT_FILENAME)
    print(
        json.dumps(
            {
                "status": campaign.status,
                "pages": len(dataset.profiles),
                "edges": len(dataset.sources),
                "archive": str(directory / ARCHIVE_DIR),
            }
        )
    )
    return EXIT_OK


def _fsck(directory: Path, args: argparse.Namespace) -> int:
    from .doctor import fsck

    report = fsck(directory, repair=args.repair, scrub=args.scrub)
    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        print(f"fsck {directory}  [{report.status}]")
        for finding in report.findings:
            mark = "healed" if finding.repaired else finding.action
            print(
                f"  {finding.severity:<26} {finding.path}  "
                f"{finding.problem} -> {mark}"
            )
        if report.lost_page_range:
            lo, hi = report.lost_page_range
            print(f"  LOST pages {lo}..{hi} ({hi - lo + 1} pages)")
    if report.lost_page_range is not None:
        return EXIT_UNRECOVERABLE
    if report.status == "needs-repair":
        return EXIT_CORRUPT
    return EXIT_OK


def _supervise(directory: Path, args: argparse.Namespace) -> int:
    from .supervisor import CampaignSupervisor, SupervisorConfig

    if not (directory / MANIFEST_NAME).exists():
        # Create the campaign (manifest only); the children do the work.
        CrawlCampaign(directory, _config_from_args(args))
    child_args: list[str] = []
    if args.kill_after_pages is not None:
        # Re-armed on *every* incarnation: the child dies again and
        # again until a final stretch shorter than N pages completes.
        child_args += ["--kill-after-pages", str(args.kill_after_pages)]
    if args.hang_after_pages is not None:
        child_args += ["--hang-after-pages", str(args.hang_after_pages)]
    supervisor = CampaignSupervisor(
        directory,
        SupervisorConfig(
            max_restarts=args.max_restarts,
            heartbeat_timeout=args.heartbeat_timeout,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
            seed=args.supervisor_seed,
            allow_data_loss=args.allow_data_loss,
        ),
        child_args=child_args,
    )
    result = supervisor.run()
    print(
        json.dumps(
            {
                "outcome": result.outcome,
                "restarts": result.restarts,
                "attempts": len(result.attempts),
            }
        )
    )
    if result.completed:
        return EXIT_OK
    if result.outcome == "unrecoverable":
        return EXIT_UNRECOVERABLE
    return 1


def _load_dataset(path: Path):
    """Load a dataset from a campaign directory or a plain archive."""
    from repro.crawler.dataset import CrawlDataset

    if (path / MANIFEST_NAME).exists():
        campaign = CrawlCampaign(path)
        archive = path / ARCHIVE_DIR
        if not (archive / "edges.npz").exists():
            archive = campaign.compact()
        return CrawlDataset.load(archive)
    return CrawlDataset.load(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description=(
            "Durable crawl campaigns: run, resume, supervise, fsck, "
            "inspect, compact, verify."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="create (or resume) a campaign and crawl it")
    p_run.add_argument("--dir", required=True)
    _add_run_arguments(p_run)

    p_resume = sub.add_parser("resume", help="resume an existing campaign")
    p_resume.add_argument("--dir", required=True)
    _add_crash_arguments(p_resume)
    _add_report_arguments(p_resume)

    p_fsck = sub.add_parser("fsck", help="verify a campaign directory; repair damage")
    p_fsck.add_argument("--dir", required=True)
    p_fsck.add_argument("--repair", action="store_true",
                        help="truncate/rebuild/quarantine instead of just reporting")
    p_fsck.add_argument("--scrub", action="store_true",
                        help="also cross-check segment contents against journal replay")
    p_fsck.add_argument("--json", action="store_true")

    p_sup = sub.add_parser(
        "supervise", help="run the campaign in supervised child processes until done"
    )
    p_sup.add_argument("--dir", required=True)
    _add_run_arguments(p_sup)
    p_sup.add_argument("--max-restarts", type=int, default=16)
    p_sup.add_argument("--heartbeat-timeout", type=float, default=60.0)
    p_sup.add_argument("--backoff-base", type=float, default=0.05)
    p_sup.add_argument("--backoff-cap", type=float, default=2.0)
    p_sup.add_argument("--supervisor-seed", type=int, default=0)
    p_sup.add_argument("--allow-data-loss", action="store_true",
                       help="resume from the best surviving cut instead of halting")

    p_inspect = sub.add_parser("inspect", help="report a campaign directory's state")
    p_inspect.add_argument("--dir", required=True)
    p_inspect.add_argument("--json", action="store_true")

    p_compact = sub.add_parser("compact", help="merge journal+segments into an archive")
    p_compact.add_argument("--dir", required=True)
    p_compact.add_argument("--out", default=None)

    p_verify = sub.add_parser("verify", help="compare two campaign/archive datasets")
    p_verify.add_argument("--dir", required=True)
    p_verify.add_argument("--against", required=True)

    args = parser.parse_args(argv)
    directory = Path(args.dir)

    try:
        if args.command == "run":
            return _run(directory, _config_from_args(args), args)
        if args.command == "resume":
            if not (directory / MANIFEST_NAME).exists():
                print(f"no campaign at {directory} (missing {MANIFEST_NAME})")
                return EXIT_USAGE
            return _run(directory, None, args)
        if args.command == "fsck":
            return _fsck(directory, args)
        if args.command == "supervise":
            return _supervise(directory, args)
        if args.command == "inspect":
            report = CrawlCampaign(directory).inspect()
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                print(f"campaign   {report['directory']}  [{report['status']}]")
                journal = report.get("journal")
                if journal:
                    records = ", ".join(
                        f"{k}={v}" for k, v in journal["records"].items()
                    )
                    print(
                        f"journal    {journal['valid_bytes']} valid bytes, "
                        f"{journal['torn_bytes']} torn ({records})"
                    )
                seg = report["segments"]
                print(f"segments   {seg['count']} shards, {seg['edges']} edges")
                for entry in report["checkpoints"]:
                    if entry.get("corrupt"):
                        print(f"checkpoint {entry['file']}  CORRUPT")
                    else:
                        print(
                            f"checkpoint {entry['file']}  pages={entry['n_pages']} "
                            f"edges={entry['n_edges']}"
                        )
                print(f"archive    {'present' if report['archive'] else 'absent'}")
            return 0
        if args.command == "compact":
            out = CrawlCampaign(directory).compact(args.out)
            print(str(out))
            return 0
        if args.command == "verify":
            problems = dataset_diff(
                _load_dataset(directory), _load_dataset(Path(args.against))
            )
            for problem in problems:
                print(problem)
            print("datasets identical" if not problems else "datasets DIFFER")
            return 1 if problems else 0
    except CorruptStoreError as exc:
        print(f"corrupt store: {exc}", file=sys.stderr)
        return EXIT_CORRUPT
    except (SegmentError, CheckpointError, JournalError) as exc:
        print(f"corrupt store: {exc}", file=sys.stderr)
        return EXIT_CORRUPT
    except SimulatedCrash as exc:
        print(f"simulated crash: {exc}", file=sys.stderr)
        return EXIT_RESUMABLE
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        # Injected disk faults subclass OSError; honest I/O errors land
        # here too, and both are worth a blind retry before giving up.
        if getattr(exc, "kind", None) is not None:
            print(f"injected disk fault: {exc}", file=sys.stderr)
        else:
            print(f"I/O error: {exc}", file=sys.stderr)
        return EXIT_RESUMABLE
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
