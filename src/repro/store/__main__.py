"""``python -m repro.store`` — run, resume, inspect, and compact campaigns.

    python -m repro.store run --dir /tmp/camp --users 2000 --seed 11
    python -m repro.store run --dir /tmp/camp --kill-after-pages 700   # dies (SIGKILL)
    python -m repro.store resume --dir /tmp/camp                       # finishes it
    python -m repro.store inspect --dir /tmp/camp
    python -m repro.store compact --dir /tmp/camp --out /tmp/archive
    python -m repro.store verify --dir /tmp/camp --against /tmp/other  # exit 1 on diff

``run`` and ``resume`` are the same operation (a campaign always resumes
from its newest checkpoint); ``resume`` exists so scripts read honestly
and so it can refuse to *create* a campaign that does not exist.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs import build_report, get_registry, get_tracer
from repro.obs.report import RUN_REPORT_FILENAME

from .campaign import (
    ARCHIVE_DIR,
    MANIFEST_NAME,
    CampaignConfig,
    CampaignError,
    CrawlCampaign,
    dataset_diff,
)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--machines", type=int, default=11)
    parser.add_argument("--display-cap", type=int, default=10_000)
    parser.add_argument("--error-rate", type=float, default=0.0)
    parser.add_argument("--rate-per-ip", type=float, default=200.0)
    parser.add_argument("--burst", type=float, default=400.0)
    parser.add_argument("--max-pages", type=int, default=None)
    parser.add_argument("--checkpoint-every-pages", type=int, default=500)
    parser.add_argument("--checkpoint-every-virtual", type=float, default=0.0)
    parser.add_argument(
        "--kill-after-pages",
        type=int,
        default=None,
        help="SIGKILL this process after N pages (crash/resume testing)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help=f"write {RUN_REPORT_FILENAME} into the campaign directory",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help=(
            f"stream live telemetry into {RUN_REPORT_FILENAME} while crawling "
            "(render with `python -m repro.obs.live`)"
        ),
    )


def _config_from_args(args: argparse.Namespace) -> CampaignConfig:
    return CampaignConfig(
        n_users=args.users,
        seed=args.seed,
        circle_display_limit=args.display_cap,
        n_machines=args.machines,
        max_pages=args.max_pages,
        rate_per_ip=args.rate_per_ip,
        burst=args.burst,
        error_rate=args.error_rate,
        checkpoint_every_pages=args.checkpoint_every_pages,
        checkpoint_every_virtual=args.checkpoint_every_virtual,
    )


def _run(directory: Path, config: CampaignConfig | None, args: argparse.Namespace) -> int:
    registry = get_registry()
    registry.reset()
    get_tracer().reset()
    campaign = CrawlCampaign(directory, config)
    dataset = campaign.run(
        registry=registry, kill_after_pages=args.kill_after_pages, live=args.live
    )
    # --live already left a final (terminal-status) run_report.json behind;
    # don't clobber it with the plain campaign report.
    if args.report and not args.live:
        report = build_report(
            kind="campaign",
            config=campaign.config.to_json_dict(),
            coverage=dict(vars(dataset.stats)),
            extra={"campaign_dir": str(directory)},
        )
        report.write(directory / RUN_REPORT_FILENAME)
    print(
        json.dumps(
            {
                "status": campaign.status,
                "pages": len(dataset.profiles),
                "edges": len(dataset.sources),
                "archive": str(directory / ARCHIVE_DIR),
            }
        )
    )
    return 0


def _load_dataset(path: Path):
    """Load a dataset from a campaign directory or a plain archive."""
    from repro.crawler.dataset import CrawlDataset

    if (path / MANIFEST_NAME).exists():
        campaign = CrawlCampaign(path)
        archive = path / ARCHIVE_DIR
        if not (archive / "edges.npz").exists():
            archive = campaign.compact()
        return CrawlDataset.load(archive)
    return CrawlDataset.load(path)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Durable crawl campaigns: run, resume, inspect, compact, verify.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="create (or resume) a campaign and crawl it")
    p_run.add_argument("--dir", required=True)
    _add_run_arguments(p_run)

    p_resume = sub.add_parser("resume", help="resume an existing campaign")
    p_resume.add_argument("--dir", required=True)
    p_resume.add_argument("--report", action="store_true")
    p_resume.add_argument("--live", action="store_true")

    p_inspect = sub.add_parser("inspect", help="report a campaign directory's state")
    p_inspect.add_argument("--dir", required=True)
    p_inspect.add_argument("--json", action="store_true")

    p_compact = sub.add_parser("compact", help="merge journal+segments into an archive")
    p_compact.add_argument("--dir", required=True)
    p_compact.add_argument("--out", default=None)

    p_verify = sub.add_parser("verify", help="compare two campaign/archive datasets")
    p_verify.add_argument("--dir", required=True)
    p_verify.add_argument("--against", required=True)

    args = parser.parse_args(argv)
    directory = Path(args.dir)

    try:
        if args.command == "run":
            return _run(directory, _config_from_args(args), args)
        if args.command == "resume":
            if not (directory / MANIFEST_NAME).exists():
                print(f"no campaign at {directory} (missing {MANIFEST_NAME})")
                return 2
            args.kill_after_pages = None
            return _run(directory, None, args)
        if args.command == "inspect":
            report = CrawlCampaign(directory).inspect()
            if args.json:
                print(json.dumps(report, indent=2))
            else:
                print(f"campaign   {report['directory']}  [{report['status']}]")
                journal = report.get("journal")
                if journal:
                    records = ", ".join(
                        f"{k}={v}" for k, v in journal["records"].items()
                    )
                    print(
                        f"journal    {journal['valid_bytes']} valid bytes, "
                        f"{journal['torn_bytes']} torn ({records})"
                    )
                seg = report["segments"]
                print(f"segments   {seg['count']} shards, {seg['edges']} edges")
                for entry in report["checkpoints"]:
                    if entry.get("corrupt"):
                        print(f"checkpoint {entry['file']}  CORRUPT")
                    else:
                        print(
                            f"checkpoint {entry['file']}  pages={entry['n_pages']} "
                            f"edges={entry['n_edges']}"
                        )
                print(f"archive    {'present' if report['archive'] else 'absent'}")
            return 0
        if args.command == "compact":
            out = CrawlCampaign(directory).compact(args.out)
            print(str(out))
            return 0
        if args.command == "verify":
            problems = dataset_diff(
                _load_dataset(directory), _load_dataset(Path(args.against))
            )
            for problem in problems:
                print(problem)
            print("datasets identical" if not problems else "datasets DIFFER")
            return 1 if problems else 0
    except CampaignError as exc:
        print(f"error: {exc}")
        return 2
    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
