"""Checkpoints: atomic, self-verifying resume points.

A checkpoint pins one consistent cut of a campaign: the journal offset
and segment list that hold the crawl's *data* up to a page boundary,
plus the :class:`~repro.crawler.bfs.CrawlSnapshot` holding its *control*
state (frontier, fleet counters, HTTP front-end clock/limiter/RNG).
Restoring the snapshot and replaying the data reproduces the exact
machine state the crawl had at that boundary, so the remaining pages
replay bit-identically.

Files are ``ckpt-000001.json``, ``ckpt-000002.json``, … under the
campaign's ``checkpoints/`` directory; the last few are retained.  Each
file wraps its record in ``{"crc": …, "record": …}`` where the CRC
covers the canonical (sorted-key, compact) JSON of the record — a
half-written or bit-rotted checkpoint fails the check and the loader
falls back to the previous one, which is the crash-recovery contract:
*the newest verifiable checkpoint wins*.

The module also rebuilds :class:`~repro.crawler.dataset.CrawlStats` and
:class:`~repro.crawler.frontier.BFSFrontier` objects from snapshot
dicts, so inspection and compaction work without a live crawler.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.crawler.dataset import CrawlStats
from repro.crawler.frontier import BFSFrontier
from repro.obs.metrics import Registry, get_registry

from .atomio import StoreIO, publish_bytes

__all__ = [
    "CheckpointError",
    "CheckpointRecord",
    "frontier_from_state",
    "list_checkpoint_paths",
    "load_checkpoint",
    "load_latest",
    "stats_from_snapshot",
    "write_checkpoint",
]

_NAME_RE = re.compile(r"^ckpt-(\d{6})\.json$")


class CheckpointError(Exception):
    """A checkpoint file is unreadable, corrupt, or fails its CRC."""


@dataclass
class CheckpointRecord:
    """One durable resume point (see module docstring)."""

    sequence: int
    n_pages: int
    n_edges: int
    #: Journal byte offset covering exactly the first ``n_pages`` pages.
    journal_offset: int
    #: Sealed segment file names holding exactly the first ``n_edges`` edges.
    segments: list[str]
    #: ``CrawlSnapshot.to_json_dict()`` — the crawl's control state.
    snapshot: dict
    #: Per-segment edge counts aligned with ``segments`` — lets
    #: ``repro.store.doctor`` rebuild any one corrupt segment from
    #: journal replay without trusting the (CRC-unprotected) segment
    #: headers.  ``None`` on records written before this field existed.
    segment_counts: list[int] | None = None

    def to_json_dict(self) -> dict:
        return {
            "sequence": self.sequence,
            "n_pages": self.n_pages,
            "n_edges": self.n_edges,
            "journal_offset": self.journal_offset,
            "segments": list(self.segments),
            "snapshot": self.snapshot,
            "segment_counts": (
                list(self.segment_counts) if self.segment_counts is not None else None
            ),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "CheckpointRecord":
        counts = data.get("segment_counts")
        return cls(
            sequence=int(data["sequence"]),
            n_pages=int(data["n_pages"]),
            n_edges=int(data["n_edges"]),
            journal_offset=int(data["journal_offset"]),
            segments=list(data["segments"]),
            snapshot=dict(data["snapshot"]),
            segment_counts=list(counts) if counts is not None else None,
        )


def _canonical(record_dict: dict) -> bytes:
    return json.dumps(record_dict, sort_keys=True, separators=(",", ":")).encode("utf-8")


def checkpoint_path(directory: str | Path, sequence: int) -> Path:
    return Path(directory) / f"ckpt-{sequence:06d}.json"


def list_checkpoint_paths(directory: str | Path) -> list[Path]:
    """Checkpoint files in ascending sequence order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    names = [p.name for p in directory.iterdir() if _NAME_RE.match(p.name)]
    return [directory / name for name in sorted(names)]


def write_checkpoint(
    directory: str | Path,
    record: CheckpointRecord,
    keep: int = 3,
    io: StoreIO | None = None,
) -> Path:
    """Write one checkpoint atomically and prune all but the last ``keep``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = record.to_json_dict()
    document = {"crc": zlib.crc32(_canonical(body)), "record": body}
    path = checkpoint_path(directory, record.sequence)
    publish_bytes(path, json.dumps(document).encode("utf-8"), kind="checkpoint", io=io)
    if keep > 0:
        for old in list_checkpoint_paths(directory)[:-keep]:
            old.unlink()
    return path


def load_checkpoint(path: str | Path) -> CheckpointRecord:
    """Load and verify one checkpoint file; raises CheckpointError."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from exc
    if not isinstance(document, dict) or "crc" not in document or "record" not in document:
        raise CheckpointError(f"{path}: missing crc/record envelope")
    if zlib.crc32(_canonical(document["record"])) != document["crc"]:
        raise CheckpointError(f"{path}: CRC mismatch")
    return CheckpointRecord.from_json_dict(document["record"])


def load_latest(
    directory: str | Path, registry: Registry | None = None
) -> CheckpointRecord | None:
    """Newest verifiable checkpoint, or None when none survives.

    Corrupt files are skipped (counted on ``store.checkpoints_rejected``)
    rather than fatal — the previous checkpoint is a valid resume point.
    """
    registry = registry if registry is not None else get_registry()
    rejected = registry.counter(
        "store.checkpoints_rejected", "Checkpoint files that failed verification"
    )
    for path in reversed(list_checkpoint_paths(directory)):
        try:
            return load_checkpoint(path)
        except CheckpointError:
            rejected.inc()
    return None


# -- rebuilding crawl objects from snapshot dicts ------------------------------

def frontier_from_state(state: Mapping) -> BFSFrontier:
    """A fresh :class:`BFSFrontier` holding an exported frontier state."""
    frontier = BFSFrontier()
    frontier.restore_state(dict(state))
    return frontier


def stats_from_snapshot(snapshot: Mapping, n_machines: int) -> CrawlStats:
    """Rebuild :class:`CrawlStats` from a ``CrawlSnapshot`` dict.

    Mirrors exactly how :meth:`BidirectionalBFSCrawler.crawl` derives its
    final stats — fleet totals summed per machine, duration from the
    virtual clock, discovered users from the frontier — so stats
    reconstructed at compaction time equal the live crawl's.
    """
    totals = {
        "pages_fetched": 0,
        "not_found": 0,
        "throttled": 0,
        "server_errors": 0,
        "banned": 0,
        "timeouts": 0,
        "slow_responses": 0,
    }
    for machine in snapshot["pool"]["fetchers"]:
        for key in totals:
            # .get: snapshots predating a counter simply lack its key.
            totals[key] += int(machine.get(key, 0))
    dead_letter = snapshot.get("dead_letter", {})
    unresolved = (
        len(dead_letter.get("failed", []))
        + len(dead_letter.get("pending", []))
        + len(dead_letter.get("requeued", []))
    )
    return CrawlStats(
        pages_fetched=totals["pages_fetched"],
        not_found=totals["not_found"],
        throttled=totals["throttled"],
        server_errors=totals["server_errors"],
        virtual_duration=float(snapshot["virtual_now"]) - float(snapshot["started"]),
        n_machines=n_machines,
        discovered=len(snapshot["frontier"]["seen"]),
        banned=totals["banned"],
        timeouts=totals["timeouts"],
        slow_responses=totals["slow_responses"],
        parse_errors=int(dead_letter.get("parse_errors", 0)),
        dead_lettered=unresolved,
        redriven=int(dead_letter.get("redriven", 0)),
    )
