"""Atomic durable publishes and the injectable ``StoreIO`` seam.

Every file the store publishes under a live name — a sealed segment, a
checkpoint, the manifest — goes through the same dance:

    write to ``<name>.tmp`` → flush → fsync the file → ``os.replace``
    onto the live name → fsync the containing directory

The file fsync makes the *bytes* durable before the rename can expose
them; the directory fsync makes the *rename itself* durable, so an OS
crash cannot resurrect the old name or lose the new one.  A kill at any
point leaves either the old state or the new state under the live name,
never a torn hybrid — ``.tmp`` debris is the only possible leftover, and
``repro.store.doctor`` quarantines it.

:class:`StoreIO` is the seam the disk-fault layer
(:mod:`repro.faults.disk`) injects through: the journal, segment, and
checkpoint writers route their write/fsync/replace calls through an
``io`` object that defaults to this transparent passthrough.  The seam
is consulted per *batch* (one journal flush, one segment seal, one
checkpoint publish), never per edge, so the unarmed production path pays
one extra method call per durability event — nothing measurable (the
``bench_fsck.py`` gate holds it under 2%).

This module deliberately imports nothing from the rest of ``repro`` so
that ``repro.faults.disk`` can import it without cycling through the
store package's heavier modules.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO

__all__ = [
    "DEFAULT_IO",
    "StoreIO",
    "fsync_dir",
    "publish_bytes",
    "publish_text",
]


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a rename/create inside it is durable."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return  # platform without directory fds; rename atomicity still holds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class StoreIO:
    """Transparent I/O passthrough — the injection seam for disk faults.

    The store's writers call these instead of raw file methods at every
    durability event.  The default implementation is the production
    path; :class:`repro.faults.disk.FaultyStoreIO` overrides the same
    methods to tear writes, drop fsyncs, rot published bytes, and so on,
    under a deterministic schedule.

    ``flushed`` and ``published`` are observation hooks (no-ops here):
    they fire *after* a journal batch lands and *after* a file goes
    live, which is where sealed-data faults (``bit_rot``,
    ``missing_file``, ``duplicate_segment``) attach.
    """

    #: True when this IO can inject faults (lets callers log/guard).
    armed = False

    def write(self, handle: IO[bytes], data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: IO[bytes]) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def fsync_dir(self, path: str | Path) -> None:
        fsync_dir(path)

    def replace(self, src: str | Path, dst: str | Path, kind: str = "file") -> None:
        os.replace(src, dst)

    def flushed(self, handle: IO[bytes], path: Path, durable_end: int) -> None:
        """A journal batch just landed; ``[header, durable_end)`` is history."""

    def published(self, path: Path, kind: str = "file") -> None:
        """A file just went live under its final name."""

    def bind_clock(self, clock) -> None:
        """Receive the crawl's virtual clock (fault scheduling input)."""

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        return {}

    def restore_state(self, state: dict) -> None:
        pass


#: Shared passthrough instance — the unarmed production path.
DEFAULT_IO = StoreIO()


def publish_bytes(
    path: str | Path,
    data: bytes,
    *,
    kind: str = "file",
    durable: bool = True,
    io: StoreIO | None = None,
) -> Path:
    """Atomically publish ``data`` under ``path`` (see module docstring).

    ``durable=False`` skips both fsyncs — for files that are rewritten
    continuously and only need rename atomicity (live run reports).
    """
    io = io if io is not None else DEFAULT_IO
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        io.write(handle, data)
        handle.flush()
        if durable:
            io.fsync(handle)
    io.replace(tmp, path, kind=kind)
    if durable:
        io.fsync_dir(path.parent)
    io.published(path, kind=kind)
    return path


def publish_text(
    path: str | Path,
    text: str,
    *,
    kind: str = "file",
    durable: bool = True,
    io: StoreIO | None = None,
) -> Path:
    return publish_bytes(
        path, text.encode("utf-8"), kind=kind, durable=durable, io=io
    )
