"""``fsck`` for campaign directories: verify, classify, repair.

The store's crash-recovery contract (journal valid-prefix + sealed
segments + newest-verifiable checkpoint) survives process kills by
construction, but *disk* faults — bit rot, vanished files, lying fsyncs
— can damage what recovery trusts.  This module walks every durable
structure in a campaign directory, classifies each piece of damage, and
(with ``repair=True``) restores the directory to a state the campaign
can resume from, or proves that it cannot and accounts for exactly what
was lost.

Damage taxonomy
---------------
``recoverable_from_journal``
    The journal's valid prefix can regenerate the damaged bytes: a
    rotted or missing *segment* is rebuilt by replaying the journal's
    EDGES records (checkpoints record ``segment_counts`` so the replay
    slices back into byte-identical shards); a torn journal tail is
    truncated at the last whole record.
``quarantinable``
    The file carries no recoverable information but blocks or confuses
    resume: corrupt checkpoints, unsatisfiable checkpoints, stray
    ``*.tmp`` files, corrupt segments no usable checkpoint references.
    Repair moves them into ``quarantine/`` (never deletes).
``lost``
    Pages a checkpoint claims durable that no surviving journal prefix
    can reproduce.  Repair writes ``loss_manifest.json`` naming the
    exact lost page range; the status becomes ``unrecoverable``.

Guarantees
----------
* fsck on an undamaged directory is a **byte-level no-op**: no file is
  written, truncated, or created (not even ``quarantine/``).
* Repair is idempotent: a second ``fsck --repair`` finds nothing.
* Rebuilt segments are byte-identical to the originals (same writer,
  same bytes, CRC re-verified after rebuild).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import Registry, get_registry

from . import checkpoint as ckpt
from .atomio import publish_bytes
from .journal import (
    HEADER_SIZE,
    JournalError,
    iter_records,
    scan as scan_journal,
)
from .segments import (
    SegmentError,
    iter_segment_paths,
    read_segment,
    write_segment,
)

__all__ = [
    "FSCK_SCHEMA_VERSION",
    "Finding",
    "FsckReport",
    "LOSS_MANIFEST_NAME",
    "QUARANTINE_DIR",
    "fsck",
]

FSCK_SCHEMA_VERSION = 1
QUARANTINE_DIR = "quarantine"
LOSS_MANIFEST_NAME = "loss_manifest.json"

# Layout names, duplicated from campaign.py to keep this module
# importable without the crawler stack (campaign pulls in bfs/platform).
_JOURNAL_NAME = "journal.wal"
_SEGMENTS_DIR = "segments"
_CHECKPOINTS_DIR = "checkpoints"
_KIND_PAGE = 1
_KIND_EDGES = 2


@dataclass
class Finding:
    """One piece of damage: where, what, how bad, what repair does."""

    path: str  #: relative to the campaign directory
    kind: str  #: "journal" | "segment" | "checkpoint" | "stray"
    problem: str  #: e.g. "torn_tail", "crc_mismatch", "missing", "stray_tmp"
    severity: str  #: "recoverable_from_journal" | "quarantinable" | "lost"
    action: str  #: "truncate" | "rebuild" | "quarantine" | "manifest" | "none"
    detail: str = ""
    repaired: bool = False

    def to_json_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "problem": self.problem,
            "severity": self.severity,
            "action": self.action,
            "detail": self.detail,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Schema-versioned result of one fsck pass."""

    directory: str
    status: str = "clean"  #: clean | needs-repair | repaired | unrecoverable
    repair: bool = False
    scrub: bool = False
    findings: list[Finding] = field(default_factory=list)
    #: Sequence of the newest checkpoint the surviving data satisfies.
    chosen_checkpoint: int | None = None
    #: Pages the newest *verifiable* checkpoint claims were durable.
    n_pages_claimed: int = 0
    #: Pages the chosen cut actually reproduces.
    n_pages_recovered: int = 0
    #: Inclusive ``[first, last]`` lost page ordinals, or ``None``.
    lost_page_range: list[int] | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("clean", "repaired")

    def to_json_dict(self) -> dict:
        return {
            "schema": FSCK_SCHEMA_VERSION,
            "directory": self.directory,
            "status": self.status,
            "repair": self.repair,
            "scrub": self.scrub,
            "chosen_checkpoint": self.chosen_checkpoint,
            "n_pages_claimed": self.n_pages_claimed,
            "n_pages_recovered": self.n_pages_recovered,
            "lost_page_range": (
                list(self.lost_page_range) if self.lost_page_range else None
            ),
            "findings": [f.to_json_dict() for f in self.findings],
        }


# -- journal examination -------------------------------------------------------

@dataclass
class _JournalFacts:
    exists: bool = False
    readable: bool = False
    valid_end: int = HEADER_SIZE
    torn_bytes: int = 0
    #: (end_offset, pages so far, edges so far) per valid record.
    boundaries: list[tuple[int, int, int]] = field(default_factory=list)

    def counts_at(self, offset: int) -> tuple[int, int] | None:
        """(n_pages, n_edges) replayed by the prefix ending at ``offset``.

        ``None`` when ``offset`` is not a record boundary within the
        valid prefix — a checkpoint pointing there is unsatisfiable.
        """
        if offset == HEADER_SIZE:
            return (0, 0)
        for end, pages, edges in self.boundaries:
            if end == offset:
                return (pages, edges)
        return None


def _examine_journal(path: Path) -> _JournalFacts:
    facts = _JournalFacts()
    if not path.exists():
        return facts
    facts.exists = True
    try:
        journal_scan = scan_journal(path)
    except (OSError, JournalError):
        return facts  # unreadable: bad magic or I/O error
    facts.readable = True
    facts.valid_end = journal_scan.valid_end
    facts.torn_bytes = journal_scan.torn_bytes
    pages = edges = 0
    for rec in iter_records(path):
        if rec.kind == _KIND_PAGE:
            pages += 1
        elif rec.kind == _KIND_EDGES:
            edges += len(rec.body) // 16  # (n, 2) int64 pairs
        facts.boundaries.append((rec.end_offset, pages, edges))
    return facts


# -- segment examination -------------------------------------------------------

@dataclass
class _SegmentFacts:
    name: str
    healthy: bool
    n_edges: int | None  #: from a full verified read; None when corrupt
    problem: str = ""


def _examine_segments(seg_dir: Path) -> dict[str, _SegmentFacts]:
    out: dict[str, _SegmentFacts] = {}
    for path in iter_segment_paths(seg_dir):
        try:
            sources, _targets = read_segment(path)
            out[path.name] = _SegmentFacts(path.name, True, len(sources))
        except (OSError, SegmentError) as exc:
            out[path.name] = _SegmentFacts(
                path.name, False, None, problem=str(exc)
            )
    return out


# -- repair helpers ------------------------------------------------------------

def _quarantine(directory: Path, rel_path: str) -> str:
    """Move one file into ``quarantine/`` (never delete); returns dest."""
    src = directory / rel_path
    dest = directory / QUARANTINE_DIR / rel_path
    dest.parent.mkdir(parents=True, exist_ok=True)
    final = dest
    suffix = 0
    while final.exists():
        suffix += 1
        final = dest.with_name(f"{dest.name}.{suffix}")
    src.rename(final)
    return str(final.relative_to(directory))


def _replay_edges(journal_path: Path, upto: int) -> tuple[np.ndarray, np.ndarray]:
    """All edges the journal's prefix up to ``upto`` carries, in order."""
    chunks: list[np.ndarray] = []
    for rec in iter_records(journal_path, upto=upto):
        if rec.kind == _KIND_EDGES:
            chunks.append(np.frombuffer(rec.body, dtype="<i8").reshape(-1, 2))
    if not chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    pairs = np.concatenate(chunks)
    return (
        pairs[:, 0].astype(np.int64, copy=False),
        pairs[:, 1].astype(np.int64, copy=False),
    )


def _segment_slices(record: ckpt.CheckpointRecord) -> dict[str, tuple[int, int]]:
    """``name -> (row_start, row_end)`` into the journal's edge replay."""
    assert record.segment_counts is not None
    slices: dict[str, tuple[int, int]] = {}
    start = 0
    for name, count in zip(record.segments, record.segment_counts):
        slices[name] = (start, start + count)
        start += count
    return slices


# -- the fsck pass -------------------------------------------------------------

def fsck(
    directory: str | Path,
    repair: bool = False,
    scrub: bool = False,
    registry: Registry | None = None,
) -> FsckReport:
    """Verify a campaign directory; optionally repair it.

    ``scrub`` additionally cross-checks every *healthy* referenced
    segment's contents against the journal replay — catching damage that
    preserved the CRC (or a CRC computed over already-rotted bytes).
    """
    directory = Path(directory)
    registry = registry if registry is not None else get_registry()
    m_runs = registry.counter("store.fsck.runs", "fsck passes", labels=("status",))
    m_findings = registry.counter(
        "store.fsck.findings", "fsck findings", labels=("severity",)
    )
    m_repairs = registry.counter(
        "store.fsck.repairs", "fsck repair actions applied", labels=("action",)
    )
    m_lost = registry.counter(
        "store.fsck.lost_pages", "Pages fsck proved unrecoverable"
    )

    report = FsckReport(directory=str(directory), repair=repair, scrub=scrub)
    journal_path = directory / _JOURNAL_NAME
    seg_dir = directory / _SEGMENTS_DIR
    ckpt_dir = directory / _CHECKPOINTS_DIR

    journal = _examine_journal(journal_path)
    segments = _examine_segments(seg_dir)

    # Stray temp files: a kill mid-publish leaves `<name>.<pid>.tmp`
    # next to the target.  Never trusted, always quarantined.
    for sub in (directory, seg_dir, ckpt_dir):
        if not sub.is_dir():
            continue
        for tmp in sorted(sub.glob("*.tmp")):
            report.findings.append(Finding(
                path=str(tmp.relative_to(directory)),
                kind="stray",
                problem="stray_tmp",
                severity="quarantinable",
                action="quarantine",
                detail="half-published temp file left by a kill",
            ))

    if journal.exists and not journal.readable:
        report.findings.append(Finding(
            path=_JOURNAL_NAME,
            kind="journal",
            problem="bad_magic",
            severity="lost",
            action="quarantine",
            detail="journal header unreadable; no prefix can be trusted",
        ))
    elif journal.readable and journal.torn_bytes:
        report.findings.append(Finding(
            path=_JOURNAL_NAME,
            kind="journal",
            problem="torn_tail",
            severity="recoverable_from_journal",
            action="truncate",
            detail=(
                f"{journal.torn_bytes} bytes past the last whole record "
                f"at offset {journal.valid_end}"
            ),
        ))

    # Checkpoints: verify every file, keep the loadable records.
    valid: list[tuple[Path, ckpt.CheckpointRecord]] = []
    for path in ckpt.list_checkpoint_paths(ckpt_dir):
        try:
            valid.append((path, ckpt.load_checkpoint(path)))
        except ckpt.CheckpointError as exc:
            report.findings.append(Finding(
                path=str(path.relative_to(directory)),
                kind="checkpoint",
                problem="crc_mismatch",
                severity="quarantinable",
                action="quarantine",
                detail=str(exc),
            ))
    report.n_pages_claimed = max((r.n_pages for _, r in valid), default=0)

    # Cut selection, newest verifiable checkpoint first.  A cut is
    # satisfiable when the journal prefix replays exactly its page and
    # edge counts and every referenced segment is healthy with the
    # right count — or rebuildable from that same prefix.
    chosen: ckpt.CheckpointRecord | None = None
    rebuild_plan: list[str] = []
    for path, record in reversed(valid):
        usable, plan, why = _check_cut(record, journal, segments)
        if usable:
            chosen = record
            rebuild_plan = plan
            break
        report.findings.append(Finding(
            path=str(path.relative_to(directory)),
            kind="checkpoint",
            problem="unsatisfiable",
            severity="quarantinable",
            action="quarantine",
            detail=why,
        ))
    if chosen is not None:
        report.chosen_checkpoint = chosen.sequence
        report.n_pages_recovered = chosen.n_pages
        # Keep older checkpoints as-is: resume ignores them, and they
        # are honest fallbacks.  Only *newer* unsatisfiable ones (found
        # above, before `chosen` in the reversed walk) are quarantined.
        for name in rebuild_plan:
            facts = segments.get(name)
            if facts is None:
                problem, detail = "missing", (
                    "referenced by the chosen checkpoint; journal replay "
                    "regenerates it byte-identically"
                )
            elif facts.healthy:
                problem, detail = "wrong_length", (
                    f"CRC-clean but holds {facts.n_edges} edges, not what "
                    f"the checkpoint recorded"
                )
            else:
                problem, detail = "crc_mismatch", facts.problem
            report.findings.append(Finding(
                path=f"{_SEGMENTS_DIR}/{name}",
                kind="segment",
                problem=problem,
                severity="recoverable_from_journal",
                action="rebuild",
                detail=detail,
            ))

    # Corrupt segments the chosen cut does not cover carry nothing the
    # journal can't regenerate later, but their presence breaks the
    # segment writer's startup scan — quarantine them.
    referenced = set(chosen.segments) if chosen is not None else set()
    for name, facts in segments.items():
        if facts.healthy or name in referenced:
            continue
        report.findings.append(Finding(
            path=f"{_SEGMENTS_DIR}/{name}",
            kind="segment",
            problem="crc_mismatch",
            severity="quarantinable",
            action="quarantine",
            detail=facts.problem,
        ))

    # Scrub: the CRC can lie when rot landed before sealing (CRC of
    # rotted bytes) — compare healthy referenced segments to the
    # journal replay row-for-row.
    if scrub and chosen is not None and chosen.segment_counts is not None:
        sources, targets = _replay_edges(journal_path, chosen.journal_offset)
        for name, (lo, hi) in _segment_slices(chosen).items():
            facts = segments.get(name)
            if facts is None or not facts.healthy or name in rebuild_plan:
                continue
            seg_s, seg_t = read_segment(seg_dir / name)
            if not (
                np.array_equal(seg_s, sources[lo:hi])
                and np.array_equal(seg_t, targets[lo:hi])
            ):
                rebuild_plan.append(name)
                report.findings.append(Finding(
                    path=f"{_SEGMENTS_DIR}/{name}",
                    kind="segment",
                    problem="journal_mismatch",
                    severity="recoverable_from_journal",
                    action="rebuild",
                    detail="contents disagree with journal replay (CRC lied)",
                ))

    # Loss accounting: pages claimed by the newest verifiable checkpoint
    # that the chosen cut (or the empty store) cannot reproduce.
    n_cut = chosen.n_pages if chosen is not None else 0
    if report.n_pages_claimed > n_cut:
        report.lost_page_range = [n_cut + 1, report.n_pages_claimed]
        n_lost = report.n_pages_claimed - n_cut
        report.findings.append(Finding(
            path=_JOURNAL_NAME,
            kind="journal",
            problem="pages_unreproducible",
            severity="lost",
            action="manifest",
            detail=(
                f"pages {n_cut + 1}..{report.n_pages_claimed} were claimed "
                f"durable but no surviving journal prefix reproduces them"
            ),
        ))
        m_lost.inc(n_lost)

    # -- status + repair ------------------------------------------------------
    for finding in report.findings:
        m_findings.inc(severity=finding.severity)
    if not report.findings:
        report.status = "clean"
    elif report.lost_page_range is not None:
        report.status = "unrecoverable"
    else:
        report.status = "needs-repair"

    if repair and report.findings:
        _apply_repairs(directory, report, chosen, rebuild_plan, journal, m_repairs)
        if report.lost_page_range is None:
            report.status = "repaired"

    m_runs.inc(status=report.status)
    return report


def _check_cut(
    record: ckpt.CheckpointRecord,
    journal: _JournalFacts,
    segments: dict[str, _SegmentFacts],
) -> tuple[bool, list[str], str]:
    """Can the on-disk data satisfy this checkpoint?

    Returns ``(usable, segments_to_rebuild, reason_when_not)``.
    """
    if not journal.readable:
        return False, [], "journal missing or unreadable"
    if record.journal_offset > journal.valid_end:
        return False, [], (
            f"journal offset {record.journal_offset} beyond valid prefix "
            f"end {journal.valid_end}"
        )
    counts = journal.counts_at(record.journal_offset)
    if counts is None:
        return False, [], (
            f"journal offset {record.journal_offset} is not a record boundary"
        )
    if counts != (record.n_pages, record.n_edges):
        return False, [], (
            f"journal prefix replays {counts[0]} pages / {counts[1]} edges, "
            f"checkpoint expects {record.n_pages} / {record.n_edges}"
        )
    rebuild: list[str] = []
    expected = dict(
        zip(record.segments, record.segment_counts or [None] * len(record.segments))
    )
    for name, want in expected.items():
        facts = segments.get(name)
        if facts is not None and facts.healthy:
            if want is None or facts.n_edges == want:
                continue
            # CRC-clean but the wrong length (renamed/duplicated shard
            # landed under this name): the count is known, so rebuild.
            rebuild.append(name)
            continue
        if want is None:
            # Pre-segment_counts checkpoint: no way to slice the replay.
            return False, [], (
                f"segment {name} damaged and checkpoint records no "
                f"segment_counts to rebuild from"
            )
        rebuild.append(name)
    return True, rebuild, ""


def _apply_repairs(
    directory: Path,
    report: FsckReport,
    chosen: ckpt.CheckpointRecord | None,
    rebuild_plan: list[str],
    journal: _JournalFacts,
    m_repairs,
) -> None:
    journal_path = directory / _JOURNAL_NAME
    seg_dir = directory / _SEGMENTS_DIR

    # Rebuild before anything is moved: replay needs the journal as-is
    # (truncation below only touches bytes past every chosen offset).
    rebuilt: dict[str, str] = {}
    if chosen is not None and rebuild_plan:
        sources, targets = _replay_edges(journal_path, chosen.journal_offset)
        slices = _segment_slices(chosen)
        for name in rebuild_plan:
            lo, hi = slices[name]
            target = seg_dir / name
            if target.exists():
                # Preserve the damaged bytes for the postmortem.
                rebuilt[name] = _quarantine(
                    directory, f"{_SEGMENTS_DIR}/{name}"
                )
            write_segment(target, sources[lo:hi], targets[lo:hi])
            read_segment(target)  # re-verify: rebuild must round-trip
            m_repairs.inc(action="rebuild")

    for finding in report.findings:
        if finding.action == "truncate" and finding.problem == "torn_tail":
            os.truncate(journal_path, journal.valid_end)
            finding.repaired = True
            m_repairs.inc(action="truncate")
        elif finding.action == "quarantine":
            src = directory / finding.path
            if src.exists():
                dest = _quarantine(directory, finding.path)
                finding.detail += f"; moved to {dest}"
            finding.repaired = True
            m_repairs.inc(action="quarantine")
        elif finding.action == "rebuild":
            qpath = rebuilt.get(Path(finding.path).name)
            if qpath:
                finding.detail += f"; damaged original kept at {qpath}"
            finding.repaired = True
        elif finding.action == "manifest":
            finding.repaired = True

    if report.lost_page_range is not None:
        manifest = {
            "schema": FSCK_SCHEMA_VERSION,
            "directory": str(directory),
            "claimed_pages": report.n_pages_claimed,
            "recovered_pages": report.n_pages_recovered,
            "lost_page_range": list(report.lost_page_range),
            "lost_pages": report.n_pages_claimed - report.n_pages_recovered,
            "chosen_checkpoint": report.chosen_checkpoint,
            "findings": [f.to_json_dict() for f in report.findings],
        }
        publish_bytes(
            directory / LOSS_MANIFEST_NAME,
            (json.dumps(manifest, indent=2) + "\n").encode("utf-8"),
            kind="manifest",
        )
        m_repairs.inc(action="manifest")
