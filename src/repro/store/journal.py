"""Append-only CRC-checked write-ahead journal.

The journal is the durability backbone of a crawl campaign
(:mod:`repro.store.campaign`): every page fetched and every batch of
edges emitted is appended as one record, so after a crash the campaign
loses at most the records that were still sitting in the write buffer —
never a *corrupt* prefix.

Format
------
A journal file is a 6-byte magic header followed by records::

    header  := b"RWAL1\\n"
    record  := <u32 length> <u32 crc32(payload)> <payload: length bytes>
    payload := <u8 kind> <body: length-1 bytes>

Integers are little-endian; the CRC covers the payload only.  Record
kinds are small ints owned by the caller (see the ``KIND_*`` constants
in :mod:`repro.store.campaign`).

Recovery
--------
:func:`scan` walks records from the start and stops at the first one
whose length field overruns the file or whose CRC mismatches — the torn
tail a kill can leave behind.  Everything before that point is valid by
construction (records are written strictly append-only); everything
from it on is dropped when a :class:`JournalWriter` reopens the file.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import Registry, get_registry

from .atomio import DEFAULT_IO, StoreIO, fsync_dir

__all__ = [
    "MAGIC",
    "HEADER_SIZE",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "iter_records",
    "scan",
]

MAGIC = b"RWAL1\n"

#: Size of the file header — also the offset of an empty journal's end.
HEADER_SIZE = len(MAGIC)

_RECORD_HEADER = struct.Struct("<II")


class JournalError(Exception):
    """The file is not a journal (bad magic) or the API was misused."""


@dataclass(frozen=True)
class JournalRecord:
    """One decoded record plus the offset of its on-disk header."""

    kind: int
    body: bytes
    offset: int

    @property
    def end_offset(self) -> int:
        """Offset of the first byte after this record."""
        return self.offset + _RECORD_HEADER.size + 1 + len(self.body)


@dataclass
class JournalScan:
    """Result of measuring a journal's valid prefix."""

    valid_end: int
    n_records: int
    torn_bytes: int
    records_by_kind: dict[int, int] = field(default_factory=dict)

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def iter_records(path: str | Path, upto: int | None = None) -> Iterator[JournalRecord]:
    """Yield valid records in order, stopping at the torn tail.

    ``upto`` bounds the walk to records starting before that byte offset
    — pass a checkpoint's journal offset to replay exactly the records
    the checkpoint covers.
    """
    with open(path, "rb") as handle:
        magic = handle.read(HEADER_SIZE)
        if magic != MAGIC:
            raise JournalError(f"{path}: not a journal file (bad magic)")
        offset = HEADER_SIZE
        while True:
            if upto is not None and offset >= upto:
                return
            header = handle.read(_RECORD_HEADER.size)
            if len(header) < _RECORD_HEADER.size:
                return
            length, crc = _RECORD_HEADER.unpack(header)
            if length < 1:
                return
            payload = handle.read(length)
            if len(payload) < length:
                return
            if zlib.crc32(payload) != crc:
                return
            yield JournalRecord(kind=payload[0], body=payload[1:], offset=offset)
            offset += _RECORD_HEADER.size + length


def scan(path: str | Path) -> JournalScan:
    """Measure the valid prefix of a journal (recovery's first step)."""
    size = Path(path).stat().st_size
    valid_end = HEADER_SIZE
    n_records = 0
    by_kind: dict[int, int] = {}
    for record in iter_records(path):
        n_records += 1
        by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        valid_end = record.end_offset
    return JournalScan(
        valid_end=valid_end,
        n_records=n_records,
        torn_bytes=size - valid_end,
        records_by_kind=by_kind,
    )


class JournalWriter:
    """Batched appender with crash recovery on open.

    Appends are buffered and written out once the batch reaches
    ``flush_records`` records or ``flush_bytes`` bytes (or on an
    explicit :meth:`flush`, which checkpoints use to pin a durable
    offset).  Opening an existing journal scans it and truncates any
    torn tail, so the writer always appends at a record boundary.

    ``fsync=True`` additionally fsyncs every flush — durability against
    OS crashes at the price of one syscall per batch; the default
    survives process kills, which is what the simulated campaigns need.
    """

    def __init__(
        self,
        path: str | Path,
        flush_records: int = 64,
        flush_bytes: int = 256 * 1024,
        fsync: bool = False,
        registry: Registry | None = None,
        io: StoreIO | None = None,
    ):
        self.path = Path(path)
        self._flush_records = max(1, flush_records)
        self._flush_bytes = max(1, flush_bytes)
        self._fsync = fsync
        self._io = io if io is not None else DEFAULT_IO
        self._buffer: list[bytes] = []
        self._buffered_bytes = 0
        self._appended = False
        registry = registry if registry is not None else get_registry()
        self._m_bytes = registry.counter(
            "store.journal_bytes", "Journal bytes flushed to disk"
        )
        self._m_records = registry.counter(
            "store.journal_records", "Journal records appended", labels=("kind",)
        )
        self._m_flushes = registry.counter(
            "store.journal_flushes", "Journal batch flushes"
        )
        self._m_truncated = registry.counter(
            "store.journal_truncated_bytes", "Torn-tail bytes dropped on recovery"
        )
        if self.path.exists() and self.path.stat().st_size >= HEADER_SIZE:
            self.recovery: JournalScan | None = scan(self.path)
            if self.recovery.torn_bytes:
                os.truncate(self.path, self.recovery.valid_end)
                self._m_truncated.inc(self.recovery.torn_bytes)
            self._handle = open(self.path, "r+b")
            self.offset = self.recovery.valid_end
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.recovery = None
            self._handle = open(self.path, "wb")
            self._handle.write(MAGIC)
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            # Make the journal's *existence* durable regardless: a lost
            # dirent would orphan every checkpoint that references it.
            fsync_dir(self.path.parent)
            self.offset = HEADER_SIZE

    def truncate_to(self, offset: int) -> None:
        """Roll back to a known-good record boundary (checkpoint offset).

        Only legal before the first append — this is the resume-time
        rollback of records written after the last usable checkpoint.
        """
        if self._appended or self._buffer:
            raise JournalError("truncate_to is only legal before appending")
        if not HEADER_SIZE <= offset <= self.offset:
            raise ValueError(f"offset {offset} outside journal [{HEADER_SIZE}, {self.offset}]")
        self._handle.seek(offset)
        self._handle.truncate()
        self.offset = offset

    def append(self, kind: int, body: bytes) -> None:
        """Buffer one record; flushes automatically at the batch limits."""
        if not 0 <= kind <= 255:
            raise ValueError("record kind must fit one byte")
        payload = bytes([kind]) + bytes(body)
        record = _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._buffer.append(record)
        self._buffered_bytes += len(record)
        self._appended = True
        self._m_records.inc(kind=kind)
        if (
            len(self._buffer) >= self._flush_records
            or self._buffered_bytes >= self._flush_bytes
        ):
            self.flush()

    def flush(self) -> None:
        """Write the buffered batch out; ``offset`` then covers it."""
        if not self._buffer:
            return
        blob = b"".join(self._buffer)
        self._handle.seek(self.offset)
        # Routed through the StoreIO seam: an injected fault raises here
        # with the buffer intact (an honest crash can retry or die), and
        # a torn write leaves exactly the prefix a real kill would.
        self._io.write(self._handle, blob)
        self._handle.flush()
        if self._fsync:
            self._io.fsync(self._handle)
        durable_end = self.offset
        self.offset += len(blob)
        self._buffer.clear()
        self._buffered_bytes = 0
        self._m_bytes.inc(len(blob))
        self._m_flushes.inc()
        # Post-flush hook: sealed-history faults (journal bit rot, the
        # file vanishing) attach to [HEADER_SIZE, durable_end).
        self._io.flushed(self._handle, self.path, durable_end)

    def close(self) -> None:
        self.flush()
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
