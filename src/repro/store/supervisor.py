"""Crash supervisor: keep a campaign running until it finishes — or
prove it cannot.

The supervisor runs ``python -m repro.store resume`` in a *child
process* and watches it from outside, the way an init system watches a
daemon: the child is free to die in every way the chaos layers can
arrange (SIGKILL, injected disk faults, simulated crashes, hangs) and
the supervisor's only job is to classify each death and act on the
:mod:`repro.store.exitcodes` taxonomy:

* ``ok`` — the campaign completed; one final ``fsck`` must come back
  clean before the supervisor calls the whole run ``complete``.
* ``resumable`` / ``killed`` / ``corrupt`` / ``stalled`` — run
  ``fsck --repair``, wait out a decorrelated-jitter backoff, respawn.
* ``unrecoverable`` — fsck proved data loss; stop immediately (unless
  ``allow_data_loss``) with ``loss_manifest.json`` naming exactly the
  lost page range.
* ``fatal`` — an unclassified failure (traceback, usage error); not
  worth retrying, stop as ``failed``.

Liveness is tracked through the campaign's ``heartbeat.json``
(re-written every :data:`~repro.store.campaign.HEARTBEAT_EVERY_PAGES`
pages): a child whose heartbeat goes stale past
``heartbeat_timeout`` wall-seconds is declared stalled and SIGKILL'd —
which the journal is built to survive, so a stall costs one restart,
never data.

``fsck --repair`` runs before *every* spawn, so the child always opens
a verified store: rotted segments have been rebuilt, torn tails
truncated, corrupt checkpoints quarantined.  The headline guarantee
follows: under any mix of network chaos, kills, and scripted disk
faults, a supervised campaign either completes with a bit-identical
dataset (whenever the journal survives) or halts with a machine-
readable account of exactly what was lost.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import Registry, get_registry

from .atomio import publish_bytes
from .doctor import FsckReport, fsck
from .exitcodes import classify

__all__ = [
    "CampaignSupervisor",
    "SUPERVISE_REPORT_NAME",
    "SuperviseOutcome",
    "SupervisorConfig",
]

SUPERVISE_REPORT_NAME = "supervise_report.json"
_HEARTBEAT_NAME = "heartbeat.json"  # mirrors campaign.HEARTBEAT_NAME


@dataclass
class SupervisorConfig:
    """Knobs for one supervised campaign."""

    #: Give up after this many respawns (the first spawn is free).
    max_restarts: int = 16
    #: Wall-seconds of heartbeat silence before the child is declared
    #: stalled and SIGKILL'd.  Generous: the child also goes quiet
    #: during world generation and journal replay at startup.
    heartbeat_timeout: float = 60.0
    #: How often the watchdog samples the child and its heartbeat.
    poll_interval: float = 0.25
    #: Decorrelated-jitter backoff between respawns (wall seconds):
    #: ``sleep = min(cap, uniform(base, prev * 3))``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Seeds the backoff jitter so supervised runs are reproducible.
    seed: int = 0
    #: Proceed past proven data loss (resume from the best surviving
    #: cut, or from scratch) instead of halting unrecoverable.
    allow_data_loss: bool = False
    #: Interpreter for the child; defaults to this one.
    python: str | None = None


@dataclass
class SuperviseOutcome:
    """What one supervised run amounted to."""

    outcome: str  #: complete | unrecoverable | gave-up | failed
    attempts: list[dict] = field(default_factory=list)
    restarts: int = 0
    final_fsck: FsckReport | None = None

    @property
    def completed(self) -> bool:
        return self.outcome == "complete"

    def to_json_dict(self) -> dict:
        return {
            "schema": 1,
            "outcome": self.outcome,
            "restarts": self.restarts,
            "attempts": self.attempts,
            "final_fsck": (
                self.final_fsck.to_json_dict() if self.final_fsck else None
            ),
        }


class CampaignSupervisor:
    """Respawn-until-done driver for one campaign directory.

    ``child_args`` is appended to the child's ``resume`` command line —
    tests use it to re-arm ``--kill-after-pages`` on every incarnation.
    """

    def __init__(
        self,
        directory: str | Path,
        config: SupervisorConfig | None = None,
        child_args: list[str] | None = None,
        registry: Registry | None = None,
    ):
        self.directory = Path(directory)
        self.config = config if config is not None else SupervisorConfig()
        self.child_args = list(child_args or [])
        self.registry = registry if registry is not None else get_registry()
        self._rng = np.random.default_rng(self.config.seed)
        self._m_spawns = self.registry.counter(
            "supervisor.spawns", "Campaign child processes spawned"
        )
        self._m_stalls = self.registry.counter(
            "supervisor.stalls", "Children SIGKILL'd for a stale heartbeat"
        )
        self._m_exits = self.registry.counter(
            "supervisor.child_exits", "Child exits by classified outcome",
            labels=("outcome",),
        )

    # -- child lifecycle -----------------------------------------------------

    def _spawn(self) -> subprocess.Popen:
        python = self.config.python or sys.executable
        cmd = [
            python, "-m", "repro.store", "resume", "--dir", str(self.directory),
        ] + self.child_args
        self._m_spawns.inc()
        return subprocess.Popen(
            cmd,
            env=os.environ.copy(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )

    def _heartbeat_age(self, spawned_at: float) -> float:
        try:
            beat = (self.directory / _HEARTBEAT_NAME).stat().st_mtime
        except OSError:
            beat = 0.0
        return time.time() - max(beat, spawned_at)

    def _watch(self, proc: subprocess.Popen, spawned_at: float) -> str:
        """Wait for the child; SIGKILL it when the heartbeat goes stale.

        Returns the classified outcome word.
        """
        cfg = self.config
        while True:
            try:
                proc.wait(timeout=cfg.poll_interval)
            except subprocess.TimeoutExpired:
                if self._heartbeat_age(spawned_at) > cfg.heartbeat_timeout:
                    proc.kill()
                    proc.wait()
                    self._m_stalls.inc()
                    return "stalled"
                continue
            return classify(proc.returncode)

    def _backoff(self, previous: float) -> float:
        cfg = self.config
        delay = min(
            cfg.backoff_cap,
            float(self._rng.uniform(cfg.backoff_base, max(previous * 3, cfg.backoff_base))),
        )
        time.sleep(delay)
        return delay

    # -- the supervision loop ------------------------------------------------

    def run(self) -> SuperviseOutcome:
        cfg = self.config
        result = SuperviseOutcome(outcome="gave-up")
        delay = cfg.backoff_base
        attempt = 0
        while attempt <= cfg.max_restarts:
            attempt += 1
            # The child must always open a verified store: repair first.
            pre = fsck(self.directory, repair=True, registry=self.registry)
            if pre.lost_page_range is not None and not cfg.allow_data_loss:
                result.outcome = "unrecoverable"
                result.attempts.append({
                    "attempt": attempt,
                    "fsck": pre.to_json_dict(),
                    "outcome": "unrecoverable",
                })
                result.final_fsck = pre
                break

            spawned_at = time.time()
            proc = self._spawn()
            outcome = self._watch(proc, spawned_at)
            stderr = b""
            if proc.stderr is not None:
                stderr = proc.stderr.read()
                proc.stderr.close()
            self._m_exits.inc(outcome=outcome)
            record = {
                "attempt": attempt,
                "exit_code": proc.returncode,
                "outcome": outcome,
                "wall_seconds": round(time.time() - spawned_at, 3),
                "fsck": pre.to_json_dict(),
            }
            if outcome == "fatal" and stderr:
                record["stderr_tail"] = stderr.decode("utf-8", "replace")[-2000:]
            result.attempts.append(record)

            if outcome == "ok":
                # Trust, then verify: a clean exit still has to survive a
                # full read-back before the run is called complete.
                post = fsck(self.directory, registry=self.registry)
                result.final_fsck = post
                if post.status == "clean":
                    result.outcome = "complete"
                    break
                record["outcome"] = "dirty-after-exit"
            elif outcome == "unrecoverable":
                result.outcome = "unrecoverable"
                break
            elif outcome == "fatal":
                result.outcome = "failed"
                break
            if attempt <= cfg.max_restarts:
                result.restarts += 1
                delay = self._backoff(delay)
        if result.outcome in ("failed", "gave-up"):
            # A child that died unclassified may have been the first to
            # notice real damage (e.g. the journal vanished mid-run and
            # only archiving touched it).  Settle the question: repair
            # what is repairable, and if loss is proven, say so — with
            # the manifest — rather than reporting a vague failure.
            post = fsck(self.directory, repair=True, registry=self.registry)
            result.final_fsck = post
            if post.lost_page_range is not None and not cfg.allow_data_loss:
                result.outcome = "unrecoverable"
        self._write_report(result)
        return result

    def _write_report(self, result: SuperviseOutcome) -> None:
        publish_bytes(
            self.directory / SUPERVISE_REPORT_NAME,
            (json.dumps(result.to_json_dict(), indent=2) + "\n").encode("utf-8"),
            kind="manifest",
            durable=False,
        )
