"""Durable crawl campaigns: WAL journal, edge segments, checkpoints.

The paper's crawl ran for weeks across a machine fleet; this package
gives the reproduction the same operational property — a crawl that can
be killed at any instant and resumed to a **bit-identical** dataset.

Layers (each usable standalone):

- :mod:`repro.store.atomio` — the fsync/rename discipline and the
  :class:`StoreIO` seam disk-fault injection composes into.
- :mod:`repro.store.journal` — append-only CRC-checked write-ahead log.
- :mod:`repro.store.segments` — sharded columnar edge files + compaction
  into the ``edges.npz`` archive format ``CrawlDataset.load`` reads.
- :mod:`repro.store.checkpoint` — atomic, self-verifying resume points.
- :mod:`repro.store.campaign` — ties them to the crawler's hook API.
- :mod:`repro.store.doctor` — ``fsck``: verify, classify, repair.
- :mod:`repro.store.supervisor` — respawn-until-done crash supervision.
- :mod:`repro.store.exitcodes` — the CLI exit-code taxonomy the
  supervisor's restart policy is built on.

CLI: ``python -m repro.store
{run,resume,supervise,fsck,inspect,compact,verify} ...``.
"""

from .atomio import StoreIO, fsync_dir, publish_bytes, publish_text
from .campaign import (
    CampaignConfig,
    CampaignError,
    CampaignStore,
    CorruptStoreError,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from .checkpoint import (
    CheckpointError,
    CheckpointRecord,
    load_checkpoint,
    load_latest,
    write_checkpoint,
)
from .doctor import Finding, FsckReport, fsck
from .exitcodes import (
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_RESUMABLE,
    EXIT_UNRECOVERABLE,
    EXIT_USAGE,
    classify,
)
from .journal import JournalError, JournalRecord, JournalScan, JournalWriter
from .segments import SegmentError, SegmentWriter, read_segment, write_segment
from .supervisor import CampaignSupervisor, SupervisorConfig

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignStore",
    "CampaignSupervisor",
    "CheckpointError",
    "CheckpointRecord",
    "CorruptStoreError",
    "CrawlCampaign",
    "EXIT_CORRUPT",
    "EXIT_OK",
    "EXIT_RESUMABLE",
    "EXIT_UNRECOVERABLE",
    "EXIT_USAGE",
    "Finding",
    "FsckReport",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "SegmentError",
    "SegmentWriter",
    "SimulatedCrash",
    "StoreIO",
    "SupervisorConfig",
    "classify",
    "dataset_diff",
    "fsck",
    "fsync_dir",
    "load_checkpoint",
    "load_latest",
    "publish_bytes",
    "publish_text",
    "read_segment",
    "write_checkpoint",
    "write_segment",
]
