"""Durable crawl campaigns: WAL journal, edge segments, checkpoints.

The paper's crawl ran for weeks across a machine fleet; this package
gives the reproduction the same operational property — a crawl that can
be killed at any instant and resumed to a **bit-identical** dataset.

Layers (each usable standalone):

- :mod:`repro.store.journal` — append-only CRC-checked write-ahead log.
- :mod:`repro.store.segments` — sharded columnar edge files + compaction
  into the ``edges.npz`` archive format ``CrawlDataset.load`` reads.
- :mod:`repro.store.checkpoint` — atomic, self-verifying resume points.
- :mod:`repro.store.campaign` — ties them to the crawler's hook API.

CLI: ``python -m repro.store {run,resume,inspect,compact,verify} ...``.
"""

from .campaign import (
    CampaignConfig,
    CampaignError,
    CampaignStore,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from .checkpoint import (
    CheckpointError,
    CheckpointRecord,
    load_checkpoint,
    load_latest,
    write_checkpoint,
)
from .journal import JournalError, JournalRecord, JournalScan, JournalWriter
from .segments import SegmentError, SegmentWriter, read_segment, write_segment

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignStore",
    "CheckpointError",
    "CheckpointRecord",
    "CrawlCampaign",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "SegmentError",
    "SegmentWriter",
    "SimulatedCrash",
    "dataset_diff",
    "load_checkpoint",
    "load_latest",
    "read_segment",
    "write_checkpoint",
    "write_segment",
]
