"""Out-of-core columnar world state: spilled circle arrays + edge segment.

A columnar world's dominant memory is the circle CSR — O(edges) target,
label and follower arrays (:class:`repro.platform.columnar.ColumnarCircles`).
This module spills those arrays to a directory and reloads them
memory-mapped, so a 1M–10M user world crawls with the OS paging circle
slices in on demand instead of holding every edge resident::

    spill/
      columns.json      # manifest: n, labels, per-array dtype/shape/CRC
      out_indptr.npy    # membership CSR (insertion order, labelled)
      out_targets.npy
      out_labels.npy
      flat_indptr.npy   # deduped contact CSR (absent when it aliases out_*)
      flat_targets.npy
      in_indptr.npy     # follower CSR
      in_sources.npy
      edges.rseg        # the deduped link list, RSEG1 (repro.store.segments)

Every file is published atomically (tmp → fsync → rename) through
:mod:`repro.store.atomio`, and the link list additionally rides the
CRC-checked ``RSEG1`` segment format — the exact bytes
:func:`repro.store.segments.read_segment` and campaign compaction
already understand, so spilled edges feed the analysis stack directly.

:func:`spill_service` is the one-call form: it spills a live
:class:`~repro.platform.columnar.ColumnarGooglePlusService`'s circles
and swaps the resident arrays for the memory-mapped views in place.
"""

from __future__ import annotations

import io as _io
import json
import zlib
from pathlib import Path

import numpy as np

from repro.platform.columnar import ColumnarCircles, ColumnarGooglePlusService

from .atomio import StoreIO, publish_bytes, publish_text
from .segments import SegmentError, segment_edge_count, write_segment

__all__ = [
    "EDGES_NAME",
    "MANIFEST_NAME",
    "SpillError",
    "load_circles",
    "spill_circles",
    "spill_service",
    "verify_spill",
]

MANIFEST_NAME = "columns.json"
EDGES_NAME = "edges.rseg"

#: The spilled arrays, in manifest order.  ``flat_*`` is omitted when it
#: aliases ``out_*`` (an ingest batch without duplicate pairs).
_CIRCLE_ARRAYS = (
    "out_indptr",
    "out_targets",
    "out_labels",
    "flat_indptr",
    "flat_targets",
    "in_indptr",
    "in_sources",
)


class SpillError(Exception):
    """A spill directory is missing files or inconsistent with its manifest."""


def _npy_bytes(array: np.ndarray) -> bytes:
    buf = _io.BytesIO()
    np.save(buf, np.ascontiguousarray(array))
    return buf.getvalue()


def spill_circles(
    circles: ColumnarCircles,
    directory: str | Path,
    io: StoreIO | None = None,
) -> Path:
    """Write the circle CSR to ``directory``; returns the manifest path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    flat_shares_out = circles.flat_targets is circles.out_targets
    arrays: dict[str, dict] = {}
    for name in _CIRCLE_ARRAYS:
        if flat_shares_out and name.startswith("flat_"):
            continue
        array = getattr(circles, name)
        blob = _npy_bytes(array)
        publish_bytes(directory / f"{name}.npy", blob, kind="column", io=io)
        arrays[name] = {
            "file": f"{name}.npy",
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "crc": zlib.crc32(blob),
        }
    n = len(circles.out_indptr) - 1
    link_sources = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(circles.flat_indptr)
    )
    write_segment(
        directory / EDGES_NAME,
        link_sources,
        circles.flat_targets.astype(np.int64, copy=False),
        io=io,
    )
    manifest = {
        "version": 1,
        "n": n,
        "labels": list(circles.labels),
        "flat_shares_out": flat_shares_out,
        "n_links": int(circles.flat_indptr[-1]),
        "arrays": arrays,
    }
    return publish_text(
        directory / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n", io=io
    )


def load_circles(directory: str | Path, mmap: bool = True) -> ColumnarCircles:
    """Reload spilled circles, memory-mapped by default.

    Structural checks (shapes, declared link count vs the segment
    header) always run; they read metadata only, preserving the lazy
    load.  Use :func:`verify_spill` for a full CRC pass.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise SpillError(f"{directory}: no {MANIFEST_NAME}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    loaded: dict[str, np.ndarray] = {}
    for name, meta in manifest["arrays"].items():
        path = directory / meta["file"]
        if not path.exists():
            raise SpillError(f"{directory}: missing column file {meta['file']}")
        array = np.load(path, mmap_mode="r" if mmap else None)
        if list(array.shape) != meta["shape"] or str(array.dtype) != meta["dtype"]:
            raise SpillError(
                f"{path}: expected {meta['dtype']}{meta['shape']}, "
                f"found {array.dtype}{list(array.shape)}"
            )
        loaded[name] = array
    if manifest["flat_shares_out"]:
        loaded["flat_indptr"] = loaded["out_indptr"]
        loaded["flat_targets"] = loaded["out_targets"]
    try:
        sealed = segment_edge_count(directory / EDGES_NAME)
    except (OSError, SegmentError) as exc:
        raise SpillError(f"{directory}: edge segment unreadable: {exc}") from exc
    if sealed != manifest["n_links"]:
        raise SpillError(
            f"{directory}: edge segment holds {sealed} links, "
            f"manifest declares {manifest['n_links']}"
        )
    return ColumnarCircles(labels=tuple(manifest["labels"]), **loaded)


def verify_spill(directory: str | Path) -> list[str]:
    """Full integrity pass over a spill directory ([] = clean).

    Reads every byte: per-array CRCs against the manifest and the edge
    segment's own CRC (via its reader).  Complements the structural
    checks :func:`load_circles` performs for free.
    """
    from .segments import read_segment

    directory = Path(directory)
    problems: list[str] = []
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return [f"{directory}: no {MANIFEST_NAME}"]
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for name, meta in manifest["arrays"].items():
        path = directory / meta["file"]
        if not path.exists():
            problems.append(f"{meta['file']}: missing")
            continue
        if zlib.crc32(path.read_bytes()) != meta["crc"]:
            problems.append(f"{meta['file']}: CRC mismatch")
    try:
        sources, targets = read_segment(directory / EDGES_NAME)
        if len(sources) != manifest["n_links"]:
            problems.append(
                f"{EDGES_NAME}: {len(sources)} links, manifest says "
                f"{manifest['n_links']}"
            )
    except (OSError, SegmentError) as exc:
        problems.append(f"{EDGES_NAME}: {exc}")
    return problems


def spill_service(
    service: ColumnarGooglePlusService,
    directory: str | Path,
    io: StoreIO | None = None,
) -> Path:
    """Spill a live columnar service's circles and remap them in place.

    After this call the service's circle/follower reads go through
    memory-mapped arrays — the resident CSR is released to the garbage
    collector and the OS pages edge slices in on demand.  Returns the
    manifest path.
    """
    world = service.columns()
    manifest = spill_circles(world.circles, directory, io=io)
    world.circles = load_circles(directory)
    return manifest
