"""Durable crawl campaigns: journal + segments + checkpoints + manifest.

The authors' crawl ran ~52 days across 11 machines — a campaign that
only works if progress is durable and a killed crawler resumes where it
stopped.  :class:`CampaignStore` implements the crawler's
:class:`~repro.crawler.bfs.CrawlHooks` against a campaign directory::

    campaign/
      manifest.json   # CampaignConfig + status (created/running/complete)
      journal.wal     # WAL of page/edge/stats records  (repro.store.journal)
      segments/       # sealed columnar edge shards     (repro.store.segments)
      checkpoints/    # verified resume points          (repro.store.checkpoint)
      archive/        # compacted CrawlDataset archive (edges.npz, ...)

Write path, per fetched page: append a PAGE record (the profile, through
the same JSON codecs the archive uses) and an EDGES record (the page's
new deduplicated edges, packed int64 pairs) to the journal, and stream
the edges into the segment writer.  At every checkpoint: flush the
journal, seal the segment buffer, and write a checkpoint pinning
(journal offset, segment list, control snapshot).

Recovery contract, on open: drop the journal's torn tail; pick the
newest checkpoint whose journal offset and segment list are actually
durable (CRC-verified, counts matching); roll journal and segments back
to exactly that cut; replay the journal's PAGE records into profiles and
the segments into edge arrays.  Because the control snapshot restores
the frontier, fleet counters, clock, rate-limiter buckets and failure
RNG bit-for-bit, the resumed crawl fetches the exact page sequence the
uninterrupted crawl would have — the resulting dataset is bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.crawler.bfs import (
    BidirectionalBFSCrawler,
    CrawlConfig,
    CrawlHooks,
    CrawlSnapshot,
    HookChain,
    ResumeState,
)
from repro.crawler.dataset import CrawlDataset, profile_from_json
from repro.crawler.dataset import profile_to_json as _profile_to_json
from repro.obs.metrics import Registry, get_registry, log_buckets

from . import checkpoint as ckpt
from .atomio import StoreIO, publish_text
from .journal import HEADER_SIZE, JournalWriter, iter_records, scan as scan_journal
from .segments import (
    SegmentError,
    SegmentWriter,
    iter_segment_paths,
    load_edges,
    segment_edge_count,
)

__all__ = [
    "ARCHIVE_DIR",
    "CHECKPOINTS_DIR",
    "CampaignConfig",
    "CampaignError",
    "CampaignStore",
    "CorruptStoreError",
    "CrawlCampaign",
    "HEARTBEAT_NAME",
    "JOURNAL_NAME",
    "KIND_DEADLETTER",
    "KIND_EDGES",
    "KIND_PAGE",
    "KIND_STATS",
    "MANIFEST_NAME",
    "SEGMENTS_DIR",
    "SimulatedCrash",
    "dataset_diff",
]

#: Journal record kinds (the u8 leading each payload).
KIND_PAGE = 1
KIND_EDGES = 2
KIND_STATS = 3
#: Audit trail of dead-letter traffic (a page entering the queue, or
#: being recovered by redrive).  Never replayed into state — the
#: authoritative queue lives in the checkpoint snapshot.
KIND_DEADLETTER = 4

KIND_NAMES = {
    KIND_PAGE: "page",
    KIND_EDGES: "edges",
    KIND_STATS: "stats",
    KIND_DEADLETTER: "dead_letter",
}

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.wal"
SEGMENTS_DIR = "segments"
CHECKPOINTS_DIR = "checkpoints"
ARCHIVE_DIR = "archive"
#: Wall-clock liveness file the supervisor watches (see
#: :mod:`repro.store.supervisor`); refreshed every
#: :data:`HEARTBEAT_EVERY_PAGES` pages and at every checkpoint.
HEARTBEAT_NAME = "heartbeat.json"
HEARTBEAT_EVERY_PAGES = 16


class CampaignError(Exception):
    """The campaign directory is unusable or was opened inconsistently."""


class CorruptStoreError(CampaignError):
    """Checkpoints exist but none is satisfiable — run fsck, don't reset.

    Distinct from the fresh-directory case (no checkpoint files at all,
    which legitimately starts from scratch): when resume points *exist*
    but the on-disk data cannot satisfy any of them, silently resetting
    would destroy the evidence a repair needs.  ``python -m repro.store
    fsck --repair`` quarantines/rebuilds what it can; the exit-code
    taxonomy in :mod:`repro.store.exitcodes` lets supervisors branch on
    this condition.
    """


class SimulatedCrash(RuntimeError):
    """Raised by the crash-injection hook (tests exercise kill/resume)."""


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to rebuild the same world + crawl deterministically.

    A campaign's config is frozen into ``manifest.json`` at creation;
    reopening with a different config is an error, because resuming
    under different parameters would silently diverge from the original
    page sequence.
    """

    n_users: int = 8_000
    seed: int = 5
    circle_display_limit: int = 10_000
    n_machines: int = 11
    request_latency: float = 0.02
    max_pages: int | None = None
    rate_per_ip: float = 200.0
    burst: float = 400.0
    error_rate: float = 0.0
    #: Checkpoint every N fetched pages (0 disables the page trigger).
    checkpoint_every_pages: int = 500
    #: Checkpoint every N seconds of *virtual* time (0 disables).
    checkpoint_every_virtual: float = 0.0
    shard_edges: int = 65_536
    keep_checkpoints: int = 3
    #: Fault scenario document (``repro.faults.FaultSchedule.from_dict``
    #: schema), frozen into the manifest like every other knob so a
    #: resumed campaign replays the exact same chaos.  None = clean run.
    faults: dict | None = None
    #: Overrides for :class:`~repro.crawler.bfs.CrawlConfig`'s resilience
    #: knobs (max_retries, max_backoff, retry_budget, breaker_*,
    #: parse_retries, max_redrive_rounds, ...).  None = defaults.
    resilience: dict | None = None
    #: Interactive traffic served alongside the crawl
    #: (:func:`repro.serve.build_traffic` schema: n_clients, seed, mix,
    #: cache, faults, ...).  Frozen into the manifest like every other
    #: knob; the load generator's state rides in the crawl checkpoints,
    #: so a killed mixed campaign resumes bit-identically.  None = the
    #: crawler has the site to itself.
    traffic: dict | None = None
    #: Disk-fault scenario document
    #: (:meth:`repro.faults.disk.DiskFaultSchedule.from_dict` schema),
    #: injected into the store's I/O paths via :class:`StoreIO`.  Frozen
    #: into the manifest so every resumed incarnation replays the same
    #: disk chaos.  None = the disk is trustworthy.
    disk_faults: dict | None = None
    #: World generation engine (``"reference"`` | ``"fast"``) — frozen so
    #: a resumed campaign rebuilds the identical world.
    engine: str = "reference"
    #: Service backing store (``"dict"`` | ``"columnar"``).  Columnar is
    #: what lets million-user campaigns fit in RAM (docs/storage.md);
    #: both stores rebuild state-identical worlds from the same seed.
    store: str = "dict"

    def to_json_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_json_dict(cls, data: dict) -> "CampaignConfig":
        return cls(**data)

    def crawl_config(self) -> CrawlConfig:
        resilience = dict(self.resilience) if self.resilience else {}
        return CrawlConfig(
            n_machines=self.n_machines,
            max_pages=self.max_pages,
            request_latency=self.request_latency,
            **resilience,
        )


def _select_checkpoint(directory: Path):
    """The newest checkpoint the on-disk data can actually satisfy.

    Returns ``(record | None, journal_scan | None)``.  A checkpoint is
    usable when it verifies (CRC), its journal offset lies within the
    journal's valid prefix, and every segment it references exists with
    counts summing to its edge total.
    """
    journal_path = directory / JOURNAL_NAME
    journal_scan = scan_journal(journal_path) if journal_path.exists() else None
    for path in reversed(ckpt.list_checkpoint_paths(directory / CHECKPOINTS_DIR)):
        try:
            record = ckpt.load_checkpoint(path)
        except ckpt.CheckpointError:
            continue
        if journal_scan is None or record.journal_offset > journal_scan.valid_end:
            continue
        try:
            sealed = sum(
                segment_edge_count(directory / SEGMENTS_DIR / name)
                for name in record.segments
            )
        except (OSError, SegmentError):
            continue
        if sealed != record.n_edges:
            continue
        return record, journal_scan
    return None, journal_scan


class CampaignStore(CrawlHooks):
    """The crawler hooks that persist a crawl into a campaign directory."""

    def __init__(
        self,
        directory: str | Path,
        config: CampaignConfig,
        registry: Registry | None = None,
        kill_after_pages: int | None = None,
        crash_after_pages: int | None = None,
        crash_after_checkpoints: int | None = None,
        hang_after_pages: int | None = None,
        io: StoreIO | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config
        #: The I/O seam every durability event routes through; the
        #: default passthrough is the production path, a
        #: :class:`~repro.faults.disk.FaultyStoreIO` injects disk chaos.
        self.io = io if io is not None else StoreIO()
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._m_checkpoints = registry.counter(
            "store.checkpoints", "Checkpoints written"
        )
        self._m_checkpoint_seconds = registry.histogram(
            "store.checkpoint_seconds",
            "Wall-clock time spent writing one checkpoint",
            buckets=log_buckets(0.0001, 2.0, 16),
        )
        self._m_recoveries = registry.counter(
            "store.recoveries", "Campaign opens that restored from a checkpoint"
        )
        self._m_replayed_pages = registry.counter(
            "store.replayed_pages", "Page records replayed from the journal on resume"
        )
        self._m_rolled_back = registry.counter(
            "store.rolled_back_records",
            "Journal records discarded to reach a consistent checkpoint",
        )
        self._m_dead_letters = registry.counter(
            "store.dead_letter_records",
            "Dead-letter audit records journaled, by event",
            labels=("event",),
        )
        #: Crash injection (tests / CI smoke): SIGKILL or raise after N
        #: pages fetched *by this process*, or right after checkpoint N.
        self.kill_after_pages = kill_after_pages
        self.crash_after_pages = crash_after_pages
        self.crash_after_checkpoints = crash_after_checkpoints
        #: Stall injection: stop making progress (without exiting) after
        #: N pages, so supervisor heartbeat-timeout detection can be
        #: exercised end to end.
        self.hang_after_pages = hang_after_pages
        self._pages_this_process = 0
        self._checkpoints_this_process = 0

        self.segments = SegmentWriter(
            self.directory / SEGMENTS_DIR,
            shard_edges=config.shard_edges,
            registry=registry,
            io=self.io,
        )
        self._resume, rollback_offset = self._recover()
        self.journal = JournalWriter(
            self.directory / JOURNAL_NAME, registry=registry, io=self.io
        )
        if rollback_offset is not None and rollback_offset < self.journal.offset:
            self.journal.truncate_to(rollback_offset)
        self._sequence = self._next_sequence()
        self._pages_since_checkpoint = 0
        self._last_checkpoint_virtual = (
            self._resume.snapshot.virtual_now if self._resume is not None else 0.0
        )
        self._beat()

    # -- liveness ------------------------------------------------------------

    def _beat(self) -> None:
        """Refresh the wall-clock heartbeat the supervisor watches.

        Deliberately *not* routed through the fault seam (the supervisor
        needs an honest liveness signal even while the simulated disk is
        dying) and best-effort: a failed heartbeat must never take the
        campaign down.
        """
        document = json.dumps(
            {
                "pid": os.getpid(),
                "unix": time.time(),
                "pages": self._pages_this_process,
            }
        )
        tmp = self.directory / (HEARTBEAT_NAME + ".tmp")
        try:
            tmp.write_text(document, encoding="utf-8")
            os.replace(tmp, self.directory / HEARTBEAT_NAME)
        except OSError:
            pass

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> tuple[ResumeState | None, int | None]:
        journal_path = self.directory / JOURNAL_NAME
        record, journal_scan = _select_checkpoint(self.directory)
        if record is None:
            if ckpt.list_checkpoint_paths(self.directory / CHECKPOINTS_DIR):
                # Resume points exist but none is satisfiable: refuse to
                # reset (that would delete the evidence fsck repairs
                # from) and hand the taxonomy a distinct failure.
                raise CorruptStoreError(
                    f"{self.directory}: checkpoints exist but none is satisfiable "
                    f"by the on-disk journal/segments; run "
                    f"`python -m repro.store fsck --dir {self.directory} --repair`"
                )
            # No resume point was ever written: reset to an empty campaign.
            self.segments.rollback([])
            if journal_scan is not None and journal_scan.n_records:
                self._m_rolled_back.inc(journal_scan.n_records)
            return None, (HEADER_SIZE if journal_scan is not None else None)
        self.segments.rollback(record.segments)
        profiles = {}
        for rec in iter_records(journal_path, upto=record.journal_offset):
            if rec.kind == KIND_PAGE:
                profile = profile_from_json(json.loads(rec.body.decode("utf-8")))
                profiles[profile.user_id] = profile
        if len(profiles) != record.n_pages:
            raise CampaignError(
                f"journal replays {len(profiles)} pages, checkpoint "
                f"{record.sequence} expects {record.n_pages}"
            )
        if journal_scan is not None:
            self._m_rolled_back.inc(
                max(0, journal_scan.n_records - self._count_records_upto(record))
            )
        sources, targets = load_edges(
            self.directory / SEGMENTS_DIR, names=record.segments
        )
        snapshot = CrawlSnapshot.from_json_dict(record.snapshot)
        self._m_recoveries.inc()
        self._m_replayed_pages.inc(len(profiles))
        resume = ResumeState(
            snapshot=snapshot,
            profiles=profiles,
            sources=sources.tolist(),
            targets=targets.tolist(),
        )
        return resume, record.journal_offset

    def _count_records_upto(self, record: ckpt.CheckpointRecord) -> int:
        return sum(
            1
            for _ in iter_records(
                self.directory / JOURNAL_NAME, upto=record.journal_offset
            )
        )

    def _next_sequence(self) -> int:
        paths = ckpt.list_checkpoint_paths(self.directory / CHECKPOINTS_DIR)
        if not paths:
            return 1
        last = paths[-1].stem  # "ckpt-000042"
        return int(last.split("-")[1]) + 1

    # -- CrawlHooks ----------------------------------------------------------

    def bind_clock(self, clock) -> None:
        # First hook the crawler calls — hands the virtual clock to the
        # fault seam so disk-fault windows run on crawl time.
        self.io.bind_clock(clock)

    def resume_state(self) -> ResumeState | None:
        return self._resume

    def on_page(self, user_id, profile, new_edges) -> None:
        body = json.dumps(_profile_to_json(profile), separators=(",", ":"))
        self.journal.append(KIND_PAGE, body.encode("utf-8"))
        if new_edges:
            packed = np.asarray(new_edges, dtype="<i8").tobytes()
            self.journal.append(KIND_EDGES, packed)
            self.segments.extend(new_edges)
        self._pages_since_checkpoint += 1
        self._pages_this_process += 1
        if self._pages_this_process % HEARTBEAT_EVERY_PAGES == 0:
            self._beat()
        if (
            self.hang_after_pages is not None
            and self._pages_this_process >= self.hang_after_pages
        ):
            # Stop beating and stop progressing — the injected stall the
            # supervisor must detect and SIGKILL.
            while True:
                time.sleep(3600)
        if (
            self.crash_after_pages is not None
            and self._pages_this_process >= self.crash_after_pages
        ):
            # Abandon buffers unflushed — an honest crash, minus the SIGKILL.
            raise SimulatedCrash(f"injected crash after {self._pages_this_process} pages")
        if (
            self.kill_after_pages is not None
            and self._pages_this_process >= self.kill_after_pages
        ):
            os.kill(os.getpid(), signal.SIGKILL)

    def _dead_letter_record(self, event: str, user_id: int, detail: dict) -> None:
        body = json.dumps(
            {"event": event, "user_id": int(user_id), **detail},
            separators=(",", ":"),
        )
        self.journal.append(KIND_DEADLETTER, body.encode("utf-8"))
        self._m_dead_letters.inc(event=event)

    def on_dead_letter(self, user_id, reason, virtual_now) -> None:
        self._dead_letter_record(
            "dead", user_id, {"reason": reason, "virtual_now": virtual_now}
        )

    def on_redrive(self, user_id, virtual_now) -> None:
        self._dead_letter_record("redriven", user_id, {"virtual_now": virtual_now})

    def should_checkpoint(self, n_pages: int, virtual_now: float) -> bool:
        every_pages = self.config.checkpoint_every_pages
        if every_pages and self._pages_since_checkpoint >= every_pages:
            return True
        every_virtual = self.config.checkpoint_every_virtual
        if every_virtual and virtual_now - self._last_checkpoint_virtual >= every_virtual:
            return True
        return False

    def on_checkpoint(self, snapshot: CrawlSnapshot) -> None:
        started = time.perf_counter()
        accounting = {
            "n_pages": snapshot.n_pages,
            "n_edges": snapshot.n_edges,
            "virtual_now": snapshot.virtual_now,
        }
        self.journal.append(
            KIND_STATS, json.dumps(accounting, separators=(",", ":")).encode("utf-8")
        )
        self.journal.flush()
        self.segments.seal()
        record = ckpt.CheckpointRecord(
            sequence=self._sequence,
            n_pages=snapshot.n_pages,
            n_edges=snapshot.n_edges,
            journal_offset=self.journal.offset,
            segments=self.segments.sealed_names(),
            snapshot=snapshot.to_json_dict(),
            segment_counts=self.segments.sealed_counts(),
        )
        ckpt.write_checkpoint(
            self.directory / CHECKPOINTS_DIR,
            record,
            keep=self.config.keep_checkpoints,
            io=self.io,
        )
        self._sequence += 1
        self._pages_since_checkpoint = 0
        self._last_checkpoint_virtual = snapshot.virtual_now
        self._checkpoints_this_process += 1
        self._beat()
        self._m_checkpoints.inc()
        self._m_checkpoint_seconds.observe(time.perf_counter() - started)
        if (
            self.crash_after_checkpoints is not None
            and self._checkpoints_this_process >= self.crash_after_checkpoints
        ):
            raise SimulatedCrash(
                f"injected crash after checkpoint {record.sequence}"
            )

    def on_finish(self, dataset: CrawlDataset) -> None:
        self.journal.close()


class CrawlCampaign:
    """A durable synthetic-world crawl campaign rooted at a directory.

    Creating one writes the manifest; reopening an existing directory
    loads (and enforces) the stored config.  :meth:`run` builds the
    world and crawls to completion, resuming automatically from the
    newest checkpoint — running and resuming are the same operation.
    """

    def __init__(self, directory: str | Path, config: CampaignConfig | None = None):
        self.directory = Path(directory)
        #: The :class:`~repro.serve.LoadGenerator` of the most recent
        #: :meth:`run`, when the config carries a ``traffic`` block.
        self.last_traffic = None
        manifest = self.directory / MANIFEST_NAME
        if manifest.exists():
            data = json.loads(manifest.read_text(encoding="utf-8"))
            stored = CampaignConfig.from_json_dict(data["config"])
            if config is not None and config != stored:
                raise CampaignError(
                    f"campaign at {self.directory} exists with a different config"
                )
            self.config = stored
            self.status = data.get("status", "created")
        else:
            self.config = config if config is not None else CampaignConfig()
            self.directory.mkdir(parents=True, exist_ok=True)
            self.status = "created"
            self._write_manifest()

    def _write_manifest(self) -> None:
        document = {
            "version": 1,
            "config": self.config.to_json_dict(),
            "status": self.status,
        }
        publish_text(
            self.directory / MANIFEST_NAME, json.dumps(document, indent=2) + "\n"
        )

    def run(
        self,
        registry: Registry | None = None,
        kill_after_pages: int | None = None,
        crash_after_pages: int | None = None,
        crash_after_checkpoints: int | None = None,
        hang_after_pages: int | None = None,
        live: object = None,
    ) -> CrawlDataset:
        """Run (or resume) the campaign to completion and archive it.

        ``live`` enables streaming telemetry: pass ``True`` for a
        default :class:`~repro.obs.live.LiveTelemetry` writing
        ``run_report.json`` into the campaign directory, or a
        pre-configured instance.  The telemetry rides behind the store
        on a :class:`~repro.crawler.bfs.HookChain` and consumes edge
        batches from sealed segments, so every figure it publishes
        describes durable data.
        """
        # Lazy import: inspect/compact must work without pulling in the
        # synthetic-world generator stack.
        from repro.faults import FaultSchedule
        from repro.synth import build_world, WorldConfig

        cfg = self.config
        world = build_world(
            WorldConfig(
                n_users=cfg.n_users,
                seed=cfg.seed,
                circle_display_limit=cfg.circle_display_limit,
                engine=cfg.engine,
                store=cfg.store,
            )
        )
        traffic = None
        if cfg.traffic:
            from repro.serve import EventClock, build_traffic

            # Swap in the event clock *before* the crawler's front end is
            # built, so both transports share it: the crawler's politeness
            # and backoff waits dispatch the due client requests at their
            # exact virtual times.
            clock = EventClock(world.clock.now())
            world.clock = clock
            traffic = build_traffic(
                world.service, clock, cfg.traffic, registry=registry
            )
        self.last_traffic = traffic
        faults = FaultSchedule.from_dict(cfg.faults) if cfg.faults else None
        frontend = world.frontend(
            rate_per_ip=cfg.rate_per_ip,
            burst=cfg.burst,
            error_rate=cfg.error_rate,
            faults=faults,
        )
        crawler = BidirectionalBFSCrawler(frontend, cfg.crawl_config())
        if traffic is not None:
            # The generator's full state (client RNGs, next-event times,
            # mutation log, cache metadata) rides in every crawl snapshot
            # and is restored on resume, after the world is rebuilt.
            crawler.extension_providers["serve"] = traffic.export_state

            def _restore_serve(state, _traffic=traffic):
                if state is not None:
                    _traffic.restore_state(state)

            crawler.extension_restorers["serve"] = _restore_serve
        disk_io = None
        if cfg.disk_faults:
            from repro.faults.disk import DiskFaultSchedule, FaultyStoreIO

            disk_schedule = DiskFaultSchedule.from_dict(cfg.disk_faults)
            disk_io = FaultyStoreIO(disk_schedule, registry=registry)
            # The schedule's RNG states ride in every checkpoint (like
            # the network fault RNGs and the traffic generator), so
            # repeated crash/resume cycles replay the same disk chaos.
            crawler.extension_providers["disk_faults"] = disk_schedule.export_state

            def _restore_disk(state, _schedule=disk_schedule):
                if state is not None:
                    _schedule.restore_state(state)

            crawler.extension_restorers["disk_faults"] = _restore_disk
        store = CampaignStore(
            self.directory,
            cfg,
            registry=registry,
            kill_after_pages=kill_after_pages,
            crash_after_pages=crash_after_pages,
            crash_after_checkpoints=crash_after_checkpoints,
            hang_after_pages=hang_after_pages,
            io=disk_io,
        )
        hooks: CrawlHooks = store
        if live:
            from repro.obs.live import LiveTelemetry
            from repro.obs.report import RUN_REPORT_FILENAME

            if live is True:
                live = LiveTelemetry(
                    self.directory / RUN_REPORT_FILENAME,
                    registry=registry,
                    # The store's checkpoint cadence pins every epoch to a
                    # durable (n_pages, n_edges) cut; no telemetry-driven
                    # checkpoints on top of it.
                    epoch_every_pages=0,
                    config={
                        "campaign_dir": str(self.directory),
                        **self.config.to_json_dict(),
                    },
                )
            if live.enabled:
                live.consume_seals(store.segments)
                if traffic is not None:
                    live.sections["serving"] = traffic.slo.section
                hooks = HookChain(store, live)
            # A disabled registry (REPRO_OBS=0) removes the observer
            # from the hot path entirely — not even a no-op in the
            # chain — so the kill switch really is free.
        self.status = "running"
        self._write_manifest()
        dataset = crawler.crawl([world.seed_user_id()], hooks=hooks)
        self.status = "complete"
        self._write_manifest()
        self.compact()
        return dataset

    def compact(self, out_dir: str | Path | None = None) -> Path:
        """Merge journal + segments into a ``CrawlDataset.load`` archive.

        Compacts *as of the newest usable checkpoint* — for a completed
        campaign that is the final state; mid-campaign it is the last
        consistent cut.
        """
        record, _ = _select_checkpoint(self.directory)
        if record is None:
            raise CampaignError(f"nothing to compact: {self.directory} has no checkpoint")
        out = Path(out_dir) if out_dir is not None else self.directory / ARCHIVE_DIR
        out.mkdir(parents=True, exist_ok=True)
        sources, targets = load_edges(
            self.directory / SEGMENTS_DIR, names=record.segments
        )
        np.savez_compressed(out / "edges.npz", sources=sources, targets=targets)
        with open(out / "profiles.jsonl", "w", encoding="utf-8") as handle:
            for rec in iter_records(
                self.directory / JOURNAL_NAME, upto=record.journal_offset
            ):
                if rec.kind == KIND_PAGE:
                    handle.write(rec.body.decode("utf-8") + "\n")
        stats = ckpt.stats_from_snapshot(record.snapshot, self.config.n_machines)
        with open(out / "stats.json", "w", encoding="utf-8") as handle:
            json.dump(vars(stats), handle)
        return out

    def inspect(self) -> dict:
        """Machine-readable status of the campaign directory."""
        report: dict = {
            "directory": str(self.directory),
            "status": self.status,
            "config": self.config.to_json_dict(),
        }
        journal_path = self.directory / JOURNAL_NAME
        if journal_path.exists():
            journal_scan = scan_journal(journal_path)
            report["journal"] = {
                "valid_bytes": journal_scan.valid_end,
                "torn_bytes": journal_scan.torn_bytes,
                "records": {
                    KIND_NAMES.get(kind, str(kind)): count
                    for kind, count in sorted(journal_scan.records_by_kind.items())
                },
            }
        segment_paths = iter_segment_paths(self.directory / SEGMENTS_DIR)
        report["segments"] = {
            "count": len(segment_paths),
            "edges": sum(segment_edge_count(p) for p in segment_paths),
        }
        checkpoints = []
        for path in ckpt.list_checkpoint_paths(self.directory / CHECKPOINTS_DIR):
            try:
                rec = ckpt.load_checkpoint(path)
            except ckpt.CheckpointError:
                checkpoints.append({"file": path.name, "corrupt": True})
                continue
            checkpoints.append(
                {
                    "file": path.name,
                    "sequence": rec.sequence,
                    "n_pages": rec.n_pages,
                    "n_edges": rec.n_edges,
                    "journal_offset": rec.journal_offset,
                }
            )
        report["checkpoints"] = checkpoints
        report["archive"] = (self.directory / ARCHIVE_DIR / "edges.npz").exists()
        return report


def dataset_diff(a: CrawlDataset, b: CrawlDataset) -> list[str]:
    """Human-readable differences between two datasets ([] = identical)."""
    problems: list[str] = []
    if not np.array_equal(a.sources, b.sources):
        problems.append(f"sources differ ({len(a.sources)} vs {len(b.sources)} edges)")
    if not np.array_equal(a.targets, b.targets):
        problems.append("targets differ")
    if a.profiles != b.profiles:
        only_a = a.profiles.keys() - b.profiles.keys()
        only_b = b.profiles.keys() - a.profiles.keys()
        changed = sum(
            1
            for uid in a.profiles.keys() & b.profiles.keys()
            if a.profiles[uid] != b.profiles[uid]
        )
        problems.append(
            f"profiles differ ({len(only_a)} extra, {len(only_b)} missing, "
            f"{changed} changed)"
        )
    if vars(a.stats) != vars(b.stats):
        problems.append(f"stats differ ({vars(a.stats)} vs {vars(b.stats)})")
    return problems
