"""Resilience primitives for the crawl fleet.

The authors' 46-day crawl survived throttling, bans, and outages by
treating server misbehaviour as the normal case.  This module provides
the deterministic building blocks the fleet uses to do the same on the
virtual clock:

* :class:`CircuitBreaker` — classic closed/open/half-open breaker, one
  per crawl machine, so a banned or flaky IP is quarantined instead of
  hammering the server.
* :class:`RetryBudget` — a per-campaign cap on fault-driven retries, so
  a hostile stretch degrades into dead letters rather than an unbounded
  retry storm.
* :class:`ResiliencePolicy` — the bundle of knobs (backoff, breaker,
  budget) that flows from :class:`repro.crawler.bfs.CrawlConfig` down to
  every fetcher.

Everything here is plain state + a seeded RNG where needed, with
``export_state``/``restore_state`` so checkpoint/resume stays
bit-identical under chaos (see ``docs/faults.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ResiliencePolicy",
    "RetryBudget",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open breaker on the virtual clock.

    ``failure_threshold`` consecutive transient failures open the
    breaker; after ``cooldown`` virtual seconds it half-opens and admits
    probe requests; ``probe_successes`` consecutive probe successes close
    it again, while any probe failure re-opens it for a fresh cooldown.

    The breaker never blocks by itself — :class:`~repro.crawler.workers.
    MachinePool` consults :meth:`allow` when routing and skips machines
    whose breaker refuses.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        probe_successes: int = 2,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if probe_successes < 1:
            raise ValueError("probe_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probe_successes = probe_successes
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_succeeded = 0
        #: Times the breaker has opened — a cheap health indicator that
        #: feeds the ``crawler.breaker_opens`` metric at publish time.
        self.opens = 0

    def state(self, now: float) -> str:
        """Current state, applying the open→half-open timeout transition."""
        if self._state == BREAKER_OPEN and now - self._opened_at >= self.cooldown:
            self._state = BREAKER_HALF_OPEN
            self._probes_succeeded = 0
        return self._state

    def allow(self, now: float) -> bool:
        """May this machine take a request at virtual time ``now``?"""
        return self.state(now) != BREAKER_OPEN

    def cooldown_remaining(self, now: float) -> float:
        """Virtual seconds until an open breaker will admit a probe."""
        if self.state(now) != BREAKER_OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.cooldown - now)

    def record_success(self, now: float) -> None:
        state = self.state(now)
        self._consecutive_failures = 0
        if state == BREAKER_HALF_OPEN:
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.probe_successes:
                self._state = BREAKER_CLOSED
                self._probes_succeeded = 0

    def record_failure(self, now: float) -> None:
        state = self.state(now)
        self._consecutive_failures += 1
        if state == BREAKER_HALF_OPEN or (
            state == BREAKER_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = BREAKER_OPEN
            self._opened_at = now
            self._probes_succeeded = 0
            self.opens += 1

    # -- checkpointing (see repro.store) ----------------------------------

    def export_state(self) -> dict:
        return {
            "state": self._state,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "probes_succeeded": self._probes_succeeded,
            "opens": self.opens,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        if state["state"] not in (BREAKER_CLOSED, BREAKER_OPEN, BREAKER_HALF_OPEN):
            raise ValueError(f"unknown breaker state {state['state']!r}")
        self._state = str(state["state"])
        self._consecutive_failures = int(state["consecutive_failures"])
        self._opened_at = float(state["opened_at"])
        self._probes_succeeded = int(state["probes_succeeded"])
        self.opens = int(state["opens"])


class RetryBudget:
    """A campaign-wide cap on fault-driven retries.

    Throttle (429) waits are free — they are ordinary backpressure — but
    every retry caused by an injected fault (503/403/408) spends one unit.
    When the budget runs dry, fetchers stop retrying and fail fast, which
    the crawl turns into dead letters instead of an abort.

    ``budget=None`` means unlimited (the default: chaos opt-in only).
    """

    def __init__(self, budget: int | None = None):
        if budget is not None and budget < 0:
            raise ValueError("budget must be >= 0 (or None for unlimited)")
        self.budget = budget
        self.spent = 0

    @property
    def remaining(self) -> int | None:
        if self.budget is None:
            return None
        return max(0, self.budget - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.budget is not None and self.spent >= self.budget

    def spend(self, n: int = 1) -> bool:
        """Try to spend ``n`` units; False (and nothing spent) when dry."""
        if self.budget is not None and self.spent + n > self.budget:
            return False
        self.spent += n
        return True

    def export_state(self) -> dict:
        return {"budget": self.budget, "spent": self.spent}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        budget = state["budget"]
        self.budget = None if budget is None else int(budget)
        self.spent = int(state["spent"])


@dataclass(frozen=True)
class ResiliencePolicy:
    """The fleet's resilience knobs, flowed from ``CrawlConfig``.

    ``backoff_seed`` seeds each fetcher's decorrelated-jitter RNG
    (combined with a stable per-IP salt), keeping retry timing — and
    therefore the whole virtual timeline — deterministic per seed.
    """

    max_retries: int = 6
    initial_backoff: float = 0.5
    max_backoff: float = 8.0
    backoff_seed: int = 0
    retry_budget: int | None = None
    breaker_failure_threshold: int = 5
    breaker_cooldown: float = 1.0
    breaker_probe_successes: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.initial_backoff <= 0:
            raise ValueError("initial_backoff must be positive")
        if self.max_backoff < self.initial_backoff:
            raise ValueError("max_backoff must be >= initial_backoff")

    def make_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.breaker_failure_threshold,
            cooldown=self.breaker_cooldown,
            probe_successes=self.breaker_probe_successes,
        )

    def make_budget(self) -> RetryBudget:
        return RetryBudget(self.retry_budget)
