"""Parsing of fetched profile pages into crawl records.

The authors scraped HTML profile pages; our simulated service serves
structured :class:`~repro.platform.pages.ProfilePage` documents, and this
module plays the role of the scraper's extraction layer: it turns a page
into a :class:`ParsedProfile` — the unit stored in the crawl dataset —
pulling out the public fields, the declared circle-list counts and the
(possibly truncated) neighbor lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.platform.models import ContactInfo, Gender, Place, Relationship
from repro.platform.pages import ProfilePage


class PageParseError(Exception):
    """A fetched page document was malformed, truncated, or empty.

    The typed failure the extraction layer raises for every corrupt
    document shape the fault layer can inject (see
    :data:`repro.faults.CORRUPTION_MODES`) — never a bare ``KeyError`` /
    ``AttributeError`` / ``IndexError``.  The crawler treats it as a
    transient page-level failure: refetch, then dead-letter.
    """


@dataclass(frozen=True)
class ParsedProfile:
    """One crawled profile: public fields plus circle-list observations.

    ``in_list`` / ``out_list`` are the user ids shown on the page (capped
    at the display limit); ``declared_in`` / ``declared_out`` are the true
    counts the page reports. ``None`` lists mean the owner hid them.
    """

    user_id: int
    name: str
    fields: dict[str, Any] = field(default_factory=dict)
    in_list: tuple[int, ...] | None = None
    out_list: tuple[int, ...] | None = None
    declared_in: int = 0
    declared_out: int = 0

    def has_field(self, key: str) -> bool:
        return key == "name" or key in self.fields

    def count_fields(self, include_contacts: bool = False) -> int:
        """Number of public fields, Figure 2/8 convention by default."""
        contact_keys = ("work_contact", "home_contact")
        total = 1  # name
        for key in self.fields:
            if not include_contacts and key in contact_keys:
                continue
            total += 1
        return total

    def shares_phone(self) -> bool:
        """Tel-user test on crawled data (Section 3.2)."""
        for key in ("work_contact", "home_contact"):
            value = self.fields.get(key)
            if isinstance(value, ContactInfo) and value.has_phone():
                return True
        return False

    def gender(self) -> Gender | None:
        value = self.fields.get("gender")
        return value if isinstance(value, Gender) else None

    def relationship(self) -> Relationship | None:
        value = self.fields.get("relationship")
        return value if isinstance(value, Relationship) else None

    def current_place(self) -> Place | None:
        places = self.fields.get("places_lived")
        if places:
            return places[-1]
        return None

    def country(self) -> str | None:
        place = self.current_place()
        return place.country if place is not None else None


def _parse_circle_list(page_user_id: int, which: str, view: Any) -> tuple[tuple[int, ...], int]:
    """Validate one circle-list view; raises :class:`PageParseError`."""
    user_ids = getattr(view, "user_ids", None)
    declared = getattr(view, "declared_count", None)
    if not isinstance(user_ids, (tuple, list)):
        raise PageParseError(
            f"page {page_user_id}: {which} circle list has no id sequence"
        )
    clean: list[int] = []
    for entry in user_ids:
        if not isinstance(entry, int) or isinstance(entry, bool) or entry < 0:
            raise PageParseError(
                f"page {page_user_id}: {which} circle list holds a non-id "
                f"entry {entry!r}"
            )
        clean.append(entry)
    if not isinstance(declared, int) or isinstance(declared, bool) or declared < len(clean):
        raise PageParseError(
            f"page {page_user_id}: {which} circle list declares an invalid "
            f"count {declared!r} for {len(clean)} shown ids"
        )
    return tuple(clean), declared


def parse_profile_page(page: ProfilePage) -> ParsedProfile:
    """Extract a crawl record from a served profile page.

    The document is validated structurally before anything is read out:
    a blank body, a half-delivered fragment, a page missing its
    mandatory name, or circle lists full of non-ids all raise
    :class:`PageParseError` (the shapes :func:`repro.faults.corrupt_payload`
    produces) instead of leaking ``KeyError``/``AttributeError``.
    """
    if page is None:
        raise PageParseError("empty page document")
    user_id = getattr(page, "user_id", None)
    if not isinstance(user_id, int) or isinstance(user_id, bool) or user_id < 0:
        raise PageParseError(f"page document has no usable user id: {user_id!r}")
    name = getattr(page, "name", None)
    if not isinstance(name, str):
        raise PageParseError(f"page {user_id}: missing mandatory name field")
    fields = getattr(page, "fields", None)
    if not isinstance(fields, dict):
        raise PageParseError(f"page {user_id}: field block missing or malformed")
    in_list = out_list = None
    declared_in = declared_out = 0
    page_in = getattr(page, "in_list", None)
    page_out = getattr(page, "out_list", None)
    if page_in is not None:
        in_list, declared_in = _parse_circle_list(user_id, "in", page_in)
    if page_out is not None:
        out_list, declared_out = _parse_circle_list(user_id, "out", page_out)
    return ParsedProfile(
        user_id=user_id,
        name=name,
        fields=dict(fields),
        in_list=in_list,
        out_list=out_list,
        declared_in=declared_in,
        declared_out=declared_out,
    )
