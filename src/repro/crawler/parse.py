"""Parsing of fetched profile pages into crawl records.

The authors scraped HTML profile pages; our simulated service serves
structured :class:`~repro.platform.pages.ProfilePage` documents, and this
module plays the role of the scraper's extraction layer: it turns a page
into a :class:`ParsedProfile` — the unit stored in the crawl dataset —
pulling out the public fields, the declared circle-list counts and the
(possibly truncated) neighbor lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.platform.models import ContactInfo, Gender, Place, Relationship
from repro.platform.pages import ProfilePage


@dataclass(frozen=True)
class ParsedProfile:
    """One crawled profile: public fields plus circle-list observations.

    ``in_list`` / ``out_list`` are the user ids shown on the page (capped
    at the display limit); ``declared_in`` / ``declared_out`` are the true
    counts the page reports. ``None`` lists mean the owner hid them.
    """

    user_id: int
    name: str
    fields: dict[str, Any] = field(default_factory=dict)
    in_list: tuple[int, ...] | None = None
    out_list: tuple[int, ...] | None = None
    declared_in: int = 0
    declared_out: int = 0

    def has_field(self, key: str) -> bool:
        return key == "name" or key in self.fields

    def count_fields(self, include_contacts: bool = False) -> int:
        """Number of public fields, Figure 2/8 convention by default."""
        contact_keys = ("work_contact", "home_contact")
        total = 1  # name
        for key in self.fields:
            if not include_contacts and key in contact_keys:
                continue
            total += 1
        return total

    def shares_phone(self) -> bool:
        """Tel-user test on crawled data (Section 3.2)."""
        for key in ("work_contact", "home_contact"):
            value = self.fields.get(key)
            if isinstance(value, ContactInfo) and value.has_phone():
                return True
        return False

    def gender(self) -> Gender | None:
        value = self.fields.get("gender")
        return value if isinstance(value, Gender) else None

    def relationship(self) -> Relationship | None:
        value = self.fields.get("relationship")
        return value if isinstance(value, Relationship) else None

    def current_place(self) -> Place | None:
        places = self.fields.get("places_lived")
        if places:
            return places[-1]
        return None

    def country(self) -> str | None:
        place = self.current_place()
        return place.country if place is not None else None


def parse_profile_page(page: ProfilePage) -> ParsedProfile:
    """Extract a crawl record from a served profile page."""
    in_list = out_list = None
    declared_in = declared_out = 0
    if page.in_list is not None:
        in_list = page.in_list.user_ids
        declared_in = page.in_list.declared_count
    if page.out_list is not None:
        out_list = page.out_list.user_ids
        declared_out = page.out_list.declared_count
    return ParsedProfile(
        user_id=page.user_id,
        name=page.name,
        fields=dict(page.fields),
        in_list=in_list,
        out_list=out_list,
        declared_in=declared_in,
        declared_out=declared_out,
    )
