"""BFS frontier for the bidirectional snowball crawl.

A plain FIFO queue with a visited set gives breadth-first order — the
paper's crawl strategy. The frontier also tracks *discovered* users
(seen in someone's circle list but not yet fetched), which is what makes
the final graph larger than the set of crawled profiles (35.1M nodes vs
27.5M crawled profiles in the paper).
"""

from __future__ import annotations

from collections import deque


class BFSFrontier:
    """FIFO crawl frontier with dedup across enqueued/visited states."""

    def __init__(self) -> None:
        self._queue: deque[int] = deque()
        self._seen: set[int] = set()
        self._visited: set[int] = set()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def add(self, user_id: int) -> bool:
        """Enqueue a user if never seen; True when actually enqueued."""
        if user_id in self._seen:
            return False
        self._seen.add(user_id)
        self._queue.append(user_id)
        return True

    def add_all(self, user_ids) -> int:
        return sum(1 for uid in user_ids if self.add(uid))

    def pop(self) -> int:
        """Dequeue the next user to crawl (FIFO = breadth-first)."""
        user_id = self._queue.popleft()
        self._visited.add(user_id)
        return user_id

    def visited(self, user_id: int) -> bool:
        return user_id in self._visited

    def discovered(self, user_id: int) -> bool:
        return user_id in self._seen

    @property
    def n_discovered(self) -> int:
        return len(self._seen)

    @property
    def n_visited(self) -> int:
        return len(self._visited)

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        """JSON-ready snapshot of queue + seen + visited.

        The queue keeps its FIFO order (it drives the crawl sequence);
        the sets are sorted so equal frontiers serialise identically.
        Ids are coerced to native ints — callers may have fed numpy
        integers, which hash like ints but do not survive JSON.
        """
        return {
            "queue": [int(user_id) for user_id in self._queue],
            "seen": sorted(int(user_id) for user_id in self._seen),
            "visited": sorted(int(user_id) for user_id in self._visited),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite contents from an :meth:`export_state` snapshot."""
        self._queue = deque(int(user_id) for user_id in state["queue"])
        self._seen = {int(user_id) for user_id in state["seen"]}
        self._visited = {int(user_id) for user_id in state["visited"]}
