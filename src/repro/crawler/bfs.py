"""The bidirectional breadth-first crawler (Section 2.2).

Starting from a seed profile, the crawler fetches pages in BFS order and
follows *both* circle lists — out-circles ("In user's circles") and
in-circles ("Have user in circles") — which is what let the authors
recover almost all edges lost to the 10,000-entry display cap: an edge
``u -> v`` hidden by truncation on v's in-list usually still appears on
u's out-list.

The crawler never touches the service's internals: everything flows
through the HTTP front end, the same way the authors' crawler saw
Google+.

Long campaigns (the authors' ran ~52 days) survive interruption through
the :class:`CrawlHooks` extension points: a hooks object can persist
every page as it lands, ask for periodic checkpoints, and hand back a
:class:`ResumeState` so a killed crawl continues exactly where it
stopped.  :mod:`repro.store.campaign` provides the durable
implementation; the crawler itself stays storage-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.platform.http import HttpFrontend

from .dataset import CrawlDataset, CrawlStats
from .fetch import FetchError
from .frontier import BFSFrontier
from .parse import PageParseError, ParsedProfile, parse_profile_page
from .resilience import ResiliencePolicy
from .workers import MachinePool, publish_fetch_stats, publish_pool_health

#: Packing base for the edge-dedup set; user ids must stay below this.
_PACK = 1 << 32


@dataclass(frozen=True)
class CrawlConfig:
    """Crawl campaign parameters.

    The resilience block (retries, backoff, breaker, budget) flows down
    to every fetcher via :meth:`resilience_policy`; ``parse_retries``
    and ``max_redrive_rounds`` govern how hard the crawl fights for a
    page before and after dead-lettering it.
    """

    n_machines: int = 11
    max_pages: int | None = None
    follow_in_lists: bool = True
    follow_out_lists: bool = True
    request_latency: float = 0.02
    # -- resilience (see repro.crawler.resilience) -----------------------
    max_retries: int = 6
    initial_backoff: float = 0.5
    max_backoff: float = 8.0
    backoff_seed: int = 0
    retry_budget: int | None = None
    breaker_failure_threshold: int = 5
    breaker_cooldown: float = 1.0
    breaker_probe_successes: int = 2
    #: Immediate refetch attempts for a page whose payload fails to parse.
    parse_retries: int = 1
    #: End-of-crawl passes over the dead-letter queue.
    max_redrive_rounds: int = 2

    def __post_init__(self) -> None:
        if not (self.follow_in_lists or self.follow_out_lists):
            raise ValueError("crawler must follow at least one list direction")
        if self.parse_retries < 0:
            raise ValueError("parse_retries must be >= 0")
        if self.max_redrive_rounds < 0:
            raise ValueError("max_redrive_rounds must be >= 0")
        self.resilience_policy()  # validate the resilience knobs eagerly

    def resilience_policy(self) -> ResiliencePolicy:
        """The fleet policy this config describes."""
        return ResiliencePolicy(
            max_retries=self.max_retries,
            initial_backoff=self.initial_backoff,
            max_backoff=self.max_backoff,
            backoff_seed=self.backoff_seed,
            retry_budget=self.retry_budget,
            breaker_failure_threshold=self.breaker_failure_threshold,
            breaker_cooldown=self.breaker_cooldown,
            breaker_probe_successes=self.breaker_probe_successes,
        )


class DeadLetterQueue:
    """Pages that exhausted their retries, awaiting end-of-crawl redrive.

    ``pending`` is the current redrive round's remaining work,
    ``requeued`` collects this round's repeat failures (they become the
    next round's ``pending``), and ``failed`` is the permanent record
    once rounds run out.  The split keeps redrive order — and therefore
    the virtual timeline — identical whether or not a checkpoint/resume
    happened mid-round.
    """

    def __init__(self) -> None:
        self.pending: list[tuple[int, str]] = []
        self.requeued: list[tuple[int, str]] = []
        self.failed: list[tuple[int, str]] = []
        self.rounds_done = 0
        self.redriven = 0
        self.parse_errors = 0

    def add(self, user_id: int, reason: str) -> None:
        self.pending.append((int(user_id), reason))

    def __len__(self) -> int:
        return len(self.pending) + len(self.requeued)

    def export_state(self) -> dict:
        return {
            "pending": [[u, r] for u, r in self.pending],
            "requeued": [[u, r] for u, r in self.requeued],
            "failed": [[u, r] for u, r in self.failed],
            "rounds_done": self.rounds_done,
            "redriven": self.redriven,
            "parse_errors": self.parse_errors,
        }

    def restore_state(self, state: dict) -> None:
        self.pending = [(int(u), str(r)) for u, r in state.get("pending", [])]
        self.requeued = [(int(u), str(r)) for u, r in state.get("requeued", [])]
        self.failed = [(int(u), str(r)) for u, r in state.get("failed", [])]
        self.rounds_done = int(state.get("rounds_done", 0))
        self.redriven = int(state.get("redriven", 0))
        self.parse_errors = int(state.get("parse_errors", 0))


@dataclass
class CrawlSnapshot:
    """Complete control state of a crawl at a page boundary.

    Everything a resumed process needs — beyond the durable page/edge
    log itself — to continue a crawl bit-identically: the frontier
    contents, the fleet's rotation cursor and per-machine counters, the
    HTTP front end's clock/limiter/RNG state, and the loop's own
    accounting.  All values are plain JSON-serialisable types.
    """

    started: float
    virtual_now: float
    n_pages: int
    n_edges: int
    frontier: dict
    pool: dict
    frontend: dict
    config: dict = field(default_factory=dict)
    #: Dead-letter queue state (see :class:`DeadLetterQueue`); empty dict
    #: on snapshots from before the resilience layer.
    dead_letter: dict = field(default_factory=dict)
    #: Opaque per-subsystem state (keyed by extension name) contributed
    #: by :attr:`BidirectionalBFSCrawler.extension_providers` — e.g. the
    #: serving layer's load-generator state.  Empty dict on snapshots
    #: from before the extension mechanism.
    extensions: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "started": self.started,
            "virtual_now": self.virtual_now,
            "n_pages": self.n_pages,
            "n_edges": self.n_edges,
            "frontier": self.frontier,
            "pool": self.pool,
            "frontend": self.frontend,
            "config": self.config,
            "dead_letter": self.dead_letter,
            "extensions": self.extensions,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CrawlSnapshot":
        return cls(
            started=float(data["started"]),
            virtual_now=float(data["virtual_now"]),
            n_pages=int(data["n_pages"]),
            n_edges=int(data["n_edges"]),
            frontier=data["frontier"],
            pool=data["pool"],
            frontend=data["frontend"],
            config=dict(data.get("config", {})),
            dead_letter=dict(data.get("dead_letter", {})),
            extensions=dict(data.get("extensions", {})),
        )


@dataclass
class ResumeState:
    """A restored crawl: control snapshot plus the replayed crawl data."""

    snapshot: CrawlSnapshot
    profiles: dict[int, ParsedProfile]
    sources: list[int]
    targets: list[int]


class CrawlHooks:
    """Extension points :meth:`BidirectionalBFSCrawler.crawl` calls.

    The default implementation is a no-op, so ``crawl(seeds)`` behaves
    exactly as an unhooked in-memory crawl.  A durable store overrides:

    * :meth:`resume_state` — return the state to continue from (or None
      for a fresh crawl);
    * :meth:`on_page` — called once per successfully fetched page, with
      the newly discovered (deduplicated) edges that page contributed;
    * :meth:`should_checkpoint` / :meth:`on_checkpoint` — the periodic
      checkpoint cadence and the snapshot sink.  A final checkpoint is
      always taken when the frontier drains, and a best-effort one when
      the crawl aborts mid-run;
    * :meth:`on_dead_letter` / :meth:`on_redrive` — a page entering the
      dead-letter queue after exhausting retries, and one recovered by
      an end-of-crawl redrive pass (for the store's audit journal);
    * :meth:`on_finish` — the completed dataset, for archival.
    """

    def bind_clock(self, clock) -> None:
        """Called once, before any other hook, with the crawl's virtual clock."""
        pass

    def resume_state(self) -> ResumeState | None:
        return None

    def on_resume(self, resume: ResumeState) -> None:
        """Called after control state is restored from :meth:`resume_state`."""
        pass

    def on_page(
        self,
        user_id: int,
        profile: ParsedProfile,
        new_edges: list[tuple[int, int]],
    ) -> None:
        pass

    def should_checkpoint(self, n_pages: int, virtual_now: float) -> bool:
        return False

    def on_checkpoint(self, snapshot: CrawlSnapshot) -> None:
        pass

    def on_dead_letter(self, user_id: int, reason: str, virtual_now: float) -> None:
        pass

    def on_redrive(self, user_id: int, virtual_now: float) -> None:
        pass

    def on_abort(self, error: BaseException) -> None:
        """Called when the crawl dies mid-run, before the abort ``on_finish``."""
        pass

    def on_finish(self, dataset: CrawlDataset) -> None:
        """Called exactly once per crawl — with the partial dataset on abort."""
        pass


class HookChain(CrawlHooks):
    """Fan one crawl's hook events out to several hook objects, in order.

    Order matters and is the contract observers rely on: the durable
    store must come *first* so that by the time a telemetry consumer
    sees an event, the store has already journaled it (an exception from
    an earlier hook skips the later ones — data is never observed ahead
    of durability).  ``resume_state`` returns the first non-None answer;
    ``should_checkpoint`` asks *every* member (no short-circuit, so each
    can maintain its own cadence state) and triggers if any says yes.
    """

    def __init__(self, *hooks: CrawlHooks | None):
        self.hooks: list[CrawlHooks] = [h for h in hooks if h is not None]

    def bind_clock(self, clock) -> None:
        for hook in self.hooks:
            hook.bind_clock(clock)

    def resume_state(self) -> ResumeState | None:
        for hook in self.hooks:
            state = hook.resume_state()
            if state is not None:
                return state
        return None

    def on_resume(self, resume: ResumeState) -> None:
        for hook in self.hooks:
            hook.on_resume(resume)

    def on_page(self, user_id, profile, new_edges) -> None:
        for hook in self.hooks:
            hook.on_page(user_id, profile, new_edges)

    def should_checkpoint(self, n_pages: int, virtual_now: float) -> bool:
        fired = False
        for hook in self.hooks:  # every member keeps its cadence state
            if hook.should_checkpoint(n_pages, virtual_now):
                fired = True
        return fired

    def on_checkpoint(self, snapshot: CrawlSnapshot) -> None:
        for hook in self.hooks:
            hook.on_checkpoint(snapshot)

    def on_dead_letter(self, user_id, reason, virtual_now) -> None:
        for hook in self.hooks:
            hook.on_dead_letter(user_id, reason, virtual_now)

    def on_redrive(self, user_id, virtual_now) -> None:
        for hook in self.hooks:
            hook.on_redrive(user_id, virtual_now)

    def on_abort(self, error: BaseException) -> None:
        for hook in self.hooks:
            hook.on_abort(error)

    def on_finish(self, dataset: CrawlDataset) -> None:
        for hook in self.hooks:
            hook.on_finish(dataset)


class BidirectionalBFSCrawler:
    """BFS crawl of the simulated Google+ over its HTTP front end."""

    def __init__(self, frontend: HttpFrontend, config: CrawlConfig | None = None):
        self.config = config if config is not None else CrawlConfig()
        self.frontend = frontend
        self.pool = MachinePool(
            frontend,
            n_machines=self.config.n_machines,
            request_latency=self.config.request_latency,
            policy=self.config.resilience_policy(),
        )
        #: Extension state riding the checkpoints: providers contribute
        #: a JSON-ready dict per snapshot, restorers get it back on
        #: resume (after the crawl's own control state is restored).
        #: Keyed by extension name; :mod:`repro.serve` registers "serve".
        self.extension_providers: dict = {}
        self.extension_restorers: dict = {}

    def crawl(self, seeds: list[int], hooks: CrawlHooks | None = None) -> CrawlDataset:
        """Run the campaign from the given seed users.

        With ``hooks``, the crawl becomes resumable: state restored from
        ``hooks.resume_state()`` replaces the seeds, and every page /
        checkpoint event is forwarded to the hooks object.
        """
        tracer = trace.get_tracer()
        tracer.bind_clock(self.frontend.clock)
        registry = get_registry()
        frontier_gauge = registry.gauge(
            "crawl.frontier_size", "Users queued for fetching"
        )
        pages_counter = registry.counter("crawl.pages", "Profile pages crawled")
        throughput_gauge = registry.gauge(
            "crawl.pages_per_virtual_second", "Crawl throughput on the virtual clock"
        )
        dead_counter = registry.counter(
            "crawl.dead_letters",
            "Pages dead-lettered after exhausting retries, by failure kind",
            labels=("reason",),
        )
        redrive_counter = registry.counter(
            "crawl.redriven", "Dead-lettered pages recovered by redrive"
        )
        parse_error_counter = registry.counter(
            "crawl.parse_errors", "Fetched pages whose payload failed to parse"
        )
        with tracer.span(
            "crawl.bfs", machines=self.config.n_machines, seeds=len(seeds)
        ):
            if hooks is not None:
                hooks.bind_clock(self.frontend.clock)
            resume = hooks.resume_state() if hooks is not None else None
            frontier = BFSFrontier()
            dead_letters = DeadLetterQueue()
            if resume is not None:
                snapshot = resume.snapshot
                frontier.restore_state(snapshot.frontier)
                self.pool.restore_state(snapshot.pool)
                self.frontend.restore_state(snapshot.frontend)
                dead_letters.restore_state(snapshot.dead_letter)
                for name, restorer in self.extension_restorers.items():
                    extension_state = snapshot.extensions.get(name)
                    if extension_state is not None:
                        restorer(extension_state)
                started = snapshot.started
                profiles = dict(resume.profiles)
                sources = list(resume.sources)
                targets = list(resume.targets)
                edge_keys = {
                    u * _PACK + v for u, v in zip(sources, targets)
                }
                hooks.on_resume(resume)
            else:
                started = self.frontend.clock.now()
                frontier.add_all(seeds)
                profiles = {}
                sources = []
                targets = []
                edge_keys = set()

            #: Edges the page being processed contributed (for hooks).
            page_edges: list[tuple[int, int]] = []

            def record_edge(u: int, v: int) -> None:
                if u == v:
                    return
                key = u * _PACK + v
                if key in edge_keys:
                    return
                edge_keys.add(key)
                page_edges.append((u, v))

            def ingest(user_id: int, profile: ParsedProfile) -> None:
                """Record one successfully parsed page and fan out its edges.

                Ordering guarantee: ``on_page`` fires *before* the page's
                profile and edges are committed to the in-memory dataset,
                so a durability hook decides the page's fate ahead of any
                observer reading the arrays.  The commit itself runs even
                if the hook raises (a store's injected crash fires *after*
                journaling, so the in-memory cut must keep matching the
                journal for the abort checkpoint to be consistent).
                """
                pages_counter.inc()
                page_edges.clear()
                if self.config.follow_out_lists and profile.out_list is not None:
                    for target in profile.out_list:
                        record_edge(user_id, target)
                    frontier.add_all(profile.out_list)
                if self.config.follow_in_lists and profile.in_list is not None:
                    for source in profile.in_list:
                        record_edge(source, user_id)
                    frontier.add_all(profile.in_list)
                try:
                    if hooks is not None:
                        hooks.on_page(user_id, profile, list(page_edges))
                finally:
                    profiles[user_id] = profile
                    for u, v in page_edges:
                        sources.append(u)
                        targets.append(v)
                if hooks is not None:
                    if hooks.should_checkpoint(len(profiles), self.frontend.clock.now()):
                        # Refresh fleet-health gauges so a checkpoint
                        # observer (the live telemetry layer) reads
                        # breaker/budget state as of this cut, not as of
                        # the end of the previous crawl.
                        publish_fetch_stats(self.pool.combined_stats(), registry)
                        publish_pool_health(self.pool, registry)
                        hooks.on_checkpoint(
                            self._snapshot(
                                frontier, dead_letters, started,
                                len(profiles), len(sources),
                            )
                        )

            parse_attempts = self.config.parse_retries + 1

            def attempt_page(user_id: int, redrive: bool) -> str:
                """Fetch, parse, and ingest one page.

                Returns ``"ok"``, ``"missing"`` (404), or ``"dead"``.  A
                first-time dead letter is queued and journaled here; a
                redrive failure is left for the caller to requeue.
                """
                reason = "fetch"
                for _ in range(parse_attempts):
                    try:
                        page = self.pool.fetch_profile(user_id)
                    except FetchError:
                        reason = "fetch"
                        break
                    if page is None:
                        return "missing"
                    try:
                        profile = parse_profile_page(page)
                    except PageParseError:
                        dead_letters.parse_errors += 1
                        parse_error_counter.inc()
                        reason = "parse"
                        continue
                    ingest(user_id, profile)
                    return "ok"
                if not redrive:
                    dead_letters.add(user_id, reason)
                    dead_counter.inc(reason=reason)
                    if hooks is not None:
                        hooks.on_dead_letter(
                            user_id, reason, self.frontend.clock.now()
                        )
                return "dead"

            max_pages = self.config.max_pages

            def page_cap_reached() -> bool:
                return max_pages is not None and len(profiles) >= max_pages

            finished = False
            try:
                capped = False
                while not capped:
                    # -- BFS drain ------------------------------------------
                    while frontier:
                        if page_cap_reached():
                            capped = True
                            break
                        user_id = frontier.pop()
                        attempt_page(user_id, redrive=False)
                        frontier_gauge.set(len(frontier))
                    if capped:
                        break
                    # -- redrive phase --------------------------------------
                    # Pages that dead-lettered while the server was hostile
                    # get fresh rounds of attempts now that the frontier is
                    # drained — often the ban/outage window has passed.
                    # Round boundaries live in the DeadLetterQueue so a
                    # checkpoint/resume mid-round replays identically.
                    while (
                        len(dead_letters) > 0
                        and dead_letters.rounds_done < self.config.max_redrive_rounds
                    ):
                        if not dead_letters.pending:
                            dead_letters.pending = dead_letters.requeued
                            dead_letters.requeued = []
                        while dead_letters.pending:
                            if page_cap_reached():
                                capped = True
                                break
                            user_id, reason = dead_letters.pending.pop(0)
                            status = attempt_page(user_id, redrive=True)
                            if status == "dead":
                                dead_letters.requeued.append((user_id, reason))
                            elif status == "ok":
                                dead_letters.redriven += 1
                                redrive_counter.inc()
                                if hooks is not None:
                                    hooks.on_redrive(
                                        user_id, self.frontend.clock.now()
                                    )
                        if capped:
                            break
                        dead_letters.rounds_done += 1
                    if capped:
                        break
                    # A redriven page may have discovered new users: go
                    # back to BFS, and grant any still-dead pages a fresh
                    # set of rounds once that work is done.  Both facts
                    # are read from persisted state (frontier, queue), so
                    # a resumed crawl takes the same branch.
                    if len(frontier) > 0:
                        dead_letters.rounds_done = 0
                        continue
                    break
                if not capped:
                    # Rounds are over: whatever is still queued (a
                    # never-started round under max_redrive_rounds=0
                    # included) is permanently failed.
                    dead_letters.failed.extend(dead_letters.pending)
                    dead_letters.failed.extend(dead_letters.requeued)
                    dead_letters.pending = []
                    dead_letters.requeued = []

                fetch_stats = self.pool.combined_stats()
                virtual_duration = self.frontend.clock.now() - started
                if virtual_duration > 0:
                    throughput_gauge.set(fetch_stats.pages_fetched / virtual_duration)
                publish_fetch_stats(fetch_stats, registry)
                publish_pool_health(self.pool, registry)
                dataset = self._build_dataset(
                    frontier, dead_letters, started, profiles, sources, targets
                )
                if hooks is not None:
                    hooks.on_checkpoint(
                        self._snapshot(
                            frontier, dead_letters, started, len(profiles), len(sources)
                        )
                    )
                    finished = True
                    hooks.on_finish(dataset)
            except Exception as error:
                # Lost-work-on-abort guard: persist a best-effort final
                # checkpoint so the campaign resumes from the abort point
                # rather than the last periodic checkpoint, then give
                # observers their abort callbacks.  ``on_finish`` still
                # fires exactly once — here, with the partial dataset.
                if hooks is not None and not finished:
                    try:
                        publish_fetch_stats(self.pool.combined_stats(), registry)
                        publish_pool_health(self.pool, registry)
                    except Exception:
                        pass
                    try:
                        hooks.on_checkpoint(
                            self._snapshot(
                                frontier, dead_letters, started,
                                len(profiles), len(sources),
                            )
                        )
                    except Exception:
                        pass
                    try:
                        hooks.on_abort(error)
                    except Exception:
                        pass
                    finished = True
                    try:
                        hooks.on_finish(
                            self._build_dataset(
                                frontier, dead_letters, started,
                                profiles, sources, targets,
                            )
                        )
                    except Exception:
                        pass
                raise
        return dataset

    def _build_dataset(
        self,
        frontier: BFSFrontier,
        dead_letters: DeadLetterQueue,
        started: float,
        profiles: dict[int, ParsedProfile],
        sources: list[int],
        targets: list[int],
    ) -> CrawlDataset:
        """Materialise the dataset for the pages crawled so far."""
        fetch_stats = self.pool.combined_stats()
        stats = CrawlStats(
            pages_fetched=fetch_stats.pages_fetched,
            not_found=fetch_stats.not_found,
            throttled=fetch_stats.throttled,
            server_errors=fetch_stats.server_errors,
            virtual_duration=self.frontend.clock.now() - started,
            n_machines=self.config.n_machines,
            discovered=frontier.n_discovered,
            banned=fetch_stats.banned,
            timeouts=fetch_stats.timeouts,
            slow_responses=fetch_stats.slow_responses,
            parse_errors=dead_letters.parse_errors,
            dead_lettered=len(dead_letters.failed) + len(dead_letters),
            redriven=dead_letters.redriven,
        )
        return CrawlDataset(
            profiles=profiles,
            sources=np.array(sources, dtype=np.int64),
            targets=np.array(targets, dtype=np.int64),
            stats=stats,
        )

    def _snapshot(
        self,
        frontier: BFSFrontier,
        dead_letters: DeadLetterQueue,
        started: float,
        n_pages: int,
        n_edges: int,
    ) -> CrawlSnapshot:
        return CrawlSnapshot(
            started=started,
            virtual_now=self.frontend.clock.now(),
            n_pages=n_pages,
            n_edges=n_edges,
            frontier=frontier.export_state(),
            pool=self.pool.export_state(),
            frontend=self.frontend.export_state(),
            config={
                "n_machines": self.config.n_machines,
                "request_latency": self.config.request_latency,
                "follow_in_lists": self.config.follow_in_lists,
                "follow_out_lists": self.config.follow_out_lists,
            },
            dead_letter=dead_letters.export_state(),
            extensions={
                name: provider()
                for name, provider in sorted(self.extension_providers.items())
            },
        )
