"""The bidirectional breadth-first crawler (Section 2.2).

Starting from a seed profile, the crawler fetches pages in BFS order and
follows *both* circle lists — out-circles ("In user's circles") and
in-circles ("Have user in circles") — which is what let the authors
recover almost all edges lost to the 10,000-entry display cap: an edge
``u -> v`` hidden by truncation on v's in-list usually still appears on
u's out-list.

The crawler never touches the service's internals: everything flows
through the HTTP front end, the same way the authors' crawler saw
Google+.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.platform.http import HttpFrontend

from .dataset import CrawlDataset, CrawlStats
from .frontier import BFSFrontier
from .parse import parse_profile_page
from .workers import MachinePool, publish_fetch_stats

#: Packing base for the edge-dedup set; user ids must stay below this.
_PACK = 1 << 32


@dataclass(frozen=True)
class CrawlConfig:
    """Crawl campaign parameters."""

    n_machines: int = 11
    max_pages: int | None = None
    follow_in_lists: bool = True
    follow_out_lists: bool = True
    request_latency: float = 0.02

    def __post_init__(self) -> None:
        if not (self.follow_in_lists or self.follow_out_lists):
            raise ValueError("crawler must follow at least one list direction")


class BidirectionalBFSCrawler:
    """BFS crawl of the simulated Google+ over its HTTP front end."""

    def __init__(self, frontend: HttpFrontend, config: CrawlConfig | None = None):
        self.config = config if config is not None else CrawlConfig()
        self.frontend = frontend
        self.pool = MachinePool(
            frontend,
            n_machines=self.config.n_machines,
            request_latency=self.config.request_latency,
        )

    def crawl(self, seeds: list[int]) -> CrawlDataset:
        """Run the campaign from the given seed users."""
        tracer = trace.get_tracer()
        tracer.bind_clock(self.frontend.clock)
        registry = get_registry()
        frontier_gauge = registry.gauge(
            "crawl.frontier_size", "Users queued for fetching"
        )
        pages_counter = registry.counter("crawl.pages", "Profile pages crawled")
        throughput_gauge = registry.gauge(
            "crawl.pages_per_virtual_second", "Crawl throughput on the virtual clock"
        )
        with tracer.span(
            "crawl.bfs", machines=self.config.n_machines, seeds=len(seeds)
        ):
            started = self.frontend.clock.now()
            frontier = BFSFrontier()
            frontier.add_all(seeds)
            profiles = {}
            edge_keys: set[int] = set()
            sources: list[int] = []
            targets: list[int] = []

            def record_edge(u: int, v: int) -> None:
                if u == v:
                    return
                key = u * _PACK + v
                if key in edge_keys:
                    return
                edge_keys.add(key)
                sources.append(u)
                targets.append(v)

            max_pages = self.config.max_pages
            while frontier:
                if max_pages is not None and len(profiles) >= max_pages:
                    break
                user_id = frontier.pop()
                page = self.pool.fetch_profile(user_id)
                frontier_gauge.set(len(frontier))
                if page is None:
                    continue
                profile = parse_profile_page(page)
                profiles[user_id] = profile
                pages_counter.inc()
                if self.config.follow_out_lists and profile.out_list is not None:
                    for target in profile.out_list:
                        record_edge(user_id, target)
                    frontier.add_all(profile.out_list)
                if self.config.follow_in_lists and profile.in_list is not None:
                    for source in profile.in_list:
                        record_edge(source, user_id)
                    frontier.add_all(profile.in_list)

            fetch_stats = self.pool.combined_stats()
            virtual_duration = self.frontend.clock.now() - started
            if virtual_duration > 0:
                throughput_gauge.set(fetch_stats.pages_fetched / virtual_duration)
            publish_fetch_stats(fetch_stats, registry)
            stats = CrawlStats(
                pages_fetched=fetch_stats.pages_fetched,
                not_found=fetch_stats.not_found,
                throttled=fetch_stats.throttled,
                server_errors=fetch_stats.server_errors,
                virtual_duration=virtual_duration,
                n_machines=self.config.n_machines,
                discovered=frontier.n_discovered,
            )
        return CrawlDataset(
            profiles=profiles,
            sources=np.array(sources, dtype=np.int64),
            targets=np.array(targets, dtype=np.int64),
            stats=stats,
        )
