"""The bidirectional breadth-first crawler (Section 2.2).

Starting from a seed profile, the crawler fetches pages in BFS order and
follows *both* circle lists — out-circles ("In user's circles") and
in-circles ("Have user in circles") — which is what let the authors
recover almost all edges lost to the 10,000-entry display cap: an edge
``u -> v`` hidden by truncation on v's in-list usually still appears on
u's out-list.

The crawler never touches the service's internals: everything flows
through the HTTP front end, the same way the authors' crawler saw
Google+.

Long campaigns (the authors' ran ~52 days) survive interruption through
the :class:`CrawlHooks` extension points: a hooks object can persist
every page as it lands, ask for periodic checkpoints, and hand back a
:class:`ResumeState` so a killed crawl continues exactly where it
stopped.  :mod:`repro.store.campaign` provides the durable
implementation; the crawler itself stays storage-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.platform.http import HttpFrontend

from .dataset import CrawlDataset, CrawlStats
from .frontier import BFSFrontier
from .parse import ParsedProfile, parse_profile_page
from .workers import MachinePool, publish_fetch_stats

#: Packing base for the edge-dedup set; user ids must stay below this.
_PACK = 1 << 32


@dataclass(frozen=True)
class CrawlConfig:
    """Crawl campaign parameters."""

    n_machines: int = 11
    max_pages: int | None = None
    follow_in_lists: bool = True
    follow_out_lists: bool = True
    request_latency: float = 0.02

    def __post_init__(self) -> None:
        if not (self.follow_in_lists or self.follow_out_lists):
            raise ValueError("crawler must follow at least one list direction")


@dataclass
class CrawlSnapshot:
    """Complete control state of a crawl at a page boundary.

    Everything a resumed process needs — beyond the durable page/edge
    log itself — to continue a crawl bit-identically: the frontier
    contents, the fleet's rotation cursor and per-machine counters, the
    HTTP front end's clock/limiter/RNG state, and the loop's own
    accounting.  All values are plain JSON-serialisable types.
    """

    started: float
    virtual_now: float
    n_pages: int
    n_edges: int
    frontier: dict
    pool: dict
    frontend: dict
    config: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "started": self.started,
            "virtual_now": self.virtual_now,
            "n_pages": self.n_pages,
            "n_edges": self.n_edges,
            "frontier": self.frontier,
            "pool": self.pool,
            "frontend": self.frontend,
            "config": self.config,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "CrawlSnapshot":
        return cls(
            started=float(data["started"]),
            virtual_now=float(data["virtual_now"]),
            n_pages=int(data["n_pages"]),
            n_edges=int(data["n_edges"]),
            frontier=data["frontier"],
            pool=data["pool"],
            frontend=data["frontend"],
            config=dict(data.get("config", {})),
        )


@dataclass
class ResumeState:
    """A restored crawl: control snapshot plus the replayed crawl data."""

    snapshot: CrawlSnapshot
    profiles: dict[int, ParsedProfile]
    sources: list[int]
    targets: list[int]


class CrawlHooks:
    """Extension points :meth:`BidirectionalBFSCrawler.crawl` calls.

    The default implementation is a no-op, so ``crawl(seeds)`` behaves
    exactly as an unhooked in-memory crawl.  A durable store overrides:

    * :meth:`resume_state` — return the state to continue from (or None
      for a fresh crawl);
    * :meth:`on_page` — called once per successfully fetched page, with
      the newly discovered (deduplicated) edges that page contributed;
    * :meth:`should_checkpoint` / :meth:`on_checkpoint` — the periodic
      checkpoint cadence and the snapshot sink.  A final checkpoint is
      always taken when the frontier drains;
    * :meth:`on_finish` — the completed dataset, for archival.
    """

    def resume_state(self) -> ResumeState | None:
        return None

    def on_page(
        self,
        user_id: int,
        profile: ParsedProfile,
        new_edges: list[tuple[int, int]],
    ) -> None:
        pass

    def should_checkpoint(self, n_pages: int, virtual_now: float) -> bool:
        return False

    def on_checkpoint(self, snapshot: CrawlSnapshot) -> None:
        pass

    def on_finish(self, dataset: CrawlDataset) -> None:
        pass


class BidirectionalBFSCrawler:
    """BFS crawl of the simulated Google+ over its HTTP front end."""

    def __init__(self, frontend: HttpFrontend, config: CrawlConfig | None = None):
        self.config = config if config is not None else CrawlConfig()
        self.frontend = frontend
        self.pool = MachinePool(
            frontend,
            n_machines=self.config.n_machines,
            request_latency=self.config.request_latency,
        )

    def crawl(self, seeds: list[int], hooks: CrawlHooks | None = None) -> CrawlDataset:
        """Run the campaign from the given seed users.

        With ``hooks``, the crawl becomes resumable: state restored from
        ``hooks.resume_state()`` replaces the seeds, and every page /
        checkpoint event is forwarded to the hooks object.
        """
        tracer = trace.get_tracer()
        tracer.bind_clock(self.frontend.clock)
        registry = get_registry()
        frontier_gauge = registry.gauge(
            "crawl.frontier_size", "Users queued for fetching"
        )
        pages_counter = registry.counter("crawl.pages", "Profile pages crawled")
        throughput_gauge = registry.gauge(
            "crawl.pages_per_virtual_second", "Crawl throughput on the virtual clock"
        )
        with tracer.span(
            "crawl.bfs", machines=self.config.n_machines, seeds=len(seeds)
        ):
            resume = hooks.resume_state() if hooks is not None else None
            frontier = BFSFrontier()
            if resume is not None:
                snapshot = resume.snapshot
                frontier.restore_state(snapshot.frontier)
                self.pool.restore_state(snapshot.pool)
                self.frontend.restore_state(snapshot.frontend)
                started = snapshot.started
                profiles = dict(resume.profiles)
                sources = list(resume.sources)
                targets = list(resume.targets)
                edge_keys = {
                    u * _PACK + v for u, v in zip(sources, targets)
                }
            else:
                started = self.frontend.clock.now()
                frontier.add_all(seeds)
                profiles = {}
                sources = []
                targets = []
                edge_keys = set()

            #: Edges the page being processed contributed (for hooks).
            page_edges: list[tuple[int, int]] = []

            def record_edge(u: int, v: int) -> None:
                if u == v:
                    return
                key = u * _PACK + v
                if key in edge_keys:
                    return
                edge_keys.add(key)
                sources.append(u)
                targets.append(v)
                page_edges.append((u, v))

            max_pages = self.config.max_pages
            while frontier:
                if max_pages is not None and len(profiles) >= max_pages:
                    break
                user_id = frontier.pop()
                page = self.pool.fetch_profile(user_id)
                frontier_gauge.set(len(frontier))
                if page is None:
                    continue
                profile = parse_profile_page(page)
                profiles[user_id] = profile
                pages_counter.inc()
                page_edges.clear()
                if self.config.follow_out_lists and profile.out_list is not None:
                    for target in profile.out_list:
                        record_edge(user_id, target)
                    frontier.add_all(profile.out_list)
                if self.config.follow_in_lists and profile.in_list is not None:
                    for source in profile.in_list:
                        record_edge(source, user_id)
                    frontier.add_all(profile.in_list)
                if hooks is not None:
                    hooks.on_page(user_id, profile, list(page_edges))
                    if hooks.should_checkpoint(
                        len(profiles), self.frontend.clock.now()
                    ):
                        hooks.on_checkpoint(
                            self._snapshot(frontier, started, len(profiles), len(sources))
                        )

            fetch_stats = self.pool.combined_stats()
            virtual_duration = self.frontend.clock.now() - started
            if virtual_duration > 0:
                throughput_gauge.set(fetch_stats.pages_fetched / virtual_duration)
            publish_fetch_stats(fetch_stats, registry)
            stats = CrawlStats(
                pages_fetched=fetch_stats.pages_fetched,
                not_found=fetch_stats.not_found,
                throttled=fetch_stats.throttled,
                server_errors=fetch_stats.server_errors,
                virtual_duration=virtual_duration,
                n_machines=self.config.n_machines,
                discovered=frontier.n_discovered,
            )
            dataset = CrawlDataset(
                profiles=profiles,
                sources=np.array(sources, dtype=np.int64),
                targets=np.array(targets, dtype=np.int64),
                stats=stats,
            )
            if hooks is not None:
                hooks.on_checkpoint(
                    self._snapshot(frontier, started, len(profiles), len(sources))
                )
                hooks.on_finish(dataset)
        return dataset

    def _snapshot(
        self, frontier: BFSFrontier, started: float, n_pages: int, n_edges: int
    ) -> CrawlSnapshot:
        return CrawlSnapshot(
            started=started,
            virtual_now=self.frontend.clock.now(),
            n_pages=n_pages,
            n_edges=n_edges,
            frontier=frontier.export_state(),
            pool=self.pool.export_state(),
            frontend=self.frontend.export_state(),
            config={
                "n_machines": self.config.n_machines,
                "request_latency": self.config.request_latency,
                "follow_in_lists": self.config.follow_in_lists,
                "follow_out_lists": self.config.follow_out_lists,
            },
        )
