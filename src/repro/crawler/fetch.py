"""Fetching profile pages over the simulated HTTP front end.

One :class:`Fetcher` models one crawl machine: it has its own IP address,
respects the server's throttling by sleeping (on the virtual clock) for
the advertised retry-after, and retries transient 503s with exponential
backoff — the operational realities of the authors' 46-day crawl.

Each fetcher publishes a per-machine virtual-latency histogram and retry
counters to the metrics registry (see ``docs/observability.md``), so a
study run can show how evenly the fleet's load and throttle pressure
were spread.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import Registry, get_registry
from repro.platform.http import (
    HttpFrontend,
    Request,
    STATUS_FORBIDDEN,
    STATUS_NOT_FOUND,
    STATUS_REQUEST_TIMEOUT,
    STATUS_TOO_MANY_REQUESTS,
)
from repro.platform.pages import ProfilePage

from .resilience import CircuitBreaker, RetryBudget


class FetchError(Exception):
    """A page could not be retrieved after exhausting retries."""


#: Floor applied to throttle waits so a zero retry-after cannot spin.
MIN_THROTTLE_WAIT = 0.01


@dataclass
class FetchStats:
    """Counters for one fetcher (one crawl machine).

    All fields must stay numeric and additive: :meth:`merge` combines
    stats field-by-field via :func:`dataclasses.fields`, so newly added
    counters aggregate without touching any call site.
    """

    pages_fetched: int = 0
    not_found: int = 0
    throttled: int = 0
    server_errors: int = 0
    banned: int = 0
    timeouts: int = 0
    slow_responses: int = 0
    time_waiting: float = 0.0
    time_slowed: float = 0.0

    def merge(self, other: "FetchStats") -> "FetchStats":
        """Add ``other``'s counters into self (in place); returns self."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "FetchStats") -> "FetchStats":
        if not isinstance(other, FetchStats):
            return NotImplemented
        return FetchStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in dataclasses.fields(self)
            }
        )

    __radd__ = __add__


@dataclass
class Fetcher:
    """HTTP client for one crawl machine.

    ``request_latency`` is the virtual time one request occupies; with
    ``parallelism`` machines crawling concurrently, each advances the
    shared clock by ``latency / parallelism`` so wall-clock accounting
    approximates a parallel fleet without threads.
    """

    frontend: HttpFrontend
    ip: str
    request_latency: float = 0.02
    parallelism: int = 1
    max_retries: int = 6
    initial_backoff: float = 0.5
    max_backoff: float = 8.0
    backoff_seed: int = 0
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    budget: RetryBudget | None = None
    stats: FetchStats = field(default_factory=FetchStats)
    registry: Registry | None = None

    def __post_init__(self) -> None:
        # Decorrelated-jitter RNG: seeded from the campaign backoff seed
        # plus a stable per-IP salt (crc32, never Python's salted hash),
        # so two machines never share a jitter stream yet every run with
        # the same seed replays the same waits.
        self._jitter_rng = np.random.default_rng(
            [self.backoff_seed, zlib.crc32(self.ip.encode("utf-8"))]
        )
        registry = self.registry if self.registry is not None else get_registry()
        self._m_latency = registry.histogram(
            "crawler.fetch_virtual_seconds",
            "Virtual time per completed fetch, per crawl machine",
            labels=("machine",),
        )
        self._m_retries = registry.counter(
            "crawler.fetch_retries",
            "Retries performed, per machine and transient cause",
            labels=("machine", "reason"),
        )

    def _next_backoff(self, prev: float) -> float:
        """Capped decorrelated jitter: ``min(cap, U(initial, prev * 3))``."""
        prev = prev if prev > 0.0 else self.initial_backoff
        draw = float(self._jitter_rng.uniform(self.initial_backoff, prev * 3.0))
        return min(self.max_backoff, draw)

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch one profile page; None for 404, FetchError when exhausted."""
        clock = self.frontend.clock
        started = clock.now()
        backoff = 0.0
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            clock.advance(self.request_latency / max(1, self.parallelism))
            response = self.frontend.handle(Request(f"/u/{user_id}", self.ip))
            if response.ok:
                if response.slow_by:
                    # Fault-injected extra latency: the machine is busy
                    # for it, like request_latency it shrinks with fleet
                    # parallelism.
                    self.stats.slow_responses += 1
                    self.stats.time_slowed += response.slow_by
                    clock.advance(response.slow_by / max(1, self.parallelism))
                self.breaker.record_success(clock.now())
                self.stats.pages_fetched += 1
                self._m_latency.observe(clock.now() - started, machine=self.ip)
                return response.payload
            if response.status == STATUS_NOT_FOUND:
                self.breaker.record_success(clock.now())
                self.stats.not_found += 1
                return None
            if not response.should_retry:
                raise FetchError(
                    f"unexpected status {response.status} for user {user_id}"
                )
            throttled = response.status == STATUS_TOO_MANY_REQUESTS
            if throttled:
                # Throttling is ordinary backpressure: it touches neither
                # the breaker nor the retry budget.
                self.stats.throttled += 1
                reason = "throttled"
            else:
                # An injected fault (503 flake/outage, 403 ban, 408
                # timeout): the breaker hears about it either way.
                if response.status == STATUS_FORBIDDEN:
                    self.stats.banned += 1
                    reason = "banned"
                elif response.status == STATUS_REQUEST_TIMEOUT:
                    self.stats.timeouts += 1
                    reason = "timeout"
                else:
                    self.stats.server_errors += 1
                    reason = "server_error"
                self.breaker.record_failure(clock.now())
            if attempt == attempts - 1:
                # Terminal failure: no further attempt follows, so the
                # backoff wait is never paid — no clock advance, no
                # time_waiting, no budget spend, no jitter draw.
                break
            if throttled:
                wait = max(response.retry_after, MIN_THROTTLE_WAIT)
            else:
                # The retry is paid for from the campaign budget.
                if self.budget is not None and not self.budget.spend():
                    self._m_retries.inc(machine=self.ip, reason="budget_exhausted")
                    raise FetchError(
                        f"retry budget exhausted fetching user {user_id}"
                    )
                backoff = self._next_backoff(backoff)
                wait = max(response.retry_after, backoff)
            self._m_retries.inc(machine=self.ip, reason=reason)
            self.stats.time_waiting += wait
            # Waits are NOT divided by fleet parallelism: the server's
            # retry-after is wall-clock time that must actually elapse
            # before the per-IP bucket refills.
            clock.advance(wait)
        raise FetchError(f"retries exhausted fetching user {user_id}")

    # -- checkpointing (see repro.store) ----------------------------------

    def export_resilience_state(self) -> dict:
        """Jitter-RNG and breaker state (stats are exported by the pool)."""
        state: dict = {
            "jitter_rng": _rng_state_to_json(self._jitter_rng),
            "breaker": self.breaker.export_state(),
        }
        return state

    def restore_resilience_state(self, state: dict) -> None:
        _rng_state_from_json(self._jitter_rng, state["jitter_rng"])
        self.breaker.restore_state(state["breaker"])


def _rng_state_to_json(rng: np.random.Generator) -> dict:
    """A Generator's bit-generator state as a JSON-clean dict."""
    state = rng.bit_generator.state
    return {
        "bit_generator": state["bit_generator"],
        "state": {k: int(v) for k, v in state["state"].items()},
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def _rng_state_from_json(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = {
        "bit_generator": state["bit_generator"],
        "state": {k: int(v) for k, v in state["state"].items()},
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }
