"""Fetching profile pages over the simulated HTTP front end.

One :class:`Fetcher` models one crawl machine: it has its own IP address,
respects the server's throttling by sleeping (on the virtual clock) for
the advertised retry-after, and retries transient 503s with exponential
backoff — the operational realities of the authors' 46-day crawl.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.http import (
    HttpFrontend,
    Request,
    STATUS_NOT_FOUND,
    STATUS_SERVER_ERROR,
    STATUS_TOO_MANY_REQUESTS,
)
from repro.platform.pages import ProfilePage


class FetchError(Exception):
    """A page could not be retrieved after exhausting retries."""


@dataclass
class FetchStats:
    """Counters for one fetcher (one crawl machine)."""

    pages_fetched: int = 0
    not_found: int = 0
    throttled: int = 0
    server_errors: int = 0
    time_waiting: float = 0.0


@dataclass
class Fetcher:
    """HTTP client for one crawl machine.

    ``request_latency`` is the virtual time one request occupies; with
    ``parallelism`` machines crawling concurrently, each advances the
    shared clock by ``latency / parallelism`` so wall-clock accounting
    approximates a parallel fleet without threads.
    """

    frontend: HttpFrontend
    ip: str
    request_latency: float = 0.02
    parallelism: int = 1
    max_retries: int = 6
    stats: FetchStats = field(default_factory=FetchStats)

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch one profile page; None for 404, FetchError when exhausted."""
        backoff = 0.5
        for _ in range(self.max_retries + 1):
            self.frontend.clock.advance(self.request_latency / max(1, self.parallelism))
            response = self.frontend.handle(Request(f"/u/{user_id}", self.ip))
            if response.ok:
                self.stats.pages_fetched += 1
                return response.payload
            if response.status == STATUS_NOT_FOUND:
                self.stats.not_found += 1
                return None
            if response.status == STATUS_TOO_MANY_REQUESTS:
                self.stats.throttled += 1
                wait = max(response.retry_after, 0.01)
            elif response.status == STATUS_SERVER_ERROR:
                self.stats.server_errors += 1
                wait = backoff
                backoff *= 2.0
            else:
                raise FetchError(f"unexpected status {response.status} for user {user_id}")
            self.stats.time_waiting += wait
            # Waits are NOT divided by fleet parallelism: the server's
            # retry-after is wall-clock time that must actually elapse
            # before the per-IP bucket refills.
            self.frontend.clock.advance(wait)
        raise FetchError(f"retries exhausted fetching user {user_id}")
