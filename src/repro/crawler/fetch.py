"""Fetching profile pages over the simulated HTTP front end.

One :class:`Fetcher` models one crawl machine: it has its own IP address,
respects the server's throttling by sleeping (on the virtual clock) for
the advertised retry-after, and retries transient 503s with exponential
backoff — the operational realities of the authors' 46-day crawl.

Each fetcher publishes a per-machine virtual-latency histogram and retry
counters to the metrics registry (see ``docs/observability.md``), so a
study run can show how evenly the fleet's load and throttle pressure
were spread.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.obs.metrics import Registry, get_registry
from repro.platform.http import (
    HttpFrontend,
    Request,
    STATUS_NOT_FOUND,
    STATUS_TOO_MANY_REQUESTS,
)
from repro.platform.pages import ProfilePage


class FetchError(Exception):
    """A page could not be retrieved after exhausting retries."""


#: Floor applied to throttle waits so a zero retry-after cannot spin.
MIN_THROTTLE_WAIT = 0.01


@dataclass
class FetchStats:
    """Counters for one fetcher (one crawl machine).

    All fields must stay numeric and additive: :meth:`merge` combines
    stats field-by-field via :func:`dataclasses.fields`, so newly added
    counters aggregate without touching any call site.
    """

    pages_fetched: int = 0
    not_found: int = 0
    throttled: int = 0
    server_errors: int = 0
    time_waiting: float = 0.0

    def merge(self, other: "FetchStats") -> "FetchStats":
        """Add ``other``'s counters into self (in place); returns self."""
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "FetchStats") -> "FetchStats":
        if not isinstance(other, FetchStats):
            return NotImplemented
        return FetchStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in dataclasses.fields(self)
            }
        )

    __radd__ = __add__


@dataclass
class Fetcher:
    """HTTP client for one crawl machine.

    ``request_latency`` is the virtual time one request occupies; with
    ``parallelism`` machines crawling concurrently, each advances the
    shared clock by ``latency / parallelism`` so wall-clock accounting
    approximates a parallel fleet without threads.
    """

    frontend: HttpFrontend
    ip: str
    request_latency: float = 0.02
    parallelism: int = 1
    max_retries: int = 6
    stats: FetchStats = field(default_factory=FetchStats)
    registry: Registry | None = None

    def __post_init__(self) -> None:
        registry = self.registry if self.registry is not None else get_registry()
        self._m_latency = registry.histogram(
            "crawler.fetch_virtual_seconds",
            "Virtual time per completed fetch, per crawl machine",
            labels=("machine",),
        )
        self._m_retries = registry.counter(
            "crawler.fetch_retries",
            "Retries performed, per machine and transient cause",
            labels=("machine", "reason"),
        )

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch one profile page; None for 404, FetchError when exhausted."""
        clock = self.frontend.clock
        started = clock.now()
        backoff = 0.5
        for _ in range(self.max_retries + 1):
            clock.advance(self.request_latency / max(1, self.parallelism))
            response = self.frontend.handle(Request(f"/u/{user_id}", self.ip))
            if response.ok:
                self.stats.pages_fetched += 1
                self._m_latency.observe(clock.now() - started, machine=self.ip)
                return response.payload
            if response.status == STATUS_NOT_FOUND:
                self.stats.not_found += 1
                return None
            if not response.should_retry:
                raise FetchError(
                    f"unexpected status {response.status} for user {user_id}"
                )
            # Transient (429/503): one shared wait-and-retry path.
            if response.status == STATUS_TOO_MANY_REQUESTS:
                self.stats.throttled += 1
                reason = "throttled"
                wait = max(response.retry_after, MIN_THROTTLE_WAIT)
            else:
                self.stats.server_errors += 1
                reason = "server_error"
                wait = backoff
                backoff *= 2.0
            self._m_retries.inc(machine=self.ip, reason=reason)
            self.stats.time_waiting += wait
            # Waits are NOT divided by fleet parallelism: the server's
            # retry-after is wall-clock time that must actually elapse
            # before the per-IP bucket refills.
            clock.advance(wait)
        raise FetchError(f"retries exhausted fetching user {user_id}")
