"""Alternative graph-sampling strategies: the Section 2.2 caveat, built.

The paper acknowledges that BFS crawling "exhibits several well-known
limitations such as the bias towards sampling high degree nodes, which
may affect the degree distribution", citing Gjoka et al. and Ribeiro &
Towsley. This module implements the estimators those works study, all
operating — like the BFS crawler — purely through public profile pages:

* :class:`RandomWalkSampler` — a simple random walk over the undirected
  contact structure; stationary probability ∝ degree, so raw RW samples
  are degree-biased;
* :class:`MHRWSampler` — Metropolis-Hastings random walk, which rejects
  moves toward high-degree users with probability 1 - deg(u)/deg(v) and
  therefore samples *uniformly* in the limit;
* :func:`reweighted_mean_degree` — the Hansen-Hurwitz (1/degree)
  correction that unbiases plain RW estimates.

Together with the BFS-coverage ablation these quantify how much of the
paper's measured degree distribution is crawler artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.platform.pages import ProfilePage

from .fetch import Fetcher
from .parse import parse_profile_page


@dataclass
class WalkSample:
    """The product of a walk: the visited user ids and their degrees."""

    user_ids: list[int] = field(default_factory=list)
    degrees: list[int] = field(default_factory=list)
    rejected_moves: int = 0

    @property
    def n_steps(self) -> int:
        return len(self.user_ids)

    def mean_degree(self) -> float:
        if not self.degrees:
            return float("nan")
        return float(np.mean(self.degrees))

    def unique_users(self) -> int:
        return len(set(self.user_ids))


def _neighbors_and_degree(page: ProfilePage) -> tuple[list[int], int, bool]:
    """Undirected contact list, degree, and list visibility from a page.

    The degree estimate uses the *declared* counts (not the truncated
    lists), as a careful measurement study would. Users who hide their
    circle lists (``visible=False``) are dead ends for a walker — the
    samplers refuse to move onto them.
    """
    profile = parse_profile_page(page)
    visible = profile.in_list is not None or profile.out_list is not None
    neighbors: set[int] = set()
    if profile.out_list is not None:
        neighbors.update(profile.out_list)
    if profile.in_list is not None:
        neighbors.update(profile.in_list)
    declared = profile.declared_in + profile.declared_out
    return sorted(neighbors), max(declared, len(neighbors)), visible


class RandomWalkSampler:
    """Plain random walk; stationary distribution ∝ node degree."""

    def __init__(self, fetcher: Fetcher, rng: np.random.Generator):
        self._fetcher = fetcher
        self._rng = rng

    def walk(self, seed: int, n_steps: int, burn_in: int = 0) -> WalkSample:
        """Walk ``n_steps`` recorded steps after ``burn_in`` unrecorded ones.

        Moves onto users whose circle lists are hidden are refused (the
        walker cannot continue from there); the walk stays put for that
        step instead, which is what a real page-scraping walker does.
        """
        sample = WalkSample()
        current = seed
        page = self._fetcher.fetch_profile(current)
        if page is None:
            raise ValueError(f"seed user {seed} not crawlable")
        neighbors, degree, visible = _neighbors_and_degree(page)
        if not visible or not neighbors:
            raise ValueError(f"seed user {seed} exposes no contacts to walk on")
        total = burn_in + n_steps
        for step in range(total):
            if step >= burn_in:
                sample.user_ids.append(current)
                sample.degrees.append(degree)
            candidate = int(self._rng.choice(neighbors))
            candidate_page = self._fetcher.fetch_profile(candidate)
            if candidate_page is None:
                continue
            c_neighbors, c_degree, c_visible = _neighbors_and_degree(candidate_page)
            if not c_visible or not c_neighbors:
                sample.rejected_moves += 1
                continue
            current, neighbors, degree = candidate, c_neighbors, c_degree
        return sample


class MHRWSampler:
    """Metropolis-Hastings random walk — asymptotically uniform samples."""

    def __init__(self, fetcher: Fetcher, rng: np.random.Generator):
        self._fetcher = fetcher
        self._rng = rng

    def walk(self, seed: int, n_steps: int, burn_in: int = 0) -> WalkSample:
        sample = WalkSample()
        page = self._fetcher.fetch_profile(seed)
        if page is None:
            raise ValueError(f"seed user {seed} not crawlable")
        current = seed
        neighbors, degree, visible = _neighbors_and_degree(page)
        if not visible or not neighbors:
            raise ValueError(f"seed user {seed} exposes no contacts to walk on")
        total = burn_in + n_steps
        for step in range(total):
            if step >= burn_in:
                sample.user_ids.append(current)
                sample.degrees.append(degree)
            candidate = int(self._rng.choice(neighbors))
            candidate_page = self._fetcher.fetch_profile(candidate)
            if candidate_page is None:
                continue
            c_neighbors, c_degree, c_visible = _neighbors_and_degree(candidate_page)
            if not c_visible or not c_neighbors:
                sample.rejected_moves += 1
                continue
            # Accept with min(1, deg(u)/deg(v)); rejecting keeps us put.
            if self._rng.random() <= degree / max(1, c_degree):
                current, neighbors, degree = candidate, c_neighbors, c_degree
            else:
                sample.rejected_moves += 1
        return sample


def reweighted_mean_degree(sample: WalkSample) -> float:
    """Hansen-Hurwitz estimator: unbiases a plain-RW degree estimate.

    Under a degree-proportional sample, E[1/d] weighting recovers the
    uniform mean: ``mean = n / sum(1/d_i)`` (harmonic mean of degrees).
    """
    degrees = np.array(sample.degrees, dtype=float)
    degrees = degrees[degrees > 0]
    if len(degrees) == 0:
        return float("nan")
    return float(len(degrees) / np.sum(1.0 / degrees))


@dataclass(frozen=True)
class SamplingBiasReport:
    """Mean-degree estimates per strategy, against the uniform truth."""

    true_mean_degree: float
    bfs_mean_degree: float
    rw_mean_degree: float
    rw_reweighted_mean_degree: float
    mhrw_mean_degree: float

    def bias_of(self, estimate: float) -> float:
        """Relative bias of an estimate vs the uniform truth."""
        if self.true_mean_degree == 0:
            return float("nan")
        return estimate / self.true_mean_degree - 1.0
