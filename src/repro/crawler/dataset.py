"""The crawl dataset: profiles + edges + crawl accounting.

The in-memory product of a crawl, convertible to the analysis graph
(:class:`repro.graph.csr.CSRGraph`), and serialisable to disk (an ``npz``
for the edge arrays plus a JSON-lines file for profiles) so expensive
crawls can be archived and reloaded — the role of the authors' public
dataset release.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.platform.models import (
    ContactInfo,
    Gender,
    LookingFor,
    Place,
    Relationship,
)

from .parse import ParsedProfile


@dataclass
class CrawlStats:
    """Aggregate accounting of one crawl campaign."""

    pages_fetched: int = 0
    not_found: int = 0
    throttled: int = 0
    server_errors: int = 0
    virtual_duration: float = 0.0
    n_machines: int = 0
    #: Users seen in anyone's circle list (crawled or not) — the paper's
    #: 35.1M discovered vs 27.5M crawled distinction.
    discovered: int = 0
    # -- chaos accounting (see repro.faults / docs/faults.md) ------------
    #: Retries caused by injected 403 bans and 408 timeouts.
    banned: int = 0
    timeouts: int = 0
    #: Successful responses a fault rule slowed down.
    slow_responses: int = 0
    #: Pages whose payload arrived corrupt and failed to parse.
    parse_errors: int = 0
    #: Pages that exhausted retries and stayed dead after redrive.
    dead_lettered: int = 0
    #: Dead-lettered pages recovered by end-of-crawl redrive rounds.
    redriven: int = 0


@dataclass
class CrawlDataset:
    """Everything a crawl produced."""

    profiles: dict[int, ParsedProfile]
    sources: np.ndarray
    targets: np.ndarray
    stats: CrawlStats = field(default_factory=CrawlStats)

    @property
    def n_profiles(self) -> int:
        return len(self.profiles)

    @property
    def n_edges(self) -> int:
        return len(self.sources)

    def node_ids(self) -> np.ndarray:
        """All user ids present: crawled profiles plus discovered endpoints."""
        pools = [np.fromiter(self.profiles, dtype=np.int64, count=len(self.profiles))]
        if len(self.sources):
            pools.extend([self.sources, self.targets])
        return np.unique(np.concatenate(pools))

    def to_csr(self) -> CSRGraph:
        """The directed social graph G(V, E) of Section 3."""
        return CSRGraph.from_edge_arrays(
            self.sources, self.targets, node_ids=self.node_ids()
        )

    def to_digraph(self) -> DiGraph:
        graph = DiGraph.from_edges(zip(self.sources, self.targets))
        for user_id in self.profiles:
            graph.add_node(int(user_id))
        return graph

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` with basic node attributes.

        Convenience for downstream users; networkx is an optional
        dependency (dev extra) and is imported lazily.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(int(n) for n in self.node_ids())
        graph.add_edges_from(
            (int(u), int(v)) for u, v in zip(self.sources, self.targets)
        )
        for user_id, profile in self.profiles.items():
            node = graph.nodes[int(user_id)]
            node["name"] = profile.name
            node["crawled"] = True
            country = profile.country()
            if country is not None:
                node["country"] = country
        return graph

    #: Rows per buffered chunk when streaming edge lists to disk.
    EDGE_LIST_CHUNK = 1 << 16

    def write_edge_list(self, path: str | Path, chunk_size: int | None = None) -> None:
        """Write a plain two-column edge list (the classic release format).

        Rows stream out in buffered chunks: each chunk is converted to
        native ints once (``tolist``) and written as a single string, so
        a large crawl never materialises per-edge numpy scalars or one
        Python string per row for the whole array.
        """
        chunk = self.EDGE_LIST_CHUNK if chunk_size is None else chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be positive")
        with open(path, "w", encoding="utf-8") as handle:
            for start in range(0, len(self.sources), chunk):
                stop = start + chunk
                rows = zip(
                    self.sources[start:stop].tolist(),
                    self.targets[start:stop].tolist(),
                )
                handle.write("".join([f"{u}\t{v}\n" for u, v in rows]))

    # -- serialisation -------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Write ``edges.npz`` and ``profiles.jsonl`` under a directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            directory / "edges.npz", sources=self.sources, targets=self.targets
        )
        with open(directory / "profiles.jsonl", "w", encoding="utf-8") as handle:
            for profile in self.profiles.values():
                handle.write(json.dumps(profile_to_json(profile)) + "\n")
        with open(directory / "stats.json", "w", encoding="utf-8") as handle:
            json.dump(vars(self.stats), handle)

    @classmethod
    def load(cls, directory: str | Path) -> "CrawlDataset":
        directory = Path(directory)
        with np.load(directory / "edges.npz") as arrays:
            sources = arrays["sources"]
            targets = arrays["targets"]
        profiles: dict[int, ParsedProfile] = {}
        with open(directory / "profiles.jsonl", encoding="utf-8") as handle:
            for line in handle:
                profile = profile_from_json(json.loads(line))
                profiles[profile.user_id] = profile
        stats = CrawlStats()
        stats_path = directory / "stats.json"
        if stats_path.exists():
            with open(stats_path, encoding="utf-8") as handle:
                stats = CrawlStats(**json.load(handle))
        return cls(profiles=profiles, sources=sources, targets=targets, stats=stats)


# -- JSON codecs for the typed field values ------------------------------------

def _encode_value(value: Any) -> Any:
    if isinstance(value, (Gender, Relationship, LookingFor)):
        return {"__enum__": type(value).__name__, "value": value.value}
    if isinstance(value, Place):
        return {
            "__place__": True,
            "name": value.name,
            "lat": value.latitude,
            "lon": value.longitude,
            "country": value.country,
        }
    if isinstance(value, ContactInfo):
        return {
            "__contact__": True,
            "phone": value.phone,
            "email": value.email,
            "address": value.address,
        }
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


_ENUMS = {"Gender": Gender, "Relationship": Relationship, "LookingFor": LookingFor}


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__enum__" in value:
            return _ENUMS[value["__enum__"]](value["value"])
        if value.get("__place__"):
            return Place(value["name"], value["lat"], value["lon"], value["country"])
        if value.get("__contact__"):
            return ContactInfo(value["phone"], value["email"], value["address"])
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def profile_to_json(profile: ParsedProfile) -> dict:
    """One profile as a JSON-ready dict — the ``profiles.jsonl`` row format.

    Also the payload of the store's journal page records
    (:mod:`repro.store.campaign`), so archives and journals replay
    through the same encoders.
    """
    return {
        "user_id": profile.user_id,
        "name": profile.name,
        "fields": {k: _encode_value(v) for k, v in profile.fields.items()},
        "in_list": list(profile.in_list) if profile.in_list is not None else None,
        "out_list": list(profile.out_list) if profile.out_list is not None else None,
        "declared_in": profile.declared_in,
        "declared_out": profile.declared_out,
    }


def profile_from_json(record: dict) -> ParsedProfile:
    return ParsedProfile(
        user_id=record["user_id"],
        name=record["name"],
        fields={k: _decode_value(v) for k, v in record["fields"].items()},
        in_list=tuple(record["in_list"]) if record["in_list"] is not None else None,
        out_list=tuple(record["out_list"]) if record["out_list"] is not None else None,
        declared_in=record["declared_in"],
        declared_out=record["declared_out"],
    )
