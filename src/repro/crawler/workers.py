"""The crawl fleet: several machines with distinct IP addresses.

The authors used 11 machines to spread the request load (Section 2.2);
:class:`MachinePool` models that fleet on the simulated clock. Requests
are issued round-robin, which both balances load and keeps every IP under
the server's per-IP rate limit.
"""

from __future__ import annotations

import dataclasses

from repro.obs.metrics import Registry, get_registry
from repro.platform.http import HttpFrontend
from repro.platform.pages import ProfilePage

from .fetch import Fetcher, FetchStats


def publish_fetch_stats(stats: FetchStats, registry: Registry | None = None) -> None:
    """Metrics bridge: export every FetchStats field as a pool gauge.

    Driven by :func:`dataclasses.fields`, so counters added to
    :class:`FetchStats` show up in the registry (and in run reports)
    automatically, one gauge ``crawler.pool_<field>`` each.
    """
    registry = registry if registry is not None else get_registry()
    for f in dataclasses.fields(stats):
        registry.gauge(
            f"crawler.pool_{f.name}", f"Fleet-combined FetchStats.{f.name}"
        ).set(float(getattr(stats, f.name)))


class MachinePool:
    """Round-robin scheduler over a fleet of crawl machines."""

    def __init__(
        self,
        frontend: HttpFrontend,
        n_machines: int = 11,
        request_latency: float = 0.02,
    ):
        if n_machines < 1:
            raise ValueError("need at least one crawl machine")
        self.fetchers = [
            Fetcher(
                frontend=frontend,
                ip=f"10.0.0.{i + 1}",
                request_latency=request_latency,
                parallelism=n_machines,
            )
            for i in range(n_machines)
        ]
        self._next = 0

    @property
    def n_machines(self) -> int:
        return len(self.fetchers)

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch via the next machine in rotation."""
        fetcher = self.fetchers[self._next]
        self._next = (self._next + 1) % len(self.fetchers)
        return fetcher.fetch_profile(user_id)

    def combined_stats(self) -> FetchStats:
        """Fleet-wide totals, merged field-by-field (new fields included)."""
        total = FetchStats()
        for fetcher in self.fetchers:
            total.merge(fetcher.stats)
        return total

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        """Rotation cursor plus per-machine counters, JSON-ready."""
        return {
            "next": self._next,
            "fetchers": [dataclasses.asdict(f.stats) for f in self.fetchers],
        }

    def restore_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot onto this pool.

        The pool must have been built with the same machine count — a
        checkpoint taken on an 11-machine fleet cannot resume on 4.
        """
        per_machine = state["fetchers"]
        if len(per_machine) != len(self.fetchers):
            raise ValueError(
                f"checkpoint covers {len(per_machine)} machines, "
                f"pool has {len(self.fetchers)}"
            )
        self._next = int(state["next"]) % len(self.fetchers)
        for fetcher, stats in zip(self.fetchers, per_machine):
            fetcher.stats = FetchStats(**stats)
