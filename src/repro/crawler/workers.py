"""The crawl fleet: several machines with distinct IP addresses.

The authors used 11 machines to spread the request load (Section 2.2);
:class:`MachinePool` models that fleet on the simulated clock. Requests
are issued round-robin, which both balances load and keeps every IP under
the server's per-IP rate limit.
"""

from __future__ import annotations

from repro.platform.http import HttpFrontend
from repro.platform.pages import ProfilePage

from .fetch import Fetcher, FetchStats


class MachinePool:
    """Round-robin scheduler over a fleet of crawl machines."""

    def __init__(
        self,
        frontend: HttpFrontend,
        n_machines: int = 11,
        request_latency: float = 0.02,
    ):
        if n_machines < 1:
            raise ValueError("need at least one crawl machine")
        self.fetchers = [
            Fetcher(
                frontend=frontend,
                ip=f"10.0.0.{i + 1}",
                request_latency=request_latency,
                parallelism=n_machines,
            )
            for i in range(n_machines)
        ]
        self._next = 0

    @property
    def n_machines(self) -> int:
        return len(self.fetchers)

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch via the next machine in rotation."""
        fetcher = self.fetchers[self._next]
        self._next = (self._next + 1) % len(self.fetchers)
        return fetcher.fetch_profile(user_id)

    def combined_stats(self) -> FetchStats:
        total = FetchStats()
        for fetcher in self.fetchers:
            total.pages_fetched += fetcher.stats.pages_fetched
            total.not_found += fetcher.stats.not_found
            total.throttled += fetcher.stats.throttled
            total.server_errors += fetcher.stats.server_errors
            total.time_waiting += fetcher.stats.time_waiting
        return total
