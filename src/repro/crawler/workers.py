"""The crawl fleet: several machines with distinct IP addresses.

The authors used 11 machines to spread the request load (Section 2.2);
:class:`MachinePool` models that fleet on the simulated clock. Requests
are issued round-robin over *healthy* machines: each machine carries a
circuit breaker (see :mod:`repro.crawler.resilience`), and a machine
whose breaker is open — banned, or mid-outage from the server's point of
view — is quarantined and skipped until its cooldown lapses. With every
breaker closed the rotation is exactly the classic round-robin, so
fault-free crawls are unchanged.
"""

from __future__ import annotations

import dataclasses

from repro.obs.metrics import Registry, get_registry
from repro.platform.http import HttpFrontend
from repro.platform.pages import ProfilePage

from .fetch import Fetcher, FetchStats
from .resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    ResiliencePolicy,
    RetryBudget,
)


def publish_fetch_stats(stats: FetchStats, registry: Registry | None = None) -> None:
    """Metrics bridge: export every FetchStats field as a pool gauge.

    Driven by :func:`dataclasses.fields`, so counters added to
    :class:`FetchStats` show up in the registry (and in run reports)
    automatically, one gauge ``crawler.pool_<field>`` each.
    """
    registry = registry if registry is not None else get_registry()
    for f in dataclasses.fields(stats):
        registry.gauge(
            f"crawler.pool_{f.name}", f"Fleet-combined FetchStats.{f.name}"
        ).set(float(getattr(stats, f.name)))


def publish_pool_health(pool: "MachinePool", registry: Registry | None = None) -> None:
    """Export fleet health: per-machine breaker state and open counts.

    Breaker state is encoded 0=closed, 1=half_open, 2=open so dashboards
    can plot the fleet as a heat strip.  Called at the same cadence as
    :func:`publish_fetch_stats` (checkpoints and crawl end), never on the
    per-request hot path.
    """
    registry = registry if registry is not None else get_registry()
    now = pool.frontend.clock.now()
    g_state = registry.gauge(
        "crawler.breaker_state",
        "Circuit-breaker state per machine (0=closed, 1=half_open, 2=open)",
        labels=("machine",),
    )
    g_opens = registry.gauge(
        "crawler.breaker_opens",
        "Times each machine's breaker has opened",
        labels=("machine",),
    )
    encoding = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0, BREAKER_OPEN: 2.0}
    for fetcher in pool.fetchers:
        state = fetcher.breaker.state(now)
        if state not in encoding:
            # A silent default would plot an unknown state as half-open;
            # better to fail loudly than publish a wrong dashboard.
            raise ValueError(f"unrecognised breaker state {state!r}")
        g_state.set(encoding[state], machine=fetcher.ip)
        g_opens.set(float(fetcher.breaker.opens), machine=fetcher.ip)
    registry.gauge(
        "crawler.quarantine_waits", "Times the whole fleet was quarantined at once"
    ).set(float(pool.quarantine_waits))
    registry.gauge(
        "crawler.time_quarantined",
        "Virtual seconds spent waiting out whole-fleet quarantine",
    ).set(pool.time_quarantined)
    if pool.budget.budget is not None:
        registry.gauge(
            "crawler.retry_budget_remaining", "Campaign retry budget left"
        ).set(float(pool.budget.remaining))


class MachinePool:
    """Health-aware round-robin scheduler over a fleet of crawl machines."""

    def __init__(
        self,
        frontend: HttpFrontend,
        n_machines: int = 11,
        request_latency: float = 0.02,
        policy: ResiliencePolicy | None = None,
    ):
        if n_machines < 1:
            raise ValueError("need at least one crawl machine")
        self.frontend = frontend
        self.policy = policy if policy is not None else ResiliencePolicy()
        #: Campaign-wide retry budget, shared by every fetcher.
        self.budget: RetryBudget = self.policy.make_budget()
        self.fetchers = [
            Fetcher(
                frontend=frontend,
                ip=f"10.0.0.{i + 1}",
                request_latency=request_latency,
                parallelism=n_machines,
                max_retries=self.policy.max_retries,
                initial_backoff=self.policy.initial_backoff,
                max_backoff=self.policy.max_backoff,
                backoff_seed=self.policy.backoff_seed,
                breaker=self.policy.make_breaker(),
                budget=self.budget,
            )
            for i in range(n_machines)
        ]
        self._next = 0
        #: Times every machine was quarantined at once (the pool then
        #: waits out the soonest cooldown) and the virtual time it cost.
        self.quarantine_waits = 0
        self.time_quarantined = 0.0

    @property
    def n_machines(self) -> int:
        return len(self.fetchers)

    def _select(self) -> Fetcher:
        """Next healthy machine in rotation; waits out a full quarantine.

        With all breakers closed this is plain round-robin.  When every
        machine is quarantined the pool advances the clock to the soonest
        breaker cooldown so that machine can probe — the fleet equivalent
        of the operators waiting out a site-wide ban.
        """
        now = self.frontend.clock.now()
        n = len(self.fetchers)
        for offset in range(n):
            idx = (self._next + offset) % n
            if self.fetchers[idx].breaker.allow(now):
                self._next = (idx + 1) % n
                return self.fetchers[idx]
        waits = [f.breaker.cooldown_remaining(now) for f in self.fetchers]
        idx = min(range(n), key=waits.__getitem__)
        self.quarantine_waits += 1
        self.time_quarantined += waits[idx]
        self.frontend.clock.advance(waits[idx])
        self._next = (idx + 1) % n
        return self.fetchers[idx]

    def fetch_profile(self, user_id: int) -> ProfilePage | None:
        """Fetch via the next healthy machine in rotation."""
        return self._select().fetch_profile(user_id)

    def combined_stats(self) -> FetchStats:
        """Fleet-wide totals, merged field-by-field (new fields included)."""
        total = FetchStats()
        for fetcher in self.fetchers:
            total.merge(fetcher.stats)
        return total

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        """Rotation cursor, per-machine counters, and resilience state.

        The ``resilience`` block (jitter RNGs, breakers, budget,
        quarantine counters) restores the fleet's exact retry timing, so
        a resumed crawl replays the same virtual timeline it would have
        lived uninterrupted.
        """
        return {
            "next": self._next,
            "fetchers": [dataclasses.asdict(f.stats) for f in self.fetchers],
            "resilience": {
                "fetchers": [f.export_resilience_state() for f in self.fetchers],
                "budget": self.budget.export_state(),
                "quarantine_waits": self.quarantine_waits,
                "time_quarantined": self.time_quarantined,
            },
        }

    def restore_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot onto this pool.

        The pool must have been built with the same machine count — a
        checkpoint taken on an 11-machine fleet cannot resume on 4.
        Snapshots from before the resilience layer (no ``resilience``
        block) restore with fresh breakers and RNGs.
        """
        per_machine = state["fetchers"]
        if len(per_machine) != len(self.fetchers):
            raise ValueError(
                f"checkpoint covers {len(per_machine)} machines, "
                f"pool has {len(self.fetchers)}"
            )
        self._next = int(state["next"]) % len(self.fetchers)
        for fetcher, stats in zip(self.fetchers, per_machine):
            known = {f.name for f in dataclasses.fields(FetchStats)}
            fetcher.stats = FetchStats(**{k: v for k, v in stats.items() if k in known})
        resilience = state.get("resilience")
        if resilience is not None:
            per_resilience = resilience["fetchers"]
            if len(per_resilience) != len(self.fetchers):
                # zip() would silently truncate, leaving part of the fleet
                # on fresh RNG/breaker state — a corrupted checkpoint must
                # not half-restore.
                raise ValueError(
                    f"resilience block covers {len(per_resilience)} machines, "
                    f"pool has {len(self.fetchers)}"
                )
            for fetcher, sub in zip(self.fetchers, per_resilience):
                fetcher.restore_resilience_state(sub)
            self.budget.restore_state(resilience["budget"])
            self.quarantine_waits = int(resilience["quarantine_waits"])
            self.time_quarantined = float(resilience["time_quarantined"])
