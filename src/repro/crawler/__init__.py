"""Bidirectional BFS crawler over the simulated Google+ service."""

from .bfs import (
    BidirectionalBFSCrawler,
    CrawlConfig,
    CrawlHooks,
    CrawlSnapshot,
    ResumeState,
)
from .dataset import CrawlDataset, CrawlStats, profile_from_json, profile_to_json
from .fetch import Fetcher, FetchError, FetchStats
from .frontier import BFSFrontier
from .graph_sampling import (
    MHRWSampler,
    RandomWalkSampler,
    reweighted_mean_degree,
    SamplingBiasReport,
    WalkSample,
)
from .lost_edges import estimate_lost_edges, LostEdgeEstimate, naive_truncation_loss
from .parse import parse_profile_page, ParsedProfile
from .workers import MachinePool

__all__ = [
    "BFSFrontier",
    "BidirectionalBFSCrawler",
    "CrawlConfig",
    "CrawlDataset",
    "CrawlHooks",
    "CrawlSnapshot",
    "CrawlStats",
    "ResumeState",
    "profile_from_json",
    "profile_to_json",
    "estimate_lost_edges",
    "Fetcher",
    "FetchError",
    "FetchStats",
    "LostEdgeEstimate",
    "MachinePool",
    "MHRWSampler",
    "RandomWalkSampler",
    "reweighted_mean_degree",
    "SamplingBiasReport",
    "WalkSample",
    "naive_truncation_loss",
    "parse_profile_page",
    "ParsedProfile",
]
