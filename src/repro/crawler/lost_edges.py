"""Lost-edge estimation for the 10,000-entry circle-list cap (Section 2.2).

The paper compares the follower counts *declared* on profile pages with
the edges actually present in the collected graph, over the users whose
in-lists exceed the display cap: 915 such users declared 37,185,272
incoming edges while 27,600,503 were collected, putting the loss at 1.6%
of all edges. This module reproduces both the naive truncation loss and
the after-recovery loss (bidirectional crawling recovers most truncated
edges from the other endpoint's out-list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.circles import CIRCLE_DISPLAY_LIMIT

from .dataset import CrawlDataset


@dataclass(frozen=True)
class LostEdgeEstimate:
    """Result of the Section 2.2 accounting."""

    capped_users: int
    declared_edges: int
    collected_edges: int
    total_edges: int
    display_limit: int

    @property
    def missing_edges(self) -> int:
        return max(0, self.declared_edges - self.collected_edges)

    @property
    def lost_fraction(self) -> float:
        """Missing edges over all collected edges — the paper's 1.6%."""
        if self.total_edges == 0:
            return 0.0
        return self.missing_edges / self.total_edges


def estimate_lost_edges(
    dataset: CrawlDataset, display_limit: int = CIRCLE_DISPLAY_LIMIT
) -> LostEdgeEstimate:
    """Apply the paper's lost-edge procedure to a crawl dataset.

    For every crawled user whose declared in-count exceeds the display
    cap, compare the declared count with that user's in-degree in the
    final (bidirectionally recovered) graph.
    """
    capped = [
        p for p in dataset.profiles.values() if p.declared_in > display_limit
    ]
    if not capped:
        return LostEdgeEstimate(0, 0, 0, dataset.n_edges, display_limit)
    capped_ids = np.array(sorted(p.user_id for p in capped), dtype=np.int64)
    declared = sum(p.declared_in for p in capped)
    # In-degree of the capped users in the recovered graph.
    positions = np.searchsorted(capped_ids, dataset.targets)
    positions = np.minimum(positions, len(capped_ids) - 1)
    hits = capped_ids[positions] == dataset.targets
    collected = int(hits.sum())
    return LostEdgeEstimate(
        capped_users=len(capped),
        declared_edges=declared,
        collected_edges=collected,
        total_edges=dataset.n_edges,
        display_limit=display_limit,
    )


@dataclass(frozen=True)
class DeadLetterLossEstimate:
    """Edges presumed lost to pages that stayed dead-lettered.

    A page the crawl never managed to fetch contributes no circle lists
    of its own.  Bidirectional crawling recovers any of its edges whose
    other endpoint was crawled, so the residual loss is estimated as the
    dead page count times the mean *unique* edge yield of a crawled page
    — an upper-bound companion to the display-cap loss of Section 2.2.
    """

    dead_pages: int
    mean_page_yield: float
    total_edges: int

    @property
    def estimated_missing_edges(self) -> float:
        return self.dead_pages * self.mean_page_yield

    @property
    def lost_fraction(self) -> float:
        """Estimated missing edges over all collected edges."""
        if self.total_edges == 0:
            return 0.0
        return self.estimated_missing_edges / self.total_edges


def estimate_dead_letter_loss(dataset: CrawlDataset) -> DeadLetterLossEstimate:
    """Loss attributable to dead-lettered pages (the chaos loss source).

    Uses ``dataset.stats.dead_lettered`` — pages that exhausted retries
    and were never recovered by redrive — and the crawl's own mean new
    edges per page as the yield model.
    """
    dead = dataset.stats.dead_lettered
    if dataset.n_profiles == 0:
        return DeadLetterLossEstimate(dead, 0.0, dataset.n_edges)
    return DeadLetterLossEstimate(
        dead_pages=dead,
        mean_page_yield=dataset.n_edges / dataset.n_profiles,
        total_edges=dataset.n_edges,
    )


def naive_truncation_loss(
    dataset: CrawlDataset, display_limit: int = CIRCLE_DISPLAY_LIMIT
) -> LostEdgeEstimate:
    """Loss if only the truncated in-lists had been used (no recovery)."""
    capped = [
        p for p in dataset.profiles.values() if p.declared_in > display_limit
    ]
    declared = sum(p.declared_in for p in capped)
    shown = sum(len(p.in_list) for p in capped if p.in_list is not None)
    return LostEdgeEstimate(
        capped_users=len(capped),
        declared_edges=declared,
        collected_edges=shown,
        total_edges=dataset.n_edges,
        display_limit=display_limit,
    )
