"""Public-attribute availability (Table 2).

Counts, over all crawled profiles, how many make each of the seventeen
profile attributes publicly visible — the paper's headline: gender is
near-universal (97.7%), education/places/employment sit at 21-27%, and
contact blocks are vanishingly rare (~0.2%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.dataset import CrawlDataset
from repro.platform.fields import FIELD_SPECS


@dataclass(frozen=True)
class AttributeAvailability:
    """One row of Table 2."""

    key: str
    label: str
    available: int
    total: int

    @property
    def percent(self) -> float:
        return 100.0 * self.available / self.total if self.total else 0.0


def attribute_availability(dataset: CrawlDataset) -> list[AttributeAvailability]:
    """Compute Table 2 from a crawl dataset, in the paper's field order."""
    total = dataset.n_profiles
    counts = {spec.key: 0 for spec in FIELD_SPECS}
    for profile in dataset.profiles.values():
        counts["name"] += 1
        for key in profile.fields:
            if key in counts:
                counts[key] += 1
    rows = [
        AttributeAvailability(
            key=spec.key, label=spec.label, available=counts[spec.key], total=total
        )
        for spec in FIELD_SPECS
    ]
    # The paper presents the table sorted by availability, name first.
    rows.sort(key=lambda r: (r.key != "name", -r.available))
    return rows
