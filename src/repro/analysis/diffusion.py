"""Content-diffusion analysis (future work #2 of Section 7).

Given an :class:`~repro.synth.activity.ActivityLog`, measures how
privacy settings and openness shape content sharing:

* the **cascade-size distribution** — heavy-tailed, with hubs seeding
  the big trees (the "information can spread quickly and widely" claim
  of Section 3.3.5 made concrete);
* **public vs circle-scoped reach** — the walled-garden question: how
  much audience does scoping to circles cost;
* **openness and virality by country** — whether cultures that share
  more profile fields also produce more public, farther-travelling
  content (the paper's hypothesised link between §4.3 and content).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.activity import ActivityLog
from repro.synth.profiles import Population


@dataclass(frozen=True)
class ReachComparison:
    """Audience statistics for public vs circle-scoped posts."""

    n_public: int
    n_scoped: int
    public_mean_audience: float
    scoped_mean_audience: float
    public_share: float

    @property
    def reach_ratio(self) -> float:
        """How many times farther public posts travel."""
        if self.scoped_mean_audience == 0:
            return float("inf") if self.public_mean_audience > 0 else float("nan")
        return self.public_mean_audience / self.scoped_mean_audience


@dataclass(frozen=True)
class CountryActivity:
    """Per-country posting culture."""

    country: str
    n_posts: int
    public_share: float
    mean_audience: float


@dataclass(frozen=True)
class DiffusionAnalysis:
    """The full diffusion study."""

    cascade_sizes: np.ndarray
    cascade_depths: np.ndarray
    reach: ReachComparison
    by_country: dict[str, CountryActivity]
    plus_ones_total: int

    def max_cascade(self) -> int:
        return int(self.cascade_sizes.max()) if len(self.cascade_sizes) else 0

    def viral_fraction(self, threshold: int = 5) -> float:
        """Share of cascades growing beyond ``threshold`` reshares."""
        if len(self.cascade_sizes) == 0:
            return float("nan")
        return float((self.cascade_sizes > threshold).mean())


def analyze_diffusion(
    log: ActivityLog,
    population: Population,
    countries: list[str] | None = None,
) -> DiffusionAnalysis:
    """Compute the diffusion study from an activity log."""
    sizes = np.array([c.size for c in log.cascades], dtype=np.int64)
    depths = np.array([c.depth for c in log.cascades], dtype=np.int64)

    public = log.public_cascades()
    scoped = log.scoped_cascades()
    reach = ReachComparison(
        n_public=len(public),
        n_scoped=len(scoped),
        public_mean_audience=(
            float(np.mean([c.audience for c in public])) if public else 0.0
        ),
        scoped_mean_audience=(
            float(np.mean([c.audience for c in scoped])) if scoped else 0.0
        ),
        public_share=len(public) / len(log.cascades) if log.cascades else 0.0,
    )

    wanted = countries
    per_country: dict[str, list] = {}
    for cascade in log.cascades:
        code = population.country_codes[cascade.author_id]
        if wanted is not None and code not in wanted:
            continue
        per_country.setdefault(code, []).append(cascade)
    by_country = {
        code: CountryActivity(
            country=code,
            n_posts=len(cascades),
            public_share=float(np.mean([c.is_public for c in cascades])),
            mean_audience=float(np.mean([c.audience for c in cascades])),
        )
        for code, cascades in per_country.items()
    }
    return DiffusionAnalysis(
        cascade_sizes=sizes,
        cascade_depths=depths,
        reach=reach,
        by_country=by_country,
        plus_ones_total=log.n_plus_ones,
    )
