"""Hub centrality and network robustness.

Section 3.3.1: *"As studied in many other research, hubs play a central
role in information propagation in social networks."* This analysis makes
that claim measurable: remove nodes (targeted by in-degree vs uniformly
at random) and track the giant weakly-connected component — the classic
Albert-Jeong-Barabási attack/failure experiment. A celebrity-hub graph
like Google+ should shatter quickly under targeted removal while barely
noticing random failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.components import UnionFind
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class RobustnessCurve:
    """Giant-WCC share as nodes are removed."""

    removed_fractions: np.ndarray
    giant_fractions: np.ndarray
    strategy: str

    def giant_at(self, removed: float) -> float:
        """Giant share at (the nearest measured) removal fraction."""
        index = int(np.argmin(np.abs(self.removed_fractions - removed)))
        return float(self.giant_fractions[index])

    def collapse_point(self, threshold: float = 0.5) -> float:
        """Smallest removal fraction with giant share below threshold."""
        below = np.flatnonzero(self.giant_fractions < threshold)
        if len(below) == 0:
            return float("nan")
        return float(self.removed_fractions[below[0]])


def _giant_fraction_without(graph: CSRGraph, removed: np.ndarray) -> float:
    """Giant WCC share of the graph with a node subset removed."""
    alive = np.ones(graph.n, dtype=bool)
    alive[removed] = False
    n_alive = int(alive.sum())
    if n_alive == 0:
        return 0.0
    uf = UnionFind(graph.n)
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), graph.out_degrees())
    keep = alive[sources] & alive[graph.indices]
    for u, v in zip(sources[keep], graph.indices[keep]):
        uf.union(int(u), int(v))
    roots: dict[int, int] = {}
    for node in np.flatnonzero(alive):
        root = uf.find(int(node))
        roots[root] = roots.get(root, 0) + 1
    return max(roots.values()) / graph.n


def removal_curve(
    graph: CSRGraph,
    strategy: str,
    rng: np.random.Generator,
    fractions: np.ndarray | None = None,
) -> RobustnessCurve:
    """Giant-component decay under node removal.

    ``strategy`` is ``"targeted"`` (highest in-degree first — attacking
    the celebrities) or ``"random"`` (uniform failures).
    """
    if fractions is None:
        fractions = np.array([0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2])
    if strategy == "targeted":
        order = np.argsort(-graph.in_degrees(), kind="stable")
    elif strategy == "random":
        order = rng.permutation(graph.n)
    else:
        raise ValueError(f"unknown removal strategy: {strategy!r}")
    giants = []
    for fraction in fractions:
        k = int(round(fraction * graph.n))
        giants.append(_giant_fraction_without(graph, order[:k]))
    return RobustnessCurve(
        removed_fractions=np.asarray(fractions, dtype=float),
        giant_fractions=np.array(giants),
        strategy=strategy,
    )


@dataclass(frozen=True)
class RobustnessAnalysis:
    """Targeted-attack vs random-failure comparison."""

    targeted: RobustnessCurve
    random: RobustnessCurve

    def hub_dependence(self, removed: float = 0.05) -> float:
        """Giant-share gap between random failure and targeted attack
        after removing ``removed`` of the nodes — the measured version of
        'hubs play a central role'."""
        return self.random.giant_at(removed) - self.targeted.giant_at(removed)


def analyze_robustness(
    graph: CSRGraph,
    rng: np.random.Generator,
    fractions: np.ndarray | None = None,
) -> RobustnessAnalysis:
    """Run both removal experiments."""
    return RobustnessAnalysis(
        targeted=removal_curve(graph, "targeted", rng, fractions),
        random=removal_curve(graph, "random", rng, fractions),
    )
