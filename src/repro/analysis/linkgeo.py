"""Social links across geography (Section 4.5, Figure 10).

Wraps the country-link graph with the paper's qualitative reads: which
countries are inward looking (high self-loop weight), which are outward
looking, and the US's role as the dominant sink of cross-border links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawler.dataset import CrawlDataset
from repro.geo.country_links import build_country_link_graph, CountryLinkGraph
from repro.geo.index import GeoIndex


@dataclass(frozen=True)
class LinkGeographyAnalysis:
    """Figure 10 plus derived observations."""

    graph: CountryLinkGraph

    def inward_looking(self, threshold: float = 0.5) -> list[str]:
        """Countries keeping more than ``threshold`` of links domestic."""
        return [
            code
            for code in self.graph.countries
            if self.graph.self_loop(code) > threshold
        ]

    def outward_looking(self, threshold: float = 0.4) -> list[str]:
        return [
            code
            for code in self.graph.countries
            if self.graph.self_loop(code) < threshold
        ]

    def us_is_dominant_sink(self) -> bool:
        """True when the US receives the largest cross-border flux from
        a majority of the other countries."""
        countries = self.graph.countries
        if "US" not in countries:
            return False
        wins = 0
        others = [c for c in countries if c != "US"]
        for source in others:
            flux = {
                target: self.graph.weight(source, target)
                for target in countries
                if target != source
            }
            if flux and max(flux, key=flux.get) == "US":
                wins += 1
        return wins > len(others) / 2


def analyze_link_geography(
    dataset: CrawlDataset, geo: GeoIndex, countries: list[str]
) -> LinkGeographyAnalysis:
    """Figure 10."""
    return LinkGeographyAnalysis(
        graph=build_country_link_graph(dataset, geo, countries)
    )
