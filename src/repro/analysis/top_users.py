"""Top-user rankings: Table 1 (global) and Table 5 (per country).

Both tables rank users by crawled in-degree ("how many circles these
users are added to by others") and label them with the occupation shown
on their public profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset
from repro.geo.index import GeoIndex
from repro.graph.csr import CSRGraph
from repro.platform.models import Occupation, OCCUPATION_LABELS
from repro.synth.occupations import jaccard_index

#: Reverse lookup: long-form label -> occupation code.
_LABEL_TO_CODE: dict[str, Occupation] = {
    label: code for code, label in OCCUPATION_LABELS.items()
}


@dataclass(frozen=True)
class TopUser:
    """One row of Table 1."""

    rank: int
    user_id: int
    name: str
    in_degree: int
    occupation: Occupation | None

    @property
    def about(self) -> str:
        if self.occupation is None:
            return "(occupation not public)"
        return OCCUPATION_LABELS[self.occupation]


def occupation_of(dataset: CrawlDataset, user_id: int) -> Occupation | None:
    """Occupation code from a crawled profile's public occupation field."""
    profile = dataset.profiles.get(user_id)
    if profile is None:
        return None
    label = profile.fields.get("occupation")
    if not isinstance(label, str):
        return None
    return _LABEL_TO_CODE.get(label)


def top_users_by_in_degree(
    dataset: CrawlDataset, graph: CSRGraph, k: int = 20
) -> list[TopUser]:
    """Table 1: the ``k`` users most added to circles."""
    in_degrees = graph.in_degrees()
    order = np.argsort(-in_degrees, kind="stable")[:k]
    rows: list[TopUser] = []
    for rank, compact in enumerate(order, start=1):
        user_id = int(graph.node_ids[compact])
        profile = dataset.profiles.get(user_id)
        rows.append(
            TopUser(
                rank=rank,
                user_id=user_id,
                name=profile.name if profile else f"(uncrawled {user_id})",
                in_degree=int(in_degrees[compact]),
                occupation=occupation_of(dataset, user_id),
            )
        )
    return rows


def it_fraction(rows: list[TopUser]) -> float:
    """Share of a top list that is IT-related (the paper's 7-of-20)."""
    if not rows:
        return 0.0
    return sum(1 for r in rows if r.occupation is Occupation.IT) / len(rows)


@dataclass(frozen=True)
class CountryTopRow:
    """One row of Table 5: a country's top-10 occupations plus Jaccard."""

    country: str
    occupations: tuple[Occupation | None, ...]
    jaccard_vs_us: float

    def codes(self) -> str:
        return " ".join(o.value if o else "??" for o in self.occupations)


def top_occupations_by_country(
    dataset: CrawlDataset,
    graph: CSRGraph,
    geo: GeoIndex,
    countries: list[str],
    k: int = 10,
) -> list[CountryTopRow]:
    """Table 5: occupation codes of each country's top-``k`` users.

    Users are grouped by their resolved country; within each country they
    are ranked by in-degree. The Jaccard index compares each country's
    occupation *set* with the US set, as in the paper.
    """
    in_degrees = graph.in_degrees()
    # user id -> in-degree (0 for ids absent from the graph).
    def degree_of(user_id: int) -> int:
        try:
            return int(in_degrees[graph.compact_index(user_id)])
        except KeyError:
            return 0

    by_country: dict[str, list[int]] = {code: [] for code in countries}
    for user_id, code in zip(geo.user_ids, geo.countries):
        if code in by_country:
            by_country[code].append(int(user_id))

    occupation_sets: dict[str, set[Occupation]] = {}
    top_occupations: dict[str, tuple[Occupation | None, ...]] = {}
    for code in countries:
        ranked = sorted(by_country[code], key=degree_of, reverse=True)[:k]
        occupations = tuple(occupation_of(dataset, uid) for uid in ranked)
        top_occupations[code] = occupations
        occupation_sets[code] = {o for o in occupations if o is not None}

    us_set = occupation_sets.get("US", set())
    return [
        CountryTopRow(
            country=code,
            occupations=top_occupations[code],
            jaccard_vs_us=jaccard_index(occupation_sets[code], us_set),
        )
        for code in countries
    ]
