"""Batch recomputation and verification of live streaming figures.

:func:`batch_live_figures` computes, through the *regular* batch
pipeline (:meth:`CrawlDataset.to_csr`, :mod:`repro.graph.degree`,
:mod:`repro.graph.reciprocity`, :mod:`repro.graph.components`,
:func:`repro.analysis.attributes.attribute_availability`), the exact
figure payload the live telemetry layer publishes per epoch.  The only
code shared with the streaming side is the pair of small deterministic
helpers (power-of-two CCDF bucketing and BFS source sampling) — the
comparison is therefore a genuine cross-implementation proof, not a
function compared against itself.

:func:`verify_live_report` closes the loop for a killed campaign: it
matches the surviving report's newest epoch to the checkpoint with the
same ``(n_pages, n_edges)`` cut, reconstructs the dataset for exactly
that prefix from the journal and sealed segments, recomputes the figures
batch-side, and demands bit-equality after a JSON round trip (ints are
exact; floats round-trip exactly through ``repr``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.attributes import attribute_availability
from repro.crawler.dataset import CrawlDataset
from repro.graph.components import weakly_connected_components
from repro.graph.reciprocity import reciprocated_edge_mask
from repro.obs.live.sketches import ccdf_bucket_counts
from repro.obs.live.telemetry import path_length_refresh, validate_live_section
from repro.obs.report import validate_run_report

__all__ = ["batch_live_figures", "verify_live_report"]

#: Figure keys compared bit-for-bit between a live epoch and the batch
#: recomputation ("path_lengths" joins when the epoch's refresh is
#: current — i.e. computed at that epoch's edge cut).
STRICT_FIGURE_KEYS = (
    "n_nodes",
    "n_edges",
    "degree",
    "reciprocity",
    "reciprocal_edges",
    "components",
    "attributes",
    "countries",
)


def batch_live_figures(dataset: CrawlDataset, path_sources: int = 8) -> dict:
    """One epoch's figure payload, computed by the batch pipeline."""
    graph = dataset.to_csr()
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    mask = reciprocated_edge_mask(graph)
    wcc = weakly_connected_components(graph)
    countries: dict[str, int] = {}
    for profile in dataset.profiles.values():
        country = profile.country()
        if country is not None:
            countries[country] = countries.get(country, 0) + 1
    attributes = {
        row.key: row.available for row in attribute_availability(dataset)
    }
    return {
        "n_nodes": int(graph.n),
        "n_edges": int(graph.n_edges),
        "degree": {
            "out_ccdf_buckets": ccdf_bucket_counts(out_deg),
            "in_ccdf_buckets": ccdf_bucket_counts(in_deg),
            "max_out": int(out_deg.max()) if out_deg.size else 0,
            "max_in": int(in_deg.max()) if in_deg.size else 0,
        },
        "reciprocity": float(mask.mean()) if mask.size else 0.0,
        "reciprocal_edges": int(mask.sum()),
        "components": {
            "n_components": int(wcc.n_components),
            "giant_size": int(wcc.giant_size),
        },
        "attributes": dict(sorted(attributes.items())),
        "countries": dict(sorted(countries.items())),
        "path_lengths": (
            path_length_refresh(graph, path_sources) if path_sources > 0 else None
        ),
    }


def _jsonify(value) -> object:
    """Normalise through one JSON round trip (matches the report on disk)."""
    return json.loads(json.dumps(value))


def _compare_figures(live: dict, batch: dict) -> list[str]:
    problems: list[str] = []
    batch = _jsonify(batch)
    for key in STRICT_FIGURE_KEYS:
        if key not in live:
            problems.append(f"live figures missing {key!r}")
        elif live[key] != batch[key]:
            problems.append(
                f"figure {key!r} differs: live={live[key]!r} batch={batch[key]!r}"
            )
    live_paths = live.get("path_lengths")
    if (
        live_paths is not None
        and batch.get("path_lengths") is not None
        and live_paths.get("as_of_n_edges") == batch["path_lengths"]["as_of_n_edges"]
    ):
        if live_paths != batch["path_lengths"]:
            problems.append(
                f"figure 'path_lengths' differs: live={live_paths!r} "
                f"batch={batch['path_lengths']!r}"
            )
    return problems


def _dataset_for_checkpoint(campaign_dir: Path, record) -> CrawlDataset:
    """Reconstruct the crawled prefix pinned by one checkpoint record."""
    from repro.crawler.dataset import profile_from_json
    from repro.store.campaign import JOURNAL_NAME, KIND_PAGE, SEGMENTS_DIR
    from repro.store.journal import iter_records
    from repro.store.segments import load_edges

    profiles = {}
    for rec in iter_records(
        campaign_dir / JOURNAL_NAME, upto=record.journal_offset
    ):
        if rec.kind == KIND_PAGE:
            profile = profile_from_json(json.loads(rec.body.decode("utf-8")))
            profiles[profile.user_id] = profile
    sources, targets = load_edges(campaign_dir / SEGMENTS_DIR, names=record.segments)
    return CrawlDataset(profiles=profiles, sources=sources, targets=targets)


def verify_live_report(
    report_path: str | Path,
    campaign_dir: str | Path | None = None,
    dataset: CrawlDataset | None = None,
) -> list[str]:
    """Prove a live report's newest epoch against the batch pipeline.

    Returns a list of problems; ``[]`` means the report is schema-valid
    and its figures are bit-equal to the batch recomputation.  Provide
    either ``dataset`` (compare against exactly that data — the epoch
    must describe the same cut) or ``campaign_dir`` (reconstruct the
    epoch's crawled prefix from the campaign's journal and segments).
    """
    report_path = Path(report_path)
    try:
        document = json.loads(report_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"cannot read report: {exc}"]
    problems = validate_run_report(document)
    if problems:
        return [f"run report schema: {p}" for p in problems]
    live = document.get("extra", {}).get("live")
    if live is None:
        return ["report has no extra['live'] section"]
    problems = [f"live schema: {p}" for p in validate_live_section(live)]
    if problems:
        return problems
    epoch = live.get("epoch")
    if epoch is None:
        return ["live section has no epoch to verify"]

    path_sources = (epoch["figures"].get("path_lengths") or {}).get("n_sources", 0)
    if dataset is not None:
        if (len(dataset.profiles), len(dataset.sources)) != (
            epoch["n_pages"],
            epoch["n_edges"],
        ):
            return [
                f"dataset cut ({len(dataset.profiles)} pages, "
                f"{len(dataset.sources)} edges) does not match epoch "
                f"({epoch['n_pages']} pages, {epoch['n_edges']} edges)"
            ]
        batch = batch_live_figures(dataset, path_sources=path_sources)
        return _compare_figures(epoch["figures"], batch)

    if campaign_dir is None:
        return ["need a dataset or a campaign_dir to verify against"]
    from repro.store import checkpoint as ckpt
    from repro.store.campaign import CHECKPOINTS_DIR

    campaign_dir = Path(campaign_dir)
    record = None
    for path in reversed(
        ckpt.list_checkpoint_paths(campaign_dir / CHECKPOINTS_DIR)
    ):
        try:
            candidate = ckpt.load_checkpoint(path)
        except ckpt.CheckpointError:
            continue
        if (candidate.n_pages, candidate.n_edges) == (
            epoch["n_pages"],
            epoch["n_edges"],
        ):
            record = candidate
            break
    if record is None:
        return [
            f"no checkpoint matches epoch cut "
            f"({epoch['n_pages']} pages, {epoch['n_edges']} edges)"
        ]
    prefix = _dataset_for_checkpoint(campaign_dir, record)
    batch = batch_live_figures(prefix, path_sources=path_sources)
    return _compare_figures(epoch["figures"], batch)
