"""Growth-phase analysis (future work of Section 7 + densification of §5).

Given a :class:`~repro.synth.growth.GrowthTimeline`, measures:

* the **adoption curve** and its phase transitions — the open-signup
  tipping point (largest jump in daily signups) and the stabilization
  point (daily growth falling below a fraction of its peak);
* the **densification power law** ``E(t) ∝ N(t)^a`` of Leskovec et al.,
  which the paper invokes to argue Google+'s long 5.9-hop paths were a
  symptom of youth;
* the **shrinking-diameter effect**: sampled mean path length per
  snapshot, which should fall (or stabilise) as the network densifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.paths import sampled_path_lengths
from repro.graph.reciprocity import global_reciprocity
from repro.synth.growth import CRAWL_DAY, GrowthTimeline, OPEN_SIGNUP_DAY


@dataclass(frozen=True)
class SnapshotMetrics:
    """Structural metrics of one temporal snapshot."""

    day: float
    n_nodes: int
    n_edges: int
    mean_degree: float
    mean_path_length: float
    reciprocity: float


@dataclass(frozen=True)
class GrowthAnalysis:
    """Full growth study over a timeline."""

    days: np.ndarray
    adoption: np.ndarray
    snapshots: list[SnapshotMetrics]
    densification_exponent: float
    tipping_day: float
    stabilization_day: float

    def densifies(self) -> bool:
        """True when edges grow superlinearly in nodes (a > 1)."""
        return self.densification_exponent > 1.0

    def path_length_trend(self) -> float:
        """Last-minus-first sampled mean path length (negative = shrinking)."""
        defined = [s for s in self.snapshots if np.isfinite(s.mean_path_length)]
        if len(defined) < 2:
            return float("nan")
        return defined[-1].mean_path_length - defined[0].mean_path_length


def _snapshot_metrics(
    timeline: GrowthTimeline,
    day: float,
    rng: np.random.Generator,
    path_samples: int,
) -> SnapshotMetrics:
    node_ids, sources, targets = timeline.snapshot(day)
    n_nodes = len(node_ids)
    n_edges = len(sources)
    if n_edges == 0 or n_nodes < 2:
        return SnapshotMetrics(day, n_nodes, n_edges, 0.0, float("nan"), 0.0)
    graph = CSRGraph.from_edge_arrays(sources, targets, node_ids=node_ids)
    paths = sampled_path_lengths(
        graph,
        rng,
        initial_k=min(path_samples, graph.n),
        max_k=min(path_samples, graph.n),
    )
    return SnapshotMetrics(
        day=day,
        n_nodes=n_nodes,
        n_edges=n_edges,
        mean_degree=n_edges / n_nodes,
        mean_path_length=paths.mean,
        reciprocity=global_reciprocity(graph),
    )


def find_tipping_point(days: np.ndarray, adoption: np.ndarray) -> float:
    """Day the growth spark ignites: first day at >= 50% of peak signups.

    Robust to bin noise, unlike a second-derivative argmax: the answer is
    the leading edge of the signup spike (the open-signup date, for the
    Google+ arc).
    """
    daily = np.diff(adoption).astype(float)
    if len(daily) == 0 or daily.max() <= 0:
        return float(days[0]) if len(days) else 0.0
    threshold = 0.5 * daily.max()
    first = int(np.argmax(daily >= threshold))
    return float(days[first + 1])


def find_stabilization(
    days: np.ndarray, adoption: np.ndarray, threshold: float = 0.2
) -> float:
    """First day after the peak where daily growth < threshold * peak."""
    daily = np.diff(adoption).astype(float)
    if len(daily) == 0:
        return float(days[-1]) if len(days) else 0.0
    peak_index = int(np.argmax(daily))
    peak = daily[peak_index]
    if peak <= 0:
        return float(days[-1])
    for index in range(peak_index + 1, len(daily)):
        if daily[index] < threshold * peak:
            return float(days[index + 1])
    return float(days[-1])


def fit_densification(snapshots: list[SnapshotMetrics]) -> float:
    """Slope of log E vs log N across snapshots (Leskovec's ``a``)."""
    points = [
        (s.n_nodes, s.n_edges)
        for s in snapshots
        if s.n_nodes > 1 and s.n_edges > 0
    ]
    if len(points) < 2:
        return float("nan")
    log_n = np.log10([p[0] for p in points])
    log_e = np.log10([p[1] for p in points])
    slope, _ = np.polyfit(log_n, log_e, 1)
    return float(slope)


def analyze_growth(
    timeline: GrowthTimeline,
    seed: int = 0,
    n_snapshots: int = 8,
    path_samples: int = 150,
) -> GrowthAnalysis:
    """Run the full growth study on a timeline."""
    rng = np.random.default_rng(seed)
    curve_days = np.linspace(0.0, CRAWL_DAY, 91)
    adoption = timeline.adoption_curve(curve_days)
    snapshot_days = np.linspace(
        OPEN_SIGNUP_DAY / 3.0, CRAWL_DAY, n_snapshots
    )
    snapshots = [
        _snapshot_metrics(timeline, float(day), rng, path_samples)
        for day in snapshot_days
    ]
    return GrowthAnalysis(
        days=curve_days,
        adoption=adoption,
        snapshots=snapshots,
        densification_exponent=fit_densification(snapshots),
        tipping_day=find_tipping_point(curve_days, adoption),
        stabilization_day=find_stabilization(curve_days, adoption),
    )
