"""Tel-user analysis: privacy risk takers (Section 3.2, Table 3, Figure 2).

Tel-users are crawled profiles whose public work or home contact block
carries a phone number. The paper compares them with the population on
gender, relationship status and country, and shows (Figure 2) that they
share far more profile fields — the risk-taking signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.geo.index import GeoIndex
from repro.graph.degree import ccdf, EmpiricalCCDF
from repro.platform.models import Gender, Relationship


@dataclass(frozen=True)
class GroupShares:
    """Percentage breakdown of one attribute for one user group."""

    total: int
    shares: dict[str, float] = field(default_factory=dict)

    def percent(self, key: str) -> float:
        return 100.0 * self.shares.get(key, 0.0)


@dataclass(frozen=True)
class TelUserComparison:
    """The full Table 3: all-users vs tel-users across three attributes."""

    n_all: int
    n_tel: int
    gender_all: GroupShares
    gender_tel: GroupShares
    relationship_all: GroupShares
    relationship_tel: GroupShares
    location_all: GroupShares
    location_tel: GroupShares

    @property
    def tel_rate(self) -> float:
        return self.n_tel / self.n_all if self.n_all else 0.0


def tel_user_ids(dataset: CrawlDataset) -> list[int]:
    """Ids of crawled users publicly sharing a phone number."""
    return [p.user_id for p in dataset.profiles.values() if p.shares_phone()]


def _gender_shares(profiles: list[ParsedProfile]) -> GroupShares:
    counts: dict[str, int] = {g.value: 0 for g in Gender}
    n = 0
    for profile in profiles:
        gender = profile.gender()
        if gender is None:
            continue
        counts[gender.value] += 1
        n += 1
    return GroupShares(total=n, shares={k: v / n if n else 0.0 for k, v in counts.items()})


def _relationship_shares(profiles: list[ParsedProfile]) -> GroupShares:
    counts: dict[str, int] = {r.value: 0 for r in Relationship}
    n = 0
    for profile in profiles:
        status = profile.relationship()
        if status is None:
            continue
        counts[status.value] += 1
        n += 1
    return GroupShares(total=n, shares={k: v / n if n else 0.0 for k, v in counts.items()})


def _location_shares(
    profiles: list[ParsedProfile], geo: GeoIndex, top_codes: tuple[str, ...]
) -> GroupShares:
    """Country shares over the named codes, remainder bucketed as Other."""
    counts: dict[str, int] = {code: 0 for code in top_codes}
    counts["Other"] = 0
    n = 0
    for profile in profiles:
        position = geo.position_of.get(profile.user_id)
        if position is None:
            continue
        code = geo.countries[position]
        counts[code if code in counts else "Other"] += 1
        n += 1
    return GroupShares(total=n, shares={k: v / n if n else 0.0 for k, v in counts.items()})


#: Table 3 lists the top five countries explicitly.
TABLE3_COUNTRIES: tuple[str, ...] = ("US", "IN", "BR", "GB", "CA")


def compare_tel_users(
    dataset: CrawlDataset,
    geo: GeoIndex,
    location_codes: tuple[str, ...] = TABLE3_COUNTRIES,
) -> TelUserComparison:
    """Compute the full Table 3 comparison."""
    everyone = list(dataset.profiles.values())
    tel = [p for p in everyone if p.shares_phone()]
    return TelUserComparison(
        n_all=len(everyone),
        n_tel=len(tel),
        gender_all=_gender_shares(everyone),
        gender_tel=_gender_shares(tel),
        relationship_all=_relationship_shares(everyone),
        relationship_tel=_relationship_shares(tel),
        location_all=_location_shares(everyone, geo, location_codes),
        location_tel=_location_shares(tel, geo, location_codes),
    )


@dataclass(frozen=True)
class FieldsSharedCCDFs:
    """Figure 2: CCDF of public field counts, tel-users vs everyone.

    Field counts exclude the contact blocks, per the paper's
    "contabilization" note.
    """

    all_users: EmpiricalCCDF
    tel_users: EmpiricalCCDF
    all_counts: np.ndarray
    tel_counts: np.ndarray

    def fraction_sharing_more_than(self, k: int, group: str = "all") -> float:
        counts = self.all_counts if group == "all" else self.tel_counts
        if len(counts) == 0:
            return float("nan")
        return float((counts > k).mean())


def fields_shared_ccdfs(dataset: CrawlDataset) -> FieldsSharedCCDFs:
    """Compute Figure 2's two curves from a crawl dataset."""
    all_counts = np.array(
        [p.count_fields() for p in dataset.profiles.values()], dtype=np.int64
    )
    tel_counts = np.array(
        [
            p.count_fields()
            for p in dataset.profiles.values()
            if p.shares_phone()
        ],
        dtype=np.int64,
    )
    if len(all_counts) == 0 or len(tel_counts) == 0:
        raise ValueError("dataset has no profiles (or no tel-users) to compare")
    return FieldsSharedCCDFs(
        all_users=ccdf(all_counts),
        tel_users=ccdf(tel_counts),
        all_counts=all_counts,
        tel_counts=tel_counts,
    )
