"""Per-country openness: fields shared in profiles (Section 4.3, Figure 8).

For each top-10 country, the CCDF of the number of publicly shared
fields among that country's located users. By construction of the
methodology the minimum is 2 (name is mandatory; places-lived defines the
sample). The paper's finding: Indonesia and Mexico share the most,
Germany is by far the most conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset
from repro.geo.index import GeoIndex
from repro.graph.degree import ccdf, EmpiricalCCDF


@dataclass(frozen=True)
class CountryOpenness:
    """Field-count sample and CCDF for one country."""

    country: str
    counts: np.ndarray
    curve: EmpiricalCCDF

    def fraction_sharing_more_than(self, k: int) -> float:
        if len(self.counts) == 0:
            return float("nan")
        return float((self.counts > k).mean())

    @property
    def mean_fields(self) -> float:
        return float(self.counts.mean()) if len(self.counts) else float("nan")


@dataclass(frozen=True)
class OpennessAnalysis:
    """Figure 8: one curve per country."""

    by_country: dict[str, CountryOpenness]

    def ranking(self) -> list[str]:
        """Countries from most to least open (by mean fields shared)."""
        return sorted(
            self.by_country,
            key=lambda code: -self.by_country[code].mean_fields,
        )

    def most_conservative(self) -> str:
        return self.ranking()[-1]


def openness_by_country(
    dataset: CrawlDataset, geo: GeoIndex, countries: list[str]
) -> OpennessAnalysis:
    """Compute Figure 8 over the located users of the given countries."""
    samples: dict[str, list[int]] = {code: [] for code in countries}
    for user_id, code in zip(geo.user_ids, geo.countries):
        if code not in samples:
            continue
        profile = dataset.profiles.get(int(user_id))
        if profile is None:
            continue
        samples[code].append(profile.count_fields())
    by_country: dict[str, CountryOpenness] = {}
    for code in countries:
        counts = np.array(samples[code], dtype=np.int64)
        if len(counts) == 0:
            raise ValueError(f"no located users for country {code!r}")
        by_country[code] = CountryOpenness(
            country=code, counts=counts, curve=ccdf(counts)
        )
    return OpennessAnalysis(by_country=by_country)
