"""Measured cross-network comparison (Table 4, fully from our own code).

The paper's Table 4 mixes its own Google+ measurements with numbers
quoted from other studies. Using the baseline models of
:mod:`repro.synth.baselines`, this analysis *measures* all four rows with
the same instruments, so the comparative claims — Google+ sits between
Twitter and Facebook in reciprocity, has a smaller mean degree than
Facebook, longer paths than the mature networks — can be checked
end-to-end rather than trusted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import GraphSummary, summarize_graph
from repro.synth.baselines import BASELINE_GENERATORS


@dataclass(frozen=True)
class CrossNetworkComparison:
    """Measured Table 4 rows keyed by network name."""

    rows: dict[str, GraphSummary]

    def reciprocity_ordering_holds(self) -> bool:
        """Twitter < Google+ < Facebook = Orkut = 100%."""
        r = {name: s.reciprocity for name, s in self.rows.items()}
        return (
            r["Twitter-like"] < r["Google+"] < r["Facebook-like"]
            and r["Facebook-like"] == 1.0
            and r["Orkut-like"] == 1.0
        )

    def degree_ordering_holds(self) -> bool:
        """Facebook's mean degree exceeds Google+'s (190 vs 16 in print)."""
        return (
            self.rows["Facebook-like"].mean_in_degree
            > self.rows["Google+"].mean_in_degree
        )

    def gplus_paths_longest(self) -> bool:
        """The young network has the longest average path (5.9 vs 4.1-4.7)."""
        gplus = self.rows["Google+"].avg_path_length
        others = [
            s.avg_path_length
            for name, s in self.rows.items()
            if name != "Google+"
        ]
        return all(gplus >= value for value in others)


def compare_networks(
    gplus_graph: CSRGraph,
    seed: int = 0,
    baseline_n: int | None = None,
    path_samples: int = 400,
) -> CrossNetworkComparison:
    """Measure the Table 4 rows for Google+ plus all baseline models.

    ``baseline_n`` defaults to the Google+ graph's node count so every
    network is measured at the same scale.
    """
    n = baseline_n if baseline_n is not None else gplus_graph.n
    rows: dict[str, GraphSummary] = {}
    rng = np.random.default_rng(seed)
    rows["Google+"] = summarize_graph(
        gplus_graph, rng, path_samples=path_samples, diameter_sweeps=5
    )
    for offset, (name, generator) in enumerate(BASELINE_GENERATORS.items(), 1):
        graph = generator(n, seed=seed + offset)
        rows[name] = summarize_graph(
            graph,
            np.random.default_rng(seed + offset),
            path_samples=path_samples,
            diameter_sweeps=5,
        )
    return CrossNetworkComparison(rows=rows)
