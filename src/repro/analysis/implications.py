"""The Section 6 implications, operationalised.

The paper closes by sketching what its measurements *mean* for systems
built on top of Google+: recommender systems should prefer domestic
content in inward-looking countries and foreign content in outward ones;
advertisers should "feature newly emerging musicians to users in Mexico,
while recommend journalists to newly joining users in Italy"; political
campaigning "may not turn out successful for many countries, except for
in Spain". This module derives those recommendations from a study's
measured artifacts instead of hand-waving them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import StudyResults
from repro.platform.models import Occupation, OCCUPATION_LABELS


@dataclass(frozen=True)
class CountryStrategy:
    """Derived per-country product guidance."""

    country: str
    recommend_scope: str  # "domestic" | "foreign" | "mixed"
    self_loop: float
    featured_occupation: Occupation | None
    political_campaign_viable: bool
    privacy_posture: str  # "open" | "moderate" | "conservative"

    @property
    def featured_label(self) -> str:
        if self.featured_occupation is None:
            return "(no public occupation signal)"
        return OCCUPATION_LABELS[self.featured_occupation]


def _dominant_occupation(occupations) -> Occupation | None:
    """Most frequent non-None occupation among a country's top users."""
    counts: dict[Occupation, int] = {}
    for occupation in occupations:
        if occupation is not None:
            counts[occupation] = counts.get(occupation, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda o: (counts[o], -list(counts).index(o)))


def derive_strategies(
    results: StudyResults,
    domestic_threshold: float = 0.5,
    foreign_threshold: float = 0.4,
) -> dict[str, CountryStrategy]:
    """Turn a study's artifacts into the Section 6 guidance per country."""
    link_graph = results.fig10_links.graph
    openness_ranking = results.fig8_openness.ranking()
    open_tier = set(openness_ranking[:3])
    conservative_tier = set(openness_ranking[-3:])
    occupations_by_country = {
        row.country: row.occupations for row in results.table5_occupations
    }
    strategies: dict[str, CountryStrategy] = {}
    for country in link_graph.countries:
        self_loop = link_graph.self_loop(country)
        if self_loop > domestic_threshold:
            scope = "domestic"
        elif self_loop < foreign_threshold:
            scope = "foreign"
        else:
            scope = "mixed"
        top_occupations = occupations_by_country.get(country, ())
        featured = _dominant_occupation(top_occupations)
        political = Occupation.POLITICIAN in set(top_occupations)
        if country in open_tier:
            posture = "open"
        elif country in conservative_tier:
            posture = "conservative"
        else:
            posture = "moderate"
        strategies[country] = CountryStrategy(
            country=country,
            recommend_scope=scope,
            self_loop=self_loop,
            featured_occupation=featured,
            political_campaign_viable=political,
            privacy_posture=posture,
        )
    return strategies


def campaign_countries(strategies: dict[str, CountryStrategy]) -> list[str]:
    """Countries where a political campaign has measured traction."""
    return [
        code
        for code, strategy in strategies.items()
        if strategy.political_campaign_viable
    ]
