"""Structural analyses of the social graph (Section 3.3).

Bundles the Figure 3/4/5 computations and the Google+ row of Table 4 into
result objects the experiment harness and benches can render.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.clustering import sampled_clustering
from repro.graph.components import (
    ComponentDecomposition,
    strongly_connected_components,
)
from repro.graph.csr import CSRGraph
from repro.graph.degree import degree_distributions, DegreeDistributions
from repro.graph.parallel import BFSEngine
from repro.graph.paths import (
    DIRECTED,
    PathLengthDistribution,
    sampled_path_lengths,
    UNDIRECTED,
)
from repro.graph.powerlaw import fit_powerlaw_ccdf, PowerLawFit
from repro.graph.reciprocity import global_reciprocity, reciprocity_cdf_input
from repro.graph.stats import GraphSummary, summarize_graph


@dataclass(frozen=True)
class DegreeAnalysis:
    """Figure 3: degree CCDFs plus power-law fits."""

    distributions: DegreeDistributions
    in_fit: PowerLawFit
    out_fit: PowerLawFit
    out_degree_cap: int

    def cap_knee_visible(self) -> bool:
        """True when some users sit at (or past) the out-degree cap."""
        return bool((self.distributions.out_degrees >= self.out_degree_cap).any())


def analyze_degrees(graph: CSRGraph, out_degree_cap: int = 5_000) -> DegreeAnalysis:
    """Compute Figure 3 with the paper's regression estimator.

    The out-degree fit excludes points beyond the cap knee, as the paper's
    conjectured policy distorts the tail there.
    """
    distributions = degree_distributions(graph)
    in_fit = fit_powerlaw_ccdf(distributions.in_ccdf, x_min=1.0)
    out_fit = fit_powerlaw_ccdf(
        distributions.out_ccdf, x_min=1.0, x_max=float(out_degree_cap)
    )
    return DegreeAnalysis(
        distributions=distributions,
        in_fit=in_fit,
        out_fit=out_fit,
        out_degree_cap=out_degree_cap,
    )


@dataclass(frozen=True)
class ReciprocityAnalysis:
    """Figure 4a + the Table 4 reciprocity number."""

    rr_values: np.ndarray
    global_reciprocity: float

    def fraction_rr_above(self, threshold: float) -> float:
        if len(self.rr_values) == 0:
            return float("nan")
        return float((self.rr_values > threshold).mean())


def analyze_reciprocity(graph: CSRGraph) -> ReciprocityAnalysis:
    return ReciprocityAnalysis(
        rr_values=reciprocity_cdf_input(graph),
        global_reciprocity=global_reciprocity(graph),
    )


@dataclass(frozen=True)
class ClusteringAnalysis:
    """Figure 4b: clustering coefficients of a node sample."""

    values: np.ndarray
    sample_size: int

    def fraction_above(self, threshold: float) -> float:
        defined = self.values[~np.isnan(self.values)]
        if len(defined) == 0:
            return float("nan")
        return float((defined > threshold).mean())

    @property
    def mean(self) -> float:
        defined = self.values[~np.isnan(self.values)]
        return float(defined.mean()) if len(defined) else float("nan")


def analyze_clustering(
    graph: CSRGraph, rng: np.random.Generator, sample_size: int | None = None
) -> ClusteringAnalysis:
    """Figure 4b; the paper sampled 1M of 35M nodes, we sample ~3%
    proportionally (minimum 1,000) unless told otherwise."""
    if sample_size is None:
        sample_size = max(1_000, graph.n * 3 // 100)
    values = sampled_clustering(graph, sample_size, rng)
    return ClusteringAnalysis(values=values, sample_size=len(values))


@dataclass(frozen=True)
class SCCAnalysis:
    """Figure 4c: SCC decomposition and size CCDF input."""

    decomposition: ComponentDecomposition

    @property
    def n_components(self) -> int:
        return self.decomposition.n_components

    @property
    def giant_size(self) -> int:
        return self.decomposition.giant_size

    @property
    def giant_fraction(self) -> float:
        return self.decomposition.giant_fraction()

    def sizes(self) -> np.ndarray:
        return self.decomposition.sizes


def analyze_sccs(graph: CSRGraph) -> SCCAnalysis:
    return SCCAnalysis(decomposition=strongly_connected_components(graph))


@dataclass(frozen=True)
class PathLengthAnalysis:
    """Figure 5: directed and undirected hop distributions."""

    directed: PathLengthDistribution
    undirected: PathLengthDistribution


def analyze_path_lengths(
    graph: CSRGraph,
    rng: np.random.Generator,
    initial_k: int = 2_000,
    max_k: int = 10_000,
    engine: BFSEngine | None = None,
) -> PathLengthAnalysis:
    """Figure 5 with the paper's grow-until-stable sampling.

    Pass ``engine`` to run both sweeps through one (possibly
    multi-process) BFS worker pool; results do not depend on it.
    """
    own_engine = engine is None
    if own_engine:
        engine = BFSEngine(graph)
    try:
        return PathLengthAnalysis(
            directed=sampled_path_lengths(
                graph, rng, initial_k=initial_k, max_k=max_k, mode=DIRECTED,
                engine=engine,
            ),
            undirected=sampled_path_lengths(
                graph, rng, initial_k=initial_k, max_k=max_k, mode=UNDIRECTED,
                engine=engine,
            ),
        )
    finally:
        if own_engine:
            engine.close()


def google_plus_table4_row(
    graph: CSRGraph,
    rng: np.random.Generator,
    path_samples: int = 2_000,
    paths: PathLengthAnalysis | None = None,
    engine: BFSEngine | None = None,
) -> GraphSummary:
    """The measured Google+ row of Table 4.

    Pass the Figure 5 result via ``paths`` to reuse its BFS sampling,
    and ``engine`` to share a BFS worker pool with the other analyses.
    """
    return summarize_graph(
        graph,
        rng,
        path_samples=path_samples,
        precomputed_directed=paths.directed if paths else None,
        precomputed_undirected=paths.undirected if paths else None,
        engine=engine,
    )
