"""Per-artifact analyses: one module per table/figure of the paper."""

from .attributes import attribute_availability, AttributeAvailability
from .cross_network import compare_networks, CrossNetworkComparison
from .diffusion import (
    analyze_diffusion,
    CountryActivity,
    DiffusionAnalysis,
    ReachComparison,
)
from .distancefx import (
    analyze_country_path_miles,
    analyze_path_miles,
    CountryPathMiles,
    PathMileAnalysis,
)
from .growth import (
    analyze_growth,
    find_stabilization,
    find_tipping_point,
    fit_densification,
    GrowthAnalysis,
    SnapshotMetrics,
)
from .geo_dist import (
    CountryShare,
    penetration_analysis,
    PenetrationAnalysis,
    PenetrationPoint,
    top_countries,
)
from .implications import (
    campaign_countries,
    CountryStrategy,
    derive_strategies,
)
from .linkgeo import analyze_link_geography, LinkGeographyAnalysis
from .openness import CountryOpenness, openness_by_country, OpennessAnalysis
from .robustness import (
    analyze_robustness,
    removal_curve,
    RobustnessAnalysis,
    RobustnessCurve,
)
from .structure import (
    analyze_clustering,
    analyze_degrees,
    analyze_path_lengths,
    analyze_reciprocity,
    analyze_sccs,
    ClusteringAnalysis,
    DegreeAnalysis,
    google_plus_table4_row,
    PathLengthAnalysis,
    ReciprocityAnalysis,
    SCCAnalysis,
)
from .tel_users import (
    compare_tel_users,
    fields_shared_ccdfs,
    FieldsSharedCCDFs,
    GroupShares,
    TABLE3_COUNTRIES,
    tel_user_ids,
    TelUserComparison,
)
from .top_users import (
    CountryTopRow,
    it_fraction,
    occupation_of,
    top_occupations_by_country,
    top_users_by_in_degree,
    TopUser,
)

__all__ = [
    "analyze_clustering",
    "analyze_diffusion",
    "campaign_countries",
    "compare_networks",
    "analyze_growth",
    "analyze_robustness",
    "analyze_country_path_miles",
    "analyze_degrees",
    "analyze_link_geography",
    "analyze_path_lengths",
    "analyze_path_miles",
    "analyze_reciprocity",
    "analyze_sccs",
    "attribute_availability",
    "AttributeAvailability",
    "ClusteringAnalysis",
    "compare_tel_users",
    "CountryOpenness",
    "CountryPathMiles",
    "CountryActivity",
    "CountryShare",
    "CountryStrategy",
    "CrossNetworkComparison",
    "derive_strategies",
    "DiffusionAnalysis",
    "CountryTopRow",
    "DegreeAnalysis",
    "fields_shared_ccdfs",
    "FieldsSharedCCDFs",
    "find_stabilization",
    "find_tipping_point",
    "fit_densification",
    "google_plus_table4_row",
    "GrowthAnalysis",
    "GroupShares",
    "it_fraction",
    "LinkGeographyAnalysis",
    "occupation_of",
    "openness_by_country",
    "OpennessAnalysis",
    "PathLengthAnalysis",
    "PathMileAnalysis",
    "penetration_analysis",
    "PenetrationAnalysis",
    "PenetrationPoint",
    "ReachComparison",
    "removal_curve",
    "RobustnessAnalysis",
    "RobustnessCurve",
    "ReciprocityAnalysis",
    "SnapshotMetrics",
    "SCCAnalysis",
    "TABLE3_COUNTRIES",
    "tel_user_ids",
    "TelUserComparison",
    "top_countries",
    "top_occupations_by_country",
    "top_users_by_in_degree",
    "TopUser",
]
