"""Distance effects on friendship (Section 4.4, Figure 9).

Thin analysis wrapper over :mod:`repro.geo.pathmiles` producing the two
Figure 9 artifacts with the paper's headline statistics attached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset
from repro.geo.index import GeoIndex
from repro.geo.pathmiles import (
    average_path_mile_by_country,
    compute_path_miles,
    PathMileSamples,
)


@dataclass(frozen=True)
class PathMileAnalysis:
    """Figure 9a samples plus headline fractions."""

    samples: PathMileSamples

    def friends_within_1000mi(self) -> float:
        """The paper reports ~58%."""
        return self.samples.fraction_within(1000.0, "friends")

    def friends_within_10mi(self) -> float:
        """The paper reports ~15%."""
        return self.samples.fraction_within(10.0, "friends")

    def ordering_holds(self, at_miles: float = 1000.0) -> bool:
        """Reciprocal pairs closest, then friends, then random pairs."""
        recip = self.samples.fraction_within(at_miles, "reciprocal")
        friend = self.samples.fraction_within(at_miles, "friends")
        rand = self.samples.fraction_within(at_miles, "random_pairs")
        return recip >= friend >= rand

    def median_miles(self, population: str) -> float:
        sample = getattr(self.samples, population)
        return float(np.median(sample)) if len(sample) else float("nan")


def analyze_path_miles(
    dataset: CrawlDataset,
    geo: GeoIndex,
    rng: np.random.Generator,
    max_pairs: int = 200_000,
) -> PathMileAnalysis:
    """Figure 9a."""
    return PathMileAnalysis(
        samples=compute_path_miles(dataset, geo, rng, max_pairs=max_pairs)
    )


@dataclass(frozen=True)
class CountryPathMiles:
    """Figure 9b: per-country average friend distance with deviation."""

    stats: dict[str, tuple[float, float]]

    def average(self, code: str) -> float:
        return self.stats[code][0]

    def deviation(self, code: str) -> float:
        return self.stats[code][1]


def analyze_country_path_miles(
    dataset: CrawlDataset, geo: GeoIndex, countries: list[str]
) -> CountryPathMiles:
    """Figure 9b."""
    return CountryPathMiles(
        stats=average_path_mile_by_country(dataset, geo, countries)
    )
