"""Worldwide user distribution and adoption economics (Figures 6 and 7).

Figure 6 ranks countries by their share of located users; Figure 7 puts
Google+ penetration rate (GPR, Equation 2) and Internet penetration rate
side by side against GDP per capita, exposing the paper's three
observations: Internet penetration tracks GDP linearly, GPR does not,
and low-IPR countries (India, Brazil) lead Google+ adoption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.index import GeoIndex
from repro.synth.countries import build_country_table, Country


@dataclass(frozen=True)
class CountryShare:
    """One bar of Figure 6."""

    code: str
    users: int
    fraction: float


def top_countries(geo: GeoIndex, k: int = 10) -> list[CountryShare]:
    """Figure 6: the top-``k`` countries among located users."""
    counts = geo.country_counts()
    total = sum(counts.values())
    ranked = sorted(counts.items(), key=lambda item: -item[1])[:k]
    return [
        CountryShare(code=code, users=n, fraction=n / total if total else 0.0)
        for code, n in ranked
    ]


@dataclass(frozen=True)
class PenetrationPoint:
    """One country point of Figure 7a/7b."""

    code: str
    region: str
    gdp_per_capita: float
    internet_penetration: float  # fraction of population online
    gplus_users: int
    gplus_penetration: float  # GPR: located users / Internet population


@dataclass(frozen=True)
class PenetrationAnalysis:
    """Figure 7 material plus the linearity contrast the paper reports."""

    points: list[PenetrationPoint]
    ipr_gdp_correlation: float
    gpr_gdp_correlation: float

    def ranked_by_gpr(self) -> list[PenetrationPoint]:
        return sorted(self.points, key=lambda p: -p.gplus_penetration)


def penetration_analysis(
    geo: GeoIndex,
    countries: dict[str, Country] | None = None,
    codes: list[str] | None = None,
) -> PenetrationAnalysis:
    """Compute GPR per country (Equation 2) and the two GDP correlations.

    GPR is meaningful only as a relative ranking (the crawl is a sample
    and only ~27% of users share location), exactly as the paper caveats.
    """
    table = countries if countries is not None else build_country_table()
    counts = geo.country_counts()
    if codes is None:
        # Figure 7 plots the top-20 countries by located users.
        codes = [c for c, _ in sorted(counts.items(), key=lambda i: -i[1])[:20]]
    points = []
    for code in codes:
        country = table.get(code)
        if country is None:
            continue
        users = counts.get(code, 0)
        internet_pop = country.internet_population_m * 1e6
        points.append(
            PenetrationPoint(
                code=code,
                region=country.region,
                gdp_per_capita=country.gdp_per_capita_ppp,
                internet_penetration=country.internet_penetration,
                gplus_users=users,
                gplus_penetration=users / internet_pop if internet_pop else 0.0,
            )
        )
    gdp = np.array([p.gdp_per_capita for p in points])
    ipr = np.array([p.internet_penetration for p in points])
    gpr = np.array([p.gplus_penetration for p in points])
    return PenetrationAnalysis(
        points=points,
        ipr_gdp_correlation=_safe_corr(gdp, ipr),
        gpr_gdp_correlation=_safe_corr(gdp, gpr),
    )


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 2 or a.std() == 0 or b.std() == 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])
