"""Span-based tracing with dual wall/virtual time accounting.

The reproduction runs on two clocks at once: real wall time
(``time.perf_counter``) tells you where the *hardware* spends its
seconds, while the platform's :class:`~repro.platform.http.SimulatedClock`
tells you where the *simulated crawl campaign* spends its virtual days —
throttle waits and backoffs advance the virtual clock by hours while
costing microseconds of wall time.  Every span records both.

Spans nest: the tracer keeps a stack, and aggregates finished spans by
their full path (``study.run/study.crawl/crawl.bfs``), which is what the
flame-style summary renders.  Aggregation happens on span exit, so
tracing a million-page crawl stores one row per distinct path, not one
row per page.

Usage::

    from repro.obs import trace

    trace.bind_clock(frontend.clock)
    with trace.span("crawl.bfs", seeds=1):
        ...

Module-level ``span``/``bind_clock``/``summary`` operate on the default
tracer, which shares the default registry's enabled flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Protocol

from .metrics import Registry, get_registry

__all__ = [
    "Span",
    "SpanStats",
    "Tracer",
    "bind_clock",
    "get_tracer",
    "render_summary",
    "reset",
    "set_tracer",
    "span",
    "summary",
]


class _ClockLike(Protocol):
    def now(self) -> float: ...


@dataclass
class SpanStats:
    """Aggregate of every finished span sharing one path."""

    path: tuple[str, ...]
    count: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "path": "/".join(self.path),
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "virtual_seconds": self.virtual_seconds,
            "attributes": dict(self.attributes),
        }


class Span:
    """A live span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attributes", "path", "_wall_start", "_virtual_start")

    def __init__(self, tracer: "Tracer", name: str, attributes: Mapping[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = dict(attributes)
        self.path: tuple[str, ...] = ()
        self._wall_start = 0.0
        self._virtual_start = 0.0

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.path = tuple(s.name for s in tracer._stack) + (self.name,)
        tracer._stack.append(self)
        self._wall_start = time.perf_counter()
        clock = tracer._clock
        self._virtual_start = clock.now() if clock is not None else 0.0
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        wall = time.perf_counter() - self._wall_start
        clock = tracer._clock
        virtual = (clock.now() - self._virtual_start) if clock is not None else 0.0
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        tracer._record(self.path, wall, virtual, self.attributes)


class _NullSpan:
    """Returned when tracing is disabled; enters and exits for free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and aggregates them by path.

    When ``registry`` is given, the tracer obeys its enabled flag, so
    ``Registry.disable()`` (or ``REPRO_OBS=0``) silences tracing and
    metrics together.
    """

    def __init__(
        self,
        registry: Registry | None = None,
        clock: _ClockLike | None = None,
    ):
        self._registry = registry
        self._enabled = True
        self._clock = clock
        self._stack: list[Span] = []
        self._aggregate: dict[tuple[str, ...], SpanStats] = {}

    # -- state --------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        if self._registry is not None:
            return self._registry.enabled and self._enabled
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def bind_clock(self, clock: _ClockLike | None) -> None:
        """Attach the virtual clock spans should read (None detaches)."""
        self._clock = clock

    def reset(self) -> None:
        self._stack.clear()
        self._aggregate.clear()

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Context manager for one span; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attributes)

    def _record(
        self,
        path: tuple[str, ...],
        wall: float,
        virtual: float,
        attributes: Mapping[str, Any],
    ) -> None:
        stats = self._aggregate.get(path)
        if stats is None:
            stats = self._aggregate[path] = SpanStats(path=path)
        stats.count += 1
        stats.wall_seconds += wall
        stats.virtual_seconds += virtual
        stats.attributes.update(attributes)

    # -- export -------------------------------------------------------------

    def summary(self) -> list[SpanStats]:
        """Finished-span aggregates in depth-first (flame) order."""
        return [self._aggregate[path] for path in sorted(self._aggregate)]

    def render_summary(self) -> str:
        """Flame-style text: indentation mirrors span nesting."""
        rows = self.summary()
        if not rows:
            return "(no spans recorded)"
        name_width = max(2 * s.depth + len(s.name) for s in rows)
        lines = [
            f"{'span'.ljust(name_width)}  {'count':>7}  {'wall s':>10}  {'virtual s':>12}"
        ]
        for s in rows:
            label = ("  " * s.depth + s.name).ljust(name_width)
            lines.append(
                f"{label}  {s.count:>7}  {s.wall_seconds:>10.4f}  "
                f"{s.virtual_seconds:>12.2f}"
            )
        return "\n".join(lines)


_default_tracer: Tracer | None = None


def get_tracer() -> Tracer:
    """The process-global tracer, tied to the default registry."""
    global _default_tracer
    if _default_tracer is None:
        _default_tracer = Tracer(registry=get_registry())
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    global _default_tracer
    _default_tracer = tracer
    return tracer


# -- module-level conveniences over the default tracer -------------------------

def span(name: str, **attributes: Any):
    return get_tracer().span(name, **attributes)


def bind_clock(clock: _ClockLike | None) -> None:
    get_tracer().bind_clock(clock)


def summary() -> list[SpanStats]:
    return get_tracer().summary()


def render_summary() -> str:
    return get_tracer().render_summary()


def reset() -> None:
    get_tracer().reset()
