"""Dependency-free metrics: counters, gauges, and histograms.

The registry is the measurement substrate for every layer of the
reproduction — the HTTP front end counts requests by status, the crawl
fleet records per-machine latency histograms, the BFS crawler publishes
frontier-depth gauges.  Design constraints, in order:

1. **Zero third-party dependencies.**  The platform layer imports this
   module, so it must not pull in anything beyond the standard library.
2. **Near-zero cost when disabled.**  Every mutator bails out on a
   single attribute check, so an instrumented crawl with ``REPRO_OBS=0``
   runs at seed speed.
3. **Deterministic output.**  Snapshots order metrics and label series
   lexicographically so reports diff cleanly across runs.

Metrics support labels (named dimensions, e.g. ``status="429"`` or
``machine="10.0.0.3"``); each distinct label-value combination is an
independent series.  Histograms use fixed log-spaced bucket edges
(see :func:`log_buckets`) because the quantities we track — latencies,
waits — span several orders of magnitude.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "log_buckets",
    "quantile_from_sample",
    "set_registry",
]

#: Environment variable gating the default registry: ``REPRO_OBS=0``
#: creates it disabled, anything else (or unset) enabled.
OBS_ENV_VAR = "REPRO_OBS"


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` log-spaced upper bucket edges: start, start*factor, ...

    A terminal ``+inf`` edge is implicit in every histogram, so the
    returned edges only cover the finite range.
    """
    if start <= 0.0:
        raise ValueError("bucket edges must be positive")
    if factor <= 1.0:
        raise ValueError("bucket factor must be > 1")
    if count < 1:
        raise ValueError("need at least one bucket edge")
    return tuple(start * factor**i for i in range(count))


#: Default edges for latency/wait histograms: 1 ms .. ~524 s, factor 2.
DEFAULT_LATENCY_BUCKETS = log_buckets(0.001, 2.0, 20)


class _Metric:
    """Common machinery: label handling and the per-series value dict."""

    kind = "abstract"

    def __init__(self, registry: "Registry", name: str, help: str, labels: Sequence[str]):
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got "
                f"{tuple(labels)}"
            )
        try:
            return tuple(str(labels[n]) for n in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got "
                f"{tuple(labels)}"
            ) from exc

    def clear(self) -> None:
        """Drop every recorded series (registration is kept)."""
        self._series.clear()

    # -- snapshot helpers ---------------------------------------------------

    def _sample_value(self, raw: object) -> object:
        return raw

    def samples(self) -> list[dict]:
        """All series, sorted by label values, as JSON-ready dicts."""
        out = []
        for key in sorted(self._series):
            out.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "value": self._sample_value(self._series[key]),
                }
            )
        return out

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": self.samples(),
        }


class Counter(_Metric):
    """A monotonically increasing sum (requests served, retries, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of one series (0.0 when never incremented)."""
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]


class Gauge(_Metric):
    """A value that goes up and down (frontier size, pool totals)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return float(self._series.get(self._key(labels), 0.0))  # type: ignore[arg-type]


class _HistSeries:
    """One histogram series: per-bucket counts plus running aggregates."""

    __slots__ = ("bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, n_edges: int):
        self.bucket_counts = [0] * (n_edges + 1)  # final slot = +inf overflow
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf


class Histogram(_Metric):
    """Distribution of observations over fixed log-spaced buckets.

    An observation lands in the first bucket whose upper edge is >= the
    value (``le`` semantics); values above the last edge land in the
    implicit ``+inf`` overflow bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "Registry",
        name: str,
        help: str,
        labels: Sequence[str],
        buckets: Iterable[float] | None = None,
    ):
        super().__init__(registry, name, help, labels)
        edges = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bucket edges must be strictly increasing")
        self.bucket_edges = edges

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistSeries(len(self.bucket_edges))
        series.count += 1
        series.total += value
        if value < series.minimum:
            series.minimum = value
        if value > series.maximum:
            series.maximum = value
        series.bucket_counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bucket_edges)
        while lo < hi:  # first edge >= value (bisect_left over edges)
            mid = (lo + hi) // 2
            if self.bucket_edges[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _sample_value(self, raw: object) -> object:
        series: _HistSeries = raw  # type: ignore[assignment]
        cumulative = []
        running = 0
        for n in series.bucket_counts:
            running += n
            cumulative.append(running)
        return {
            "count": series.count,
            "sum": series.total,
            "min": series.minimum if series.count else None,
            "max": series.maximum if series.count else None,
            "bucket_edges": list(self.bucket_edges) + ["+inf"],
            "cumulative_counts": cumulative,
        }

    def series_stats(self, **labels: object) -> dict | None:
        """Snapshot of one series (None when never observed)."""
        raw = self._series.get(self._key(labels))
        return None if raw is None else self._sample_value(raw)  # type: ignore[return-value]

    def quantile(self, q: float, **labels: object) -> float | None:
        """Quantile estimate of one series by log-bucket interpolation.

        Returns ``None`` when the series has never been observed.  The
        estimate interpolates linearly inside the bucket holding the
        ``q``-th observation and is clamped to the observed ``[min, max]``
        range, so ``quantile(0.0)`` is the exact minimum, ``quantile(1.0)``
        the exact maximum, and a single-valued series returns that value
        for every ``q``.  Observations in the ``+inf`` overflow bucket
        report the observed maximum.
        """
        stats = self.series_stats(**labels)
        return None if stats is None else quantile_from_sample(stats, q)


def quantile_from_sample(sample: Mapping[str, object], q: float) -> float:
    """Quantile from a histogram sample dict (the ``samples()`` value shape).

    Works on live :meth:`Histogram.series_stats` output and on snapshots
    read back from a run report, so dashboards can compute p50/p99 rows
    without the original :class:`Histogram` object.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    count = int(sample["count"])  # type: ignore[arg-type]
    if count <= 0:
        raise ValueError("cannot take a quantile of an empty histogram series")
    minimum = float(sample["min"])  # type: ignore[arg-type]
    maximum = float(sample["max"])  # type: ignore[arg-type]
    cumulative: Sequence[int] = sample["cumulative_counts"]  # type: ignore[assignment]
    edges: Sequence[object] = sample["bucket_edges"]  # type: ignore[assignment]
    rank = q * count
    # First bucket whose cumulative count covers the rank.
    bucket = 0
    while bucket < len(cumulative) and cumulative[bucket] < rank:
        bucket += 1
    bucket = min(bucket, len(cumulative) - 1)
    if edges[bucket] == "+inf":  # the overflow bucket: clamp to the max
        return maximum
    upper = float(edges[bucket])  # type: ignore[arg-type]
    lower = float(edges[bucket - 1]) if bucket > 0 else 0.0  # type: ignore[arg-type]
    below = cumulative[bucket - 1] if bucket > 0 else 0
    in_bucket = cumulative[bucket] - below
    if in_bucket <= 0:
        estimate = upper
    else:
        estimate = lower + (upper - lower) * (rank - below) / in_bucket
    return min(max(estimate, minimum), maximum)


_METRIC_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Registry:
    """Holds named metrics; get-or-create semantics per (name, kind).

    ``enabled=None`` (the default) consults the ``REPRO_OBS`` environment
    variable, so an operator can switch off all instrumentation without
    touching code.
    """

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get(OBS_ENV_VAR, "1") != "0"
        self.enabled = bool(enabled)
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric's series; registrations are preserved."""
        with self._lock:
            for metric in self._metrics.values():
                metric.clear()

    # -- registration -------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if tuple(labels) != existing.label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(self, name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=buckets
        )

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every metric, deterministically ordered."""
        return {
            "enabled": self.enabled,
            "metrics": [
                self._metrics[name].snapshot() for name in sorted(self._metrics)
            ],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_text(self) -> str:
        """Prometheus-flavoured text exposition (for humans and dumps)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for sample in metric.samples():
                label_text = ",".join(
                    f'{k}="{v}"' for k, v in sample["labels"].items()
                )
                suffix = f"{{{label_text}}}" if label_text else ""
                value = sample["value"]
                if isinstance(value, dict):  # histogram
                    lines.append(f"{name}_count{suffix} {value['count']}")
                    lines.append(f"{name}_sum{suffix} {value['sum']:.6g}")
                else:
                    lines.append(f"{name}{suffix} {value:.6g}")
        return "\n".join(lines)


_default_registry: Registry | None = None
_default_lock = threading.Lock()


def get_registry() -> Registry:
    """The process-global default registry (created lazily)."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = Registry()
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Swap the process-global registry (tests, embedders); returns it."""
    global _default_registry
    _default_registry = registry
    return registry
