"""``python -m repro.obs`` — instrumented-crawl metrics dump.

Builds a small synthetic world, crawls it over the simulated HTTP front
end with full instrumentation, and dumps the resulting metric registry
and span summary.  Useful as a smoke test of the observability wiring
and as a quick look at what a crawl's telemetry contains.

    python -m repro.obs                    # text dump, 3000-user world
    python -m repro.obs --users 10000      # bigger world
    python -m repro.obs --json             # registry + spans as JSON
"""

from __future__ import annotations

import argparse
import json

from . import build_report, get_registry, get_tracer, trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a small instrumented crawl and dump its telemetry.",
    )
    parser.add_argument("--users", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--machines", type=int, default=11)
    parser.add_argument(
        "--json", action="store_true", help="dump a RunReport JSON instead of text"
    )
    args = parser.parse_args(argv)

    # Imported here so the obs package itself stays dependency-free.
    from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
    from repro.synth.world import build_world, WorldConfig

    registry = get_registry()
    registry.reset()
    tracer = get_tracer()
    tracer.reset()

    world = build_world(WorldConfig(n_users=args.users, seed=args.seed))
    frontend = world.frontend()
    crawler = BidirectionalBFSCrawler(
        frontend, CrawlConfig(n_machines=args.machines)
    )
    with trace.span("obs.dump", users=args.users, seed=args.seed):
        dataset = crawler.crawl([world.seed_user_id()])

    coverage = dict(vars(dataset.stats))
    if args.json:
        report = build_report(
            kind="dump",
            config={"users": args.users, "seed": args.seed, "machines": args.machines},
            coverage=coverage,
        )
        print(report.to_json())
    else:
        print("== metrics ==")
        print(registry.render_text())
        print()
        print("== spans ==")
        print(tracer.render_summary())
        print()
        print("== coverage ==")
        print(json.dumps(coverage, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
