"""The live telemetry hook: streaming figures + crawl health reporting.

:class:`LiveTelemetry` is a :class:`~repro.crawler.bfs.CrawlHooks`
implementation that turns a running crawl into a continuously observable
system.  It feeds the incremental sketches of
:mod:`repro.obs.live.sketches` from two event streams:

* **profile events** — every ``on_page`` call updates the attribute /
  country tallies and buffers the page's node id and edges;
* **sealed edge segments** — when attached to a campaign's
  :class:`~repro.store.segments.SegmentWriter` (:meth:`consume_seals`),
  edge batches arrive through the writer's ``on_seal`` callback as the
  exact in-memory arrays that were just made durable.  Without a store,
  the page-edge buffer is flushed at epoch boundaries instead.

At every checkpoint the telemetry emits an **epoch**: a figure snapshot
(degree CCDF buckets, reciprocity, components, attribute/country
tallies, and an ``msbfs``-based path-length refresh on a virtual-clock
cadence) pinned to the checkpoint's exact ``(n_pages, n_edges)`` cut.
Epochs are only emitted when the sketches agree with the checkpoint
snapshot's accounting — if the store journaled a page the telemetry
never saw (a crash injected between the two hooks), the inconsistent cut
is skipped and the previous epoch stands, which is what keeps every
published epoch provably bit-equal to a batch recomputation.

The whole layer honours the ``REPRO_OBS=0`` kill switch: with the
registry disabled every hook returns immediately and no report is
written.

The continuously-rewritten ``run_report.json`` (atomic replace, see
:meth:`~repro.obs.report.RunReport.write`) carries a schema-versioned
``extra["live"]`` section; :func:`validate_live_section` checks its
shape.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.crawler.bfs import CrawlHooks, CrawlSnapshot, ResumeState
from repro.crawler.dataset import CrawlDataset
from repro.obs.metrics import Registry, get_registry, quantile_from_sample
from repro.obs.report import RunReport

from .sketches import (
    AttributeSketch,
    ComponentSketch,
    DegreeSketch,
    ReciprocitySketch,
    sample_source_indices,
)

__all__ = [
    "LIVE_SCHEMA_VERSION",
    "LiveTelemetry",
    "path_length_refresh",
    "validate_live_section",
]

LIVE_SCHEMA_VERSION = 1

#: Required keys of the ``extra["live"]`` section and their types.
_LIVE_KEYS: dict[str, type | tuple[type, ...]] = {
    "live_schema_version": int,
    "status": str,
    "progress": dict,
    "fleet": dict,
    "history": list,
}

_EPOCH_KEYS: dict[str, type | tuple[type, ...]] = {
    "sequence": int,
    "n_pages": int,
    "n_edges": int,
    "virtual_now": (int, float),
    "figures": dict,
}

_STATUSES = ("running", "aborted", "complete")


def validate_live_section(live: object) -> list[str]:
    """Check a decoded ``extra["live"]`` section; ``[]`` means valid."""
    problems: list[str] = []
    if not isinstance(live, Mapping):
        return [f"live section must be a mapping, got {type(live).__name__}"]
    for key, expected in _LIVE_KEYS.items():
        if key not in live:
            problems.append(f"live section missing key {key!r}")
        elif not isinstance(live[key], expected):
            problems.append(f"live.{key} must be {expected}")
    if live.get("status") not in (None,) + _STATUSES:
        problems.append(f"live.status {live.get('status')!r} not in {_STATUSES}")
    version = live.get("live_schema_version")
    if isinstance(version, int) and version > LIVE_SCHEMA_VERSION:
        problems.append(
            f"live_schema_version {version} is newer than supported "
            f"{LIVE_SCHEMA_VERSION}"
        )
    epochs = list(live.get("history") or [])
    if live.get("epoch") is not None:
        epochs.append(live["epoch"])
    for i, epoch in enumerate(epochs):
        if not isinstance(epoch, Mapping):
            problems.append(f"epoch[{i}] must be a mapping")
            continue
        for key, expected in _EPOCH_KEYS.items():
            if key not in epoch:
                problems.append(f"epoch[{i}] missing key {key!r}")
            elif not isinstance(epoch[key], expected):
                problems.append(f"epoch[{i}].{key} must be {expected}")
    return problems


def path_length_refresh(graph, n_sources: int) -> dict:
    """Sampled multi-source BFS hop histogram over a (partial) graph.

    Deterministic in the graph and ``n_sources`` (see
    :func:`~repro.obs.live.sketches.sample_source_indices`), so the
    batch pipeline reproduces a live refresh exactly.
    """
    from repro.graph.msbfs import batch_hop_counts

    sources = sample_source_indices(graph.n, n_sources)
    counts = batch_hop_counts(graph, sources)
    total = int(counts.sum())
    weighted = int((np.arange(len(counts), dtype=np.int64) * counts).sum())
    return {
        "n_sources": int(len(sources)),
        "hop_counts": counts.tolist(),
        "mean_hops": weighted / total if total else None,
        "as_of_n_edges": int(graph.n_edges),
    }


class _ForwardGraph:
    """Forward-only CSR view for the live path refresh.

    Directed :func:`~repro.graph.msbfs.batch_hop_counts` reads exactly
    ``n`` / ``indptr`` / ``indices`` / ``n_edges`` — and the reciprocity
    sketch already holds the edge set sorted by packed ``(src, dst)``
    key and deduplicated, so the adjacency assembles with *no sort at
    all*: a rank table remaps the (dense, ascending) node ids, and the
    key order *is* CSR row order.  Compact indices equal what
    ``CSRGraph.from_edge_arrays(..., node_ids=...)`` assigns over the
    same node universe, which keeps the refresh bit-equal to the batch
    recomputation.
    """

    def __init__(self, n, indptr, indices, n_edges):
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self.n_edges = n_edges


def _forward_graph(reciprocity, degrees) -> _ForwardGraph:
    sources, targets = reciprocity.edge_arrays()
    node_ids = degrees.node_ids()  # every edge endpoint is "seen"
    n = len(node_ids)
    rank = np.empty(int(node_ids[-1]) + 1 if n else 0, dtype=np.int64)
    rank[node_ids] = np.arange(n, dtype=np.int64)
    src = rank[sources]
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.bincount(src, minlength=n)
    np.cumsum(indptr, out=indptr)
    return _ForwardGraph(n, indptr, rank[targets], len(sources))


class LiveTelemetry(CrawlHooks):
    """Streaming figure sketches + a continuously-rewritten run report.

    Compose with a :class:`~repro.store.campaign.CampaignStore` through
    :class:`~repro.crawler.bfs.HookChain` (store first) and
    :meth:`consume_seals`, or use standalone as the only hooks object —
    then :paramref:`epoch_every_pages` drives the epoch cadence and
    edges are ingested from the page buffer.
    """

    def __init__(
        self,
        report_path: str | Path | None = None,
        registry: Registry | None = None,
        epoch_every_pages: int = 500,
        progress_every_pages: int = 250,
        path_sources: int = 8,
        path_refresh_virtual: float = 5.0,
        history: int = 24,
        config: Mapping[str, object] | None = None,
        progress_min_wall_seconds: float = 0.5,
    ):
        self.report_path = Path(report_path) if report_path is not None else None
        self._registry = registry if registry is not None else get_registry()
        self.epoch_every_pages = epoch_every_pages
        self.progress_every_pages = progress_every_pages
        self.path_sources = path_sources
        #: Minimum virtual seconds between msbfs path refreshes (0 =
        #: refresh at every epoch).  The refresh is the one figure whose
        #: cost grows with the whole graph (CSR rebuild + batched BFS),
        #: so it rides the virtual clock rather than the page count.
        self.path_refresh_virtual = path_refresh_virtual
        self.history = history
        self._config = dict(config or {})
        #: Minimum wall seconds between page-cadence report rewrites; a
        #: fast simulated crawl would otherwise rewrite the report far
        #: faster than any dashboard polls it.  Epoch and terminal
        #: writes are never throttled.
        self.progress_min_wall_seconds = progress_min_wall_seconds
        #: Extra report sections: name -> zero-arg provider whose return
        #: value is embedded under ``extra[name]`` on every rewrite.
        #: Campaigns register the serving layer's SLO section here.
        self.sections: dict[str, object] = {}

        self.degrees = DegreeSketch()
        self.reciprocity = ReciprocitySketch()
        self.components = ComponentSketch()
        self.attributes = AttributeSketch()

        self._clock = None
        self._seal_fed = False
        self._pages = 0
        self._started: float | None = None
        self._dead_letters = 0
        self._redriven = 0
        self._status = "running"
        self._error: str | None = None
        self._epochs: list[dict] = []
        self._history_cache: list[dict] = []
        self._epoch_sequence = 0
        self._last_epoch_pages = 0
        self._last_paths: dict | None = None
        self._last_path_virtual = -float("inf")
        self._metrics_cache: dict = {}
        self._last_write_wall = -float("inf")
        self._buf_nodes: list[int] = []
        self._buf_pages: list[list] = []
        self._buf_profiles: list = []

    # -- wiring ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """False under ``REPRO_OBS=0`` — callers may then skip chaining
        this hook entirely (every hook body would no-op anyway)."""
        return self._registry.enabled

    def consume_seals(self, writer) -> None:
        """Feed edge sketches from a SegmentWriter's seal callback.

        Once attached, ``on_page`` stops buffering edges entirely — every
        edge reaches the sketches through a sealed (durable) segment, as
        the exact arrays the writer just flushed.
        """
        writer.on_seal = self._on_seal
        self._seal_fed = True
        self._buf_pages = []

    def _on_seal(self, path, sources, targets) -> None:
        if not self._registry.enabled:
            return
        self._ingest_edges(sources, targets)

    # -- CrawlHooks -----------------------------------------------------------

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def on_resume(self, resume: ResumeState) -> None:
        if not self._registry.enabled:
            return
        self._pages = len(resume.profiles)
        self._last_epoch_pages = self._pages
        self._started = resume.snapshot.started
        for profile in resume.profiles.values():
            self.attributes.add_profile(profile)
        ids = np.fromiter(
            resume.profiles, dtype=np.int64, count=len(resume.profiles)
        )
        self.degrees.add_nodes(ids)
        self.components.add_nodes(ids)
        self._ingest_edges(
            np.asarray(resume.sources, dtype=np.int64),
            np.asarray(resume.targets, dtype=np.int64),
        )

    def on_page(self, user_id, profile, new_edges) -> None:
        if not self._registry.enabled:
            return
        self._pages += 1
        if self._started is None and self._clock is not None:
            self._started = self._clock.now()
        self._buf_profiles.append(profile)
        self._buf_nodes.append(int(user_id))
        if not self._seal_fed and new_edges:
            self._buf_pages.append(new_edges)
        if (
            self.progress_every_pages
            and self._pages % self.progress_every_pages == 0
        ):
            self._write_report(throttled=True)

    def should_checkpoint(self, n_pages: int, virtual_now: float) -> bool:
        if not self._registry.enabled or not self.epoch_every_pages:
            return False
        return self._pages - self._last_epoch_pages >= self.epoch_every_pages

    def on_checkpoint(self, snapshot: CrawlSnapshot) -> None:
        if not self._registry.enabled:
            return
        self._flush_buffers()
        consistent = (
            self._pages == snapshot.n_pages
            and self.degrees.n_edges == snapshot.n_edges
        )
        if consistent:
            self._emit_epoch(snapshot)
        # The full registry dump is embedded only at terminal writes;
        # mid-run readers get fleet health from the live section, and a
        # checkpoint write stays a sub-millisecond compact rewrite.
        self._write_report(virtual_now=snapshot.virtual_now)

    def on_dead_letter(self, user_id, reason, virtual_now) -> None:
        if self._registry.enabled:
            self._dead_letters += 1

    def on_redrive(self, user_id, virtual_now) -> None:
        if self._registry.enabled:
            self._redriven += 1

    def on_abort(self, error: BaseException) -> None:
        if not self._registry.enabled:
            return
        self._status = "aborted"
        self._error = f"{type(error).__name__}: {error}"
        self._metrics_cache = self._registry.snapshot()
        self._write_report()

    def on_finish(self, dataset: CrawlDataset) -> None:
        if not self._registry.enabled:
            return
        if self._status != "aborted":
            self._status = "complete"
        self._metrics_cache = self._registry.snapshot()
        self._write_report(coverage=dict(vars(dataset.stats)))

    # -- sketch ingestion -----------------------------------------------------

    def _ingest_edges(self, sources, targets) -> None:
        self.degrees.add_edges(sources, targets)
        self.reciprocity.add_edges(sources, targets)
        self.components.add_edges(sources, targets)

    def _flush_buffers(self) -> None:
        if self._buf_profiles:
            self.attributes.add_profiles(self._buf_profiles)
            self._buf_profiles = []
        if self._buf_nodes:
            ids = np.asarray(self._buf_nodes, dtype=np.int64)
            self.degrees.add_nodes(ids)
            self.components.add_nodes(ids)
            self._buf_nodes = []
        if self._buf_pages:
            pairs = np.array(
                [edge for page in self._buf_pages for edge in page],
                dtype=np.int64,
            )
            self._ingest_edges(pairs[:, 0], pairs[:, 1])
            self._buf_pages = []

    # -- epochs & figures -----------------------------------------------------

    def _emit_epoch(self, snapshot: CrawlSnapshot) -> None:
        self._epoch_sequence += 1
        self._last_epoch_pages = self._pages
        self._refresh_paths(snapshot.virtual_now)
        epoch = {
            "sequence": self._epoch_sequence,
            "n_pages": int(snapshot.n_pages),
            "n_edges": int(snapshot.n_edges),
            "virtual_now": float(snapshot.virtual_now),
            "figures": self.figures(),
        }
        self._epochs.append(epoch)
        if len(self._epochs) > self.history:
            self._epochs = self._epochs[-self.history:]
        # History only changes here, so the report's history rows are
        # rebuilt per epoch, not per write.
        self._history_cache = [
            {
                "sequence": e["sequence"],
                "n_pages": e["n_pages"],
                "n_edges": e["n_edges"],
                "virtual_now": e["virtual_now"],
                "figures": e["figures"],
            }
            for e in self._epochs[:-1]
        ]

    def _refresh_paths(self, virtual_now: float) -> None:
        if self.path_sources <= 0 or self.reciprocity.n_edges == 0:
            return
        if (
            self.path_refresh_virtual > 0
            and virtual_now - self._last_path_virtual < self.path_refresh_virtual
        ):
            return
        self._last_paths = path_length_refresh(
            _forward_graph(self.reciprocity, self.degrees), self.path_sources
        )
        self._last_path_virtual = virtual_now

    def figures(self) -> dict:
        """Current figure estimates from the sketches (one epoch's payload)."""
        self._flush_buffers()
        figures = {
            "n_nodes": self.degrees.n_nodes,
            "n_edges": self.degrees.n_edges,
            "degree": self.degrees.figures(),
            "components": self.components.summary(self.degrees.node_ids()),
            "path_lengths": self._last_paths,
        }
        figures.update(self.reciprocity.figures())
        figures.update(self.attributes.figures())
        return figures

    # -- the live report ------------------------------------------------------

    def _progress(self, virtual_now: float | None) -> dict:
        if virtual_now is None and self._clock is not None:
            virtual_now = self._clock.now()
        elapsed = None
        if virtual_now is not None and self._started is not None:
            elapsed = max(0.0, virtual_now - self._started)
        rate = self._pages / elapsed if elapsed else None
        frontier = self._gauge_value("crawl.frontier_size")
        eta = None
        if rate and frontier is not None:
            eta = frontier / rate
        return {
            "pages": self._pages,
            "edges": self.degrees.n_edges,
            "nodes": self.degrees.n_nodes,
            "frontier": frontier,
            "virtual_now": virtual_now,
            "virtual_elapsed": elapsed,
            "pages_per_virtual_second": rate,
            "eta_virtual_seconds": eta,
        }

    def _gauge_value(self, name: str):
        metric = self._registry.get(name)
        if metric is None:
            return None
        samples = metric.samples()
        return samples[0]["value"] if samples else None

    def _fleet(self) -> dict:
        fleet: dict = {
            "dead_letters": self._dead_letters,
            "redriven": self._redriven,
            "breakers": {"closed": 0, "half_open": 0, "open": 0},
            "retry_budget_remaining": self._gauge_value(
                "crawler.retry_budget_remaining"
            ),
            "fetch_latency": {"p50": None, "p99": None},
        }
        breaker = self._registry.get("crawler.breaker_state")
        if breaker is not None:
            names = {0.0: "closed", 1.0: "half_open", 2.0: "open"}
            for sample in breaker.samples():
                state = names.get(sample["value"])
                if state is not None:
                    fleet["breakers"][state] += 1
        latency = self._registry.get("crawler.fetch_virtual_seconds")
        if latency is not None:
            merged = merge_histogram_samples(
                [s["value"] for s in latency.samples()]
            )
            if merged is not None:
                fleet["fetch_latency"] = {
                    "p50": quantile_from_sample(merged, 0.50),
                    "p99": quantile_from_sample(merged, 0.99),
                }
        return fleet

    def live_section(self, virtual_now: float | None = None) -> dict:
        return {
            "live_schema_version": LIVE_SCHEMA_VERSION,
            "status": self._status,
            "error": self._error,
            "progress": self._progress(virtual_now),
            "fleet": self._fleet(),
            "epoch": self._epochs[-1] if self._epochs else None,
            "history": self._history_cache,
        }

    def _write_report(
        self,
        virtual_now: float | None = None,
        coverage: dict | None = None,
        throttled: bool = False,
    ) -> None:
        if self.report_path is None:
            return
        now = time.monotonic()
        if (
            throttled
            and now - self._last_write_wall < self.progress_min_wall_seconds
        ):
            return
        self._last_write_wall = now
        extra: dict = {"live": self.live_section(virtual_now)}
        for name, provider in self.sections.items():
            extra[name] = provider()
        report = RunReport(
            kind="live_crawl",
            config=dict(self._config),
            metrics=self._metrics_cache,
            coverage=dict(coverage or {}),
            extra=extra,
        )
        report.write(self.report_path, indent=None)


def merge_histogram_samples(samples: list) -> dict | None:
    """Pool histogram series with identical bucket edges into one sample.

    The fleet records fetch latency per machine; the health report wants
    fleet-wide quantiles.  Bucket counts and totals add; min/max narrow.
    Returns ``None`` when nothing has been observed.
    """
    merged: dict | None = None
    for sample in samples:
        if not sample["count"]:
            continue
        if merged is None:
            merged = {
                "count": sample["count"],
                "sum": sample["sum"],
                "min": sample["min"],
                "max": sample["max"],
                "bucket_edges": list(sample["bucket_edges"]),
                "cumulative_counts": list(sample["cumulative_counts"]),
            }
            continue
        if list(sample["bucket_edges"]) != merged["bucket_edges"]:
            raise ValueError("cannot merge histograms with different buckets")
        merged["count"] += sample["count"]
        merged["sum"] += sample["sum"]
        merged["min"] = min(merged["min"], sample["min"])
        merged["max"] = max(merged["max"], sample["max"])
        merged["cumulative_counts"] = [
            a + b
            for a, b in zip(merged["cumulative_counts"], sample["cumulative_counts"])
        ]
    return merged
