"""``repro.obs.live`` — streaming analytics for a running crawl.

The layer that turns a multi-hour campaign from a black box into a
continuously observable system (see ``docs/observability.md``):

* :mod:`~repro.obs.live.sketches` — mergeable incremental sketches whose
  figures are bit-equal to the batch pipeline on the ingested prefix;
* :mod:`~repro.obs.live.telemetry` — the :class:`LiveTelemetry` crawl
  hook: feeds the sketches from page events and sealed edge segments,
  emits checkpoint-aligned figure epochs, and continuously rewrites an
  atomic ``run_report.json`` with a schema-versioned ``live`` section;
* :mod:`~repro.obs.live.dashboard` — renders that report as a terminal
  health report (``python -m repro.obs.live``).

Verification lives batch-side in :mod:`repro.analysis.streaming`.
"""

from .sketches import (
    AttributeSketch,
    ComponentSketch,
    DegreeSketch,
    ReciprocitySketch,
    ccdf_bucket_counts,
    sample_source_indices,
)
from .telemetry import (
    LIVE_SCHEMA_VERSION,
    LiveTelemetry,
    merge_histogram_samples,
    path_length_refresh,
    validate_live_section,
)

__all__ = [
    "AttributeSketch",
    "ComponentSketch",
    "DegreeSketch",
    "LIVE_SCHEMA_VERSION",
    "LiveTelemetry",
    "ReciprocitySketch",
    "ccdf_bucket_counts",
    "merge_histogram_samples",
    "path_length_refresh",
    "sample_source_indices",
    "validate_live_section",
]
