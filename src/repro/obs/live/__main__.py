"""``python -m repro.obs.live`` — render a live crawl report.

    python -m repro.obs.live /tmp/camp/run_report.json          # one-shot
    python -m repro.obs.live /tmp/camp/run_report.json --follow # dashboard
    python -m repro.obs.live /tmp/camp/run_report.json --json   # live section
    python -m repro.obs.live /tmp/camp/run_report.json --verify --campaign /tmp/camp

``--follow`` tails the (atomically replaced) report by modification
time until the crawl reports a terminal status; ``--verify`` proves the
newest epoch's figures against a batch recomputation over the same
crawled prefix (exit 1 on any difference).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.obs.report import validate_run_report

from .dashboard import load_report_document, render_report
from .telemetry import validate_live_section

_TERMINAL = ("aborted", "complete")


def _load(path: Path) -> tuple[dict | None, list[str]]:
    try:
        document = load_report_document(path)
    except (OSError, ValueError) as exc:
        return None, [f"cannot read {path}: {exc}"]
    problems = validate_run_report(document)
    live = document.get("extra", {}).get("live")
    if live is not None:
        problems.extend(validate_live_section(live))
    return document, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Render (or verify) a crawl's live run_report.json.",
    )
    parser.add_argument(
        "report", nargs="?", default="run_report.json",
        help="path to the report (default: ./run_report.json)",
    )
    parser.add_argument(
        "--json", action="store_true", help="dump the live section as JSON"
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="re-render whenever the report is rewritten, until terminal",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="--follow poll interval in (wall) seconds",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="prove the newest epoch against the batch pipeline",
    )
    parser.add_argument(
        "--campaign", default=None,
        help="campaign directory for --verify (default: the report's parent)",
    )
    args = parser.parse_args(argv)
    path = Path(args.report)

    if args.verify:
        from repro.analysis.streaming import verify_live_report

        campaign = Path(args.campaign) if args.campaign else path.parent
        problems = verify_live_report(path, campaign_dir=campaign)
        for problem in problems:
            print(problem)
        print(
            "live figures verified against batch pipeline"
            if not problems
            else "live report FAILED verification"
        )
        return 1 if problems else 0

    document, problems = _load(path)
    if document is None:
        print(problems[0])
        return 2
    for problem in problems:
        print(f"warning: {problem}")

    if args.json:
        print(json.dumps(document.get("extra", {}).get("live"), indent=2))
        return 0

    print(render_report(document))
    if not args.follow:
        return 0

    last_mtime = path.stat().st_mtime if path.exists() else 0.0
    while True:
        live = document.get("extra", {}).get("live") or {}
        if live.get("status") in _TERMINAL:
            return 0
        time.sleep(args.interval)
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue
        if mtime == last_mtime:
            continue
        last_mtime = mtime
        document, _ = _load(path)
        if document is None:
            continue
        print()
        print(render_report(document))


if __name__ == "__main__":
    raise SystemExit(main())
