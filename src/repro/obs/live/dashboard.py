"""Terminal rendering of a live ``run_report.json``.

Pure functions from a decoded report document to text, so tests can
assert on the output and the CLI (:mod:`repro.obs.live.__main__`) stays
a thin shell.  The renderer only reads the report — it never touches
the campaign directory — and tolerates a report written mid-crawl: every
section degrades to a placeholder when its data has not arrived yet.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_report_document", "render_report"]

_BAR_WIDTH = 40


def load_report_document(path: str | Path) -> dict:
    """Read and decode a report; raises ``OSError`` / ``ValueError``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _fmt(value, spec: str = "", missing: str = "-") -> str:
    if value is None:
        return missing
    return format(value, spec)


def _progress_bar(done: float, total: float) -> str:
    if not total or total <= 0:
        return "[" + "?" * _BAR_WIDTH + "]"
    fraction = min(1.0, max(0.0, done / total))
    filled = int(round(fraction * _BAR_WIDTH))
    return "[" + "#" * filled + "." * (_BAR_WIDTH - filled) + f"] {100 * fraction:5.1f}%"


def _bucket_bars(buckets: list, width: int = 24) -> list[str]:
    """One row per power-of-two degree bucket, bar-scaled to the largest."""
    if not buckets:
        return ["  (no degrees yet)"]
    top = max(buckets)
    rows = []
    for k, count in enumerate(buckets):
        bar = "#" * max(1 if count else 0, int(round(width * count / top)))
        rows.append(f"  deg >= {1 << k:<8d} {count:>9d} {bar}")
    return rows


def render_report(document: dict) -> str:
    """The one-shot health report / dashboard frame for a report dict."""
    lines: list[str] = []
    live = document.get("extra", {}).get("live")
    if live is None:
        return "report has no live telemetry section (was the crawl run with --live?)"

    status = live.get("status", "unknown")
    progress = live.get("progress", {})
    pages = progress.get("pages", 0)
    frontier = progress.get("frontier")
    lines.append(f"crawl status: {status.upper()}")
    if live.get("error"):
        lines.append(f"  aborted by: {live['error']}")
    total = pages + frontier if frontier is not None else None
    lines.append(f"  {_progress_bar(pages, total)}  {pages} pages crawled")
    lines.append(
        f"  edges {_fmt(progress.get('edges'), ',')}   nodes "
        f"{_fmt(progress.get('nodes'), ',')}   frontier {_fmt(frontier, ',.0f')}"
    )
    lines.append(
        f"  virtual time {_fmt(progress.get('virtual_elapsed'), ',.1f')}s   "
        f"throughput {_fmt(progress.get('pages_per_virtual_second'), ',.1f')} "
        f"pages/vs   eta {_fmt(progress.get('eta_virtual_seconds'), ',.1f')}s"
    )

    fleet = live.get("fleet", {})
    breakers = fleet.get("breakers", {})
    latency = fleet.get("fetch_latency", {})
    p50 = latency.get("p50")
    p99 = latency.get("p99")
    lines.append("fleet health")
    lines.append(
        f"  breakers: {breakers.get('closed', 0)} closed / "
        f"{breakers.get('half_open', 0)} half-open / {breakers.get('open', 0)} open"
    )
    lines.append(
        "  fetch latency: p50 "
        + (_fmt(p50 * 1000, ",.1f") + " ms" if p50 is not None else "-")
        + "   p99 "
        + (_fmt(p99 * 1000, ",.1f") + " ms" if p99 is not None else "-")
    )
    lines.append(
        f"  dead letters {fleet.get('dead_letters', 0)}   "
        f"redriven {fleet.get('redriven', 0)}   "
        f"retry budget {_fmt(fleet.get('retry_budget_remaining'), ',.0f')}"
    )

    serving = document.get("extra", {}).get("serving")
    if serving:
        requests = serving.get("requests", {})
        availability = serving.get("availability", {})
        latency = serving.get("latency", {})
        cache = serving.get("cache", {})
        lines.append("serving")
        lines.append(
            f"  requests {_fmt(requests.get('total'), ',')}   "
            f"throttled {_fmt(requests.get('throttled'), ',')}   "
            f"errors {_fmt(requests.get('errors'), ',')}"
        )
        observed = availability.get("observed")
        burn = availability.get("burn_rate")
        lines.append(
            "  availability "
            + (_fmt(100 * observed, ".3f") + "%" if observed is not None else "-")
            + f" (target {_fmt(100 * availability.get('target', 0), '.1f')}%)"
            + "   burn rate "
            + _fmt(burn, ".2f")
        )
        p50 = latency.get("p50")
        p99 = latency.get("p99")
        lines.append(
            "  serve latency: p50 "
            + (_fmt(p50 * 1000, ",.2f") + " ms" if p50 is not None else "-")
            + "   p99 "
            + (_fmt(p99 * 1000, ",.2f") + " ms" if p99 is not None else "-")
        )
        hit_rate = cache.get("hit_rate")
        lines.append(
            "  page cache: hit rate "
            + (_fmt(100 * hit_rate, ".1f") + "%" if hit_rate is not None else "-")
            + f"   size {_fmt(cache.get('size'), ',')}"
            + f"   invalidations {_fmt(cache.get('invalidations'), ',')}"
        )

    epoch = live.get("epoch")
    if epoch is None:
        lines.append("figures: no epoch published yet")
        return "\n".join(lines)

    figures = epoch.get("figures", {})
    lines.append(
        f"figures (epoch {epoch.get('sequence')} @ {epoch.get('n_pages')} pages, "
        f"{epoch.get('n_edges')} edges)"
    )
    lines.append(f"  reciprocity     {_fmt(figures.get('reciprocity'), '.4f')}")
    components = figures.get("components", {})
    n_nodes = figures.get("n_nodes") or 0
    giant = components.get("giant_size", 0)
    share = f" ({100 * giant / n_nodes:.1f}% of nodes)" if n_nodes else ""
    lines.append(
        f"  components      {_fmt(components.get('n_components'), ',')}"
        f"   giant {giant:,}{share}"
    )
    paths = figures.get("path_lengths")
    if paths and paths.get("mean_hops") is not None:
        lines.append(
            f"  mean path       {paths['mean_hops']:.2f} hops "
            f"({paths['n_sources']} sampled sources)"
        )
    countries = figures.get("countries", {})
    if countries:
        top = sorted(countries.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        lines.append(
            "  top countries   "
            + "  ".join(f"{code}:{count}" for code, count in top)
        )
    lines.append("  in-degree ccdf buckets")
    lines.extend(_bucket_bars(figures.get("degree", {}).get("in_ccdf_buckets", [])))

    history = live.get("history", [])
    if history:
        lines.append("history")
        for entry in history[-6:]:
            fig = entry.get("figures", {})
            lines.append(
                f"  epoch {entry.get('sequence'):>3}  pages {entry.get('n_pages'):>8,}"
                f"  edges {entry.get('n_edges'):>9,}"
                f"  reciprocity {_fmt(fig.get('reciprocity'), '.4f')}"
            )
    return "\n".join(lines)
