"""Mergeable incremental sketches over a streaming crawl.

Each sketch consumes batches of crawl observations (edge arrays from
sealed segments, parsed profiles from page events) and can report the
paper's figure inputs at any moment.  Design constraints:

1. **Exactness.**  These are not approximate sketches: every figure a
   sketch reports is *bit-equal* to the batch pipeline recomputed over
   exactly the observations ingested so far.  Degree/CCDF counts and
   component sizes are integer-exact; ratio figures (reciprocity) divide
   the same integers the batch code divides, so the float64 results are
   identical down to the last bit.  That is what lets an aborted crawl's
   partial figures be *proven* against the batch pipeline.
2. **Batch ingestion.**  Edges arrive as numpy arrays (one sealed
   segment, or one epoch's buffered pages) and are processed with
   vectorised operations only — no per-edge Python loop anywhere on the
   crawl's hot path.
3. **Merge laws.**  Every sketch supports ``merge(other)``:
   degree/attribute sketches add elementwise; the reciprocity sketch
   adds pair counts plus the cross-term between the two key sets; the
   component sketch replays the other forest's links.  ``merge`` is
   associative and commutative with ingestion order — the algebra that
   makes per-shard or per-process sketching sound.

Node ids must be non-negative and are used as dense array indexes (the
synthetic worlds allocate them densely from zero); edges are assumed
pre-deduplicated, which the crawler guarantees.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AttributeSketch",
    "ComponentSketch",
    "DegreeSketch",
    "ReciprocitySketch",
    "ccdf_bucket_counts",
    "sample_source_indices",
]

#: Packing base for reciprocity keys; mirrors the crawler's edge-dedup
#: packing, so the same id bound (ids < 2**32) applies.
_PACK = np.int64(1) << np.int64(32)


def ccdf_bucket_counts(degrees) -> list[int]:
    """Power-of-two CCDF buckets: ``counts[k]`` = #values >= ``2**k``.

    The log-scale summary of a degree CCDF (Figure 3's axes are
    log-log): integer-exact, so the live and batch sides agree bitwise.
    Zero values contribute to no bucket; an all-zero sample reports
    ``[]``.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return []
    maximum = int(degrees.max())
    if maximum <= 0:
        return []
    return [
        int((degrees >= (1 << k)).sum()) for k in range(maximum.bit_length())
    ]


def sample_source_indices(n: int, k: int) -> np.ndarray:
    """``min(k, n)`` compact indices spread evenly over ``range(n)``.

    Deterministic in ``(n, k)`` alone, so the live path-length refresh
    and its batch recomputation pick identical BFS sources.
    """
    if n <= 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, n)
    return (np.arange(k, dtype=np.int64) * n) // k


def _grow_to(array: np.ndarray, size: int) -> np.ndarray:
    """Return ``array`` grown (geometrically) to hold ``size`` slots."""
    if size <= len(array):
        return array
    capacity = max(size, 2 * len(array), 1024)
    grown = np.zeros(capacity, dtype=array.dtype)
    grown[: len(array)] = array
    return grown


class DegreeSketch:
    """Exact in/out-degree tallies over densely-indexed node ids.

    Tracks, per node id: out-degree, in-degree, and whether the id has
    been *seen* (as a crawled profile or an edge endpoint) — the same
    node universe the batch graph is built over, so degree multisets
    match exactly, isolated profiles included.
    """

    def __init__(self) -> None:
        self._out = np.zeros(0, dtype=np.int64)
        self._in = np.zeros(0, dtype=np.int64)
        self._seen = np.zeros(0, dtype=bool)
        self.n_edges = 0

    def _ensure(self, max_id: int) -> None:
        size = int(max_id) + 1
        self._out = _grow_to(self._out, size)
        self._in = _grow_to(self._in, size)
        self._seen = _grow_to(self._seen, size)

    def add_nodes(self, ids) -> None:
        """Mark ids as part of the node universe (crawled profiles)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        self._ensure(int(ids.max()))
        self._seen[ids] = True

    def add_edges(self, sources, targets) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.size == 0:
            return
        self._ensure(max(int(sources.max()), int(targets.max())))
        # bincount over the dense id range beats np.add.at by an order
        # of magnitude on the per-seal batch sizes this path sees.
        out_counts = np.bincount(sources, minlength=len(self._out))
        in_counts = np.bincount(targets, minlength=len(self._in))
        self._out += out_counts
        self._in += in_counts
        self._seen |= out_counts.astype(bool)
        self._seen |= in_counts.astype(bool)
        self.n_edges += int(sources.size)

    def merge(self, other: "DegreeSketch") -> None:
        if len(other._out):
            self._ensure(len(other._out) - 1)
            self._out[: len(other._out)] += other._out
            self._in[: len(other._in)] += other._in
            self._seen[: len(other._seen)] |= other._seen
        self.n_edges += other.n_edges

    def node_ids(self) -> np.ndarray:
        return np.flatnonzero(self._seen)

    @property
    def n_nodes(self) -> int:
        return int(self._seen.sum())

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every seen node, in ascending node-id order."""
        return self._out[self._seen]

    def in_degrees(self) -> np.ndarray:
        return self._in[self._seen]

    def figures(self) -> dict:
        out_deg = self.out_degrees()
        in_deg = self.in_degrees()
        return {
            "out_ccdf_buckets": ccdf_bucket_counts(out_deg),
            "in_ccdf_buckets": ccdf_bucket_counts(in_deg),
            "max_out": int(out_deg.max()) if out_deg.size else 0,
            "max_in": int(in_deg.max()) if in_deg.size else 0,
        }


def _count_members(sorted_keys: np.ndarray, queries: np.ndarray) -> int:
    """How many of ``queries`` appear in ``sorted_keys`` (both int64)."""
    if sorted_keys.size == 0 or queries.size == 0:
        return 0
    pos = np.searchsorted(sorted_keys, queries)
    pos = np.minimum(pos, sorted_keys.size - 1)
    return int((sorted_keys[pos] == queries).sum())


class ReciprocitySketch:
    """Exact running count of reciprocated directed edges.

    Keeps the edge set as a sorted array of packed ``u * 2**32 + v``
    keys.  Ingesting a batch ``B`` against the existing set ``E`` adds
    ``2 * |{e in B : rev(e) in E}| + |{e in B : rev(e) in B}|``
    reciprocated edges — each newly completed pair reciprocates both of
    its directions, and the within-batch term counts every such edge
    once from each side.  The ratio divides the same two integers the
    batch pipeline's boolean-mask mean divides, so the float64 value is
    bit-identical.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self.n_edges = 0
        self.n_reciprocal = 0

    def add_edges(self, sources, targets) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.size == 0:
            return
        batch = np.sort(sources * _PACK + targets)
        # reverse is sorted for cache locality, not correctness: ordered
        # searchsorted queries walk the haystack nearly sequentially.
        reverse = np.sort(targets * _PACK + sources)
        self.n_reciprocal += 2 * _count_members(self._keys, reverse)
        self.n_reciprocal += _count_members(batch, reverse)
        self._keys = np.insert(
            self._keys, np.searchsorted(self._keys, batch), batch
        )
        self.n_edges += int(sources.size)

    def merge(self, other: "ReciprocitySketch") -> None:
        reverse = np.sort(
            (other._keys % _PACK) * _PACK + other._keys // _PACK
        )
        self.n_reciprocal += other.n_reciprocal
        self.n_reciprocal += 2 * _count_members(self._keys, reverse)
        self._keys = np.insert(
            self._keys, np.searchsorted(self._keys, other._keys), other._keys
        )
        self.n_edges += other.n_edges

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The ingested edge set, decoded (key-sorted order)."""
        return self._keys // _PACK, self._keys % _PACK

    def value(self) -> float:
        """Fraction of edges whose reverse also exists (0.0 when empty)."""
        if self.n_edges == 0:
            return 0.0
        return self.n_reciprocal / self.n_edges

    def figures(self) -> dict:
        return {
            "reciprocity": self.value(),
            "reciprocal_edges": int(self.n_reciprocal),
        }


class ComponentSketch:
    """Exact weakly-connected-component tracking via vectorised union-find.

    The forest links every root toward the smallest root it meets
    (``np.minimum.at``), iterating until a batch's edges are absorbed —
    each pass strictly lowers some root, so the loop converges in
    O(log) passes of O(batch) work, with no per-edge Python loop.
    """

    def __init__(self) -> None:
        self._parent = np.empty(0, dtype=np.int64)

    def _ensure(self, max_id: int) -> None:
        size = int(max_id) + 1
        if size <= len(self._parent):
            return
        old = len(self._parent)
        capacity = max(size, 2 * old, 1024)
        grown = np.arange(capacity, dtype=np.int64)
        grown[:old] = self._parent
        self._parent = grown

    def _roots(self, ids: np.ndarray) -> np.ndarray:
        parent = self._parent
        roots = parent[ids]
        while True:
            above = parent[roots]
            if np.array_equal(above, roots):
                return roots
            roots = above

    def add_nodes(self, ids) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size:
            self._ensure(int(ids.max()))

    def add_edges(self, sources, targets) -> None:
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.size == 0:
            return
        self._ensure(max(int(sources.max()), int(targets.max())))
        while True:
            ru = self._roots(sources)
            rv = self._roots(targets)
            differs = ru != rv
            if not differs.any():
                break
            low = np.minimum(ru, rv)[differs]
            high = np.maximum(ru, rv)[differs]
            np.minimum.at(self._parent, high, low)
        # Path compression keeps later root lookups near O(1).
        self._parent[sources] = self._roots(sources)
        self._parent[targets] = self._roots(targets)

    def merge(self, other: "ComponentSketch") -> None:
        links = np.flatnonzero(other._parent != np.arange(len(other._parent)))
        if len(other._parent):
            self._ensure(len(other._parent) - 1)
        if links.size:
            self.add_edges(links, other._parent[links])

    def summary(self, node_ids) -> dict:
        """Component count and giant size over the given node universe."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if node_ids.size == 0:
            return {"n_components": 0, "giant_size": 0}
        self._ensure(int(node_ids.max()))
        roots = self._roots(node_ids)
        _, counts = np.unique(roots, return_counts=True)
        return {
            "n_components": int(len(counts)),
            "giant_size": int(counts.max()),
        }


class AttributeSketch:
    """Per-page tallies: attribute presence and country of residence.

    The only sketch fed from profile events rather than edge arrays; the
    per-page cost is a short loop over the profile's public field keys.
    """

    def __init__(self) -> None:
        self.n_profiles = 0
        self.field_counts: dict[str, int] = {}
        self.country_counts: dict[str, int] = {}

    def add_profile(self, profile) -> None:
        self.n_profiles += 1
        counts = self.field_counts
        for key in profile.fields:
            counts[key] = counts.get(key, 0) + 1
        country = profile.country()
        if country is not None:
            self.country_counts[country] = self.country_counts.get(country, 0) + 1

    def add_profiles(self, profiles) -> None:
        """Batch form of :meth:`add_profile` for a buffered page window:
        one C-level Counter pass over all keys instead of a Python dict
        loop per profile."""
        from collections import Counter
        from itertools import chain

        self.n_profiles += len(profiles)
        for key, count in Counter(
            chain.from_iterable(p.fields for p in profiles)
        ).items():
            self.field_counts[key] = self.field_counts.get(key, 0) + count
        countries = Counter(
            country
            for country in (p.country() for p in profiles)
            if country is not None
        )
        for key, count in countries.items():
            self.country_counts[key] = self.country_counts.get(key, 0) + count

    def merge(self, other: "AttributeSketch") -> None:
        self.n_profiles += other.n_profiles
        for key, count in other.field_counts.items():
            self.field_counts[key] = self.field_counts.get(key, 0) + count
        for key, count in other.country_counts.items():
            self.country_counts[key] = self.country_counts.get(key, 0) + count

    def figures(self) -> dict:
        from repro.platform.fields import FIELD_SPECS

        attributes = {}
        for spec in FIELD_SPECS:
            if spec.key == "name":
                attributes[spec.key] = self.n_profiles
            else:
                attributes[spec.key] = self.field_counts.get(spec.key, 0)
        return {
            "attributes": dict(sorted(attributes.items())),
            "countries": dict(sorted(self.country_counts.items())),
        }
