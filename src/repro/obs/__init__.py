"""``repro.obs`` — observability for the Google+ reproduction.

Three pieces, all dependency-free:

* :mod:`repro.obs.metrics` — a labelled metrics registry (counters,
  gauges, log-bucketed histograms) with a process-global default,
  ``snapshot()``/``render_text()``/``to_json()`` exports, and an
  environment kill switch (``REPRO_OBS=0``).
* :mod:`repro.obs.trace` — nested spans that record wall *and*
  simulated-clock virtual time, aggregated flame-style by span path.
* :mod:`repro.obs.report` — the :class:`RunReport` written as
  ``run_report.json`` by the experiment runner and as ``BENCH_*.json``
  records by the benchmark harness.

``python -m repro.obs`` runs a small instrumented crawl and dumps the
metric and span state it produced.
"""

from . import trace
from .metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    log_buckets,
    set_registry,
)
from .report import (
    RUN_REPORT_FILENAME,
    RUN_REPORT_SCHEMA_VERSION,
    RunReport,
    build_report,
    validate_run_report,
)
from .trace import Span, SpanStats, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Registry",
    "RUN_REPORT_FILENAME",
    "RUN_REPORT_SCHEMA_VERSION",
    "RunReport",
    "Span",
    "SpanStats",
    "Tracer",
    "build_report",
    "get_registry",
    "get_tracer",
    "log_buckets",
    "set_registry",
    "set_tracer",
    "trace",
    "validate_run_report",
]
