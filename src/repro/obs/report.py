"""Machine-readable run reports.

A :class:`RunReport` is the durable record of one run — a study, a
crawl, or a benchmark: the configuration it ran under, where its wall
and virtual time went (per-phase span aggregates), a full metric
snapshot, and crawl-coverage accounting (pages fetched, lost-edge and
truncation counts).  The experiment runner writes one as
``run_report.json`` next to the rendered artifacts; the benchmark
harness writes one ``BENCH_<name>.json`` per bench module, so the perf
trajectory of the reproduction is tracked file-by-file from this PR
onward.

The module is deliberately generic: it never imports the pipeline.  The
caller supplies config/coverage dicts; :func:`build_report` pulls phases
and metrics from the (default) tracer and registry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .metrics import Registry, get_registry
from .trace import Tracer, get_tracer

__all__ = [
    "RUN_REPORT_FILENAME",
    "RUN_REPORT_SCHEMA_VERSION",
    "RunReport",
    "build_report",
    "validate_run_report",
]

RUN_REPORT_SCHEMA_VERSION = 1

#: Canonical file name used by the experiment runner.
RUN_REPORT_FILENAME = "run_report.json"

#: Required top-level keys and the types they must carry.
_SCHEMA_TOP_LEVEL: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "kind": str,
    "created_unix": (int, float),
    "config": dict,
    "phases": list,
    "metrics": dict,
    "coverage": dict,
    "extra": dict,
}

_SCHEMA_PHASE_KEYS: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "path": str,
    "count": int,
    "wall_seconds": (int, float),
    "virtual_seconds": (int, float),
}


@dataclass
class RunReport:
    """One run's machine-readable record (see module docstring)."""

    kind: str = "study"
    config: dict = field(default_factory=dict)
    phases: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    coverage: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    schema_version: int = RUN_REPORT_SCHEMA_VERSION

    def to_json_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "config": self.config,
            "phases": self.phases,
            "metrics": self.metrics,
            "coverage": self.coverage,
            "extra": self.extra,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, default=_jsonify)

    def write(self, path: str | Path, indent: int | None = 2) -> Path:
        """Write the report as JSON atomically; returns the path written.

        Always write-temp-then-``os.replace``: the live telemetry layer
        rewrites ``run_report.json`` continuously while dashboards read
        it, so a reader must never observe a torn document — and the
        same guarantee costs nothing on the one-shot paths.

        ``indent=None`` writes the compact form — the live layer's
        choice, since it rewrites the document on a cadence and compact
        encoding is several times cheaper than pretty-printing.
        """
        # Lazy import: this module stays pipeline-free; atomio is the
        # store's dependency-free bottom layer, safe to borrow.
        from repro.store.atomio import publish_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # durable=False: telemetry rewrites this on a cadence, so the
        # atomic rename matters but a per-write fsync would not.
        return publish_text(path, self.to_json(indent=indent) + "\n", durable=False)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        problems = validate_run_report(data)
        if problems:
            raise ValueError(f"invalid run report: {problems}")
        return cls(
            kind=data["kind"],
            config=data["config"],
            phases=data["phases"],
            metrics=data["metrics"],
            coverage=data["coverage"],
            extra=data["extra"],
            created_unix=data["created_unix"],
            schema_version=data["schema_version"],
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_json_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def _jsonify(value: Any) -> Any:
    """Fallback encoder: numpy scalars, paths, dataclass-likes."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "__dict__"):
        return vars(value)
    return str(value)


def validate_run_report(data: Any) -> list[str]:
    """Check a decoded report against the v1 schema; [] means valid."""
    problems: list[str] = []
    if not isinstance(data, Mapping):
        return [f"report must be a mapping, got {type(data).__name__}"]
    for key, expected in _SCHEMA_TOP_LEVEL.items():
        if key not in data:
            problems.append(f"missing key {key!r}")
        elif not isinstance(data[key], expected):
            problems.append(
                f"key {key!r} must be {expected}, got {type(data[key]).__name__}"
            )
    if isinstance(data.get("schema_version"), int):
        if data["schema_version"] > RUN_REPORT_SCHEMA_VERSION:
            problems.append(
                f"schema_version {data['schema_version']} is newer than "
                f"supported {RUN_REPORT_SCHEMA_VERSION}"
            )
    for i, phase in enumerate(data.get("phases") or []):
        if not isinstance(phase, Mapping):
            problems.append(f"phases[{i}] must be a mapping")
            continue
        for key, expected in _SCHEMA_PHASE_KEYS.items():
            if key not in phase:
                problems.append(f"phases[{i}] missing key {key!r}")
            elif not isinstance(phase[key], expected):
                problems.append(f"phases[{i}].{key} must be {expected}")
    metrics = data.get("metrics")
    if isinstance(metrics, Mapping) and metrics and "metrics" not in metrics:
        problems.append("metrics must be a registry snapshot (missing 'metrics' list)")
    return problems


def build_report(
    kind: str = "study",
    config: Mapping[str, Any] | None = None,
    coverage: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
) -> RunReport:
    """Assemble a report from the (default) registry and tracer state."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    return RunReport(
        kind=kind,
        config=dict(config or {}),
        phases=[stats.to_json_dict() for stats in tracer.summary()],
        metrics=registry.snapshot(),
        coverage=dict(coverage or {}),
        extra=dict(extra or {}),
    )
