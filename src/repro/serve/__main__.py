"""Run a standalone traffic storm against a synthetic world.

Builds a world, points a seeded client population at its serving stack,
and prints the SLO summary plus the chained request-trace digest — two
runs with the same arguments must print identical digests and write
identical ``serving`` report sections, which is exactly what the
``serving-slo`` CI job checks.

Run:  python -m repro.serve [--users N] [--clients C] [--requests R]
                            [--seed S] [--mix read_heavy|mixed]
                            [--scenario NAME] [--no-cache]
                            [--record-bodies] [--report PATH]
"""

from __future__ import annotations

import argparse
import json

from repro.obs import RunReport
from repro.synth import WorldConfig, build_world

from . import EventClock, build_traffic
from .slo import validate_serving_section


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--users", type=int, default=5_000)
    parser.add_argument("--clients", type=int, default=500)
    parser.add_argument("--requests", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mix", default="read_heavy")
    parser.add_argument("--scenario", default=None, help="chaos scenario name")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument(
        "--record-bodies",
        action="store_true",
        help="chain response-body digests into the trace digest",
    )
    parser.add_argument("--report", default=None, help="write run_report.json here")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    world = build_world(WorldConfig(n_users=args.users, seed=args.seed))
    clock = EventClock(world.clock.now())
    world.clock = clock
    print(f"world: {world.n_users:,} users, {world.graph.n_edges:,} true edges")
    traffic = build_traffic(
        world.service,
        clock,
        {
            "n_clients": args.clients,
            "seed": args.seed,
            "mix": args.mix,
            "cache": False if args.no_cache else {},
            "faults": args.scenario,
            "record_bodies": args.record_bodies,
        },
    )
    traffic.run_requests(args.requests)
    section = traffic.slo.section()
    problems = validate_serving_section(section)
    if problems:
        for problem in problems:
            print(f"INVALID serving section: {problem}")
        return 1
    requests = section["requests"]
    availability = section["availability"]
    latency = section["latency"]
    cache = section["cache"]
    print(
        f"traffic: {requests['total']:,} requests from {traffic.clients:,} clients"
        f" over {clock.now():.1f}s virtual"
    )
    print(f"  ops: {json.dumps(requests['by_op'])}")
    print(f"  statuses: {json.dumps(requests['by_status'])}")
    observed = availability["observed"]
    burn = availability["burn_rate"]
    print(
        f"  availability: {observed:.4%} (target {availability['target']:.1%},"
        f" burn rate {burn:.2f})"
        if observed is not None
        else "  availability: n/a"
    )
    if latency["p50"] is not None:
        print(f"  latency: p50 {latency['p50']*1e3:.2f}ms p99 {latency['p99']*1e3:.2f}ms")
    if cache["hit_rate"] is not None:
        print(
            f"  cache: {cache['hits']:,} hits / {cache['misses']:,} misses"
            f" (hit rate {cache['hit_rate']:.1%}), size {cache['size']}"
        )
    print(f"trace digest: {traffic.trace_digest}")
    if args.report:
        report = RunReport(
            kind="traffic_storm",
            config={
                "users": args.users,
                "clients": args.clients,
                "requests": args.requests,
                "seed": args.seed,
                "mix": args.mix,
                "scenario": args.scenario,
                "cache": not args.no_cache,
            },
            extra={"serving": section, "loadgen": traffic.summary()},
        )
        path = report.write(args.report)
        print(f"report: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
