"""``repro.serve`` — the heavy-traffic serving layer.

The paper's Google+ served millions of interactive members at the same
time it was being crawled; this package puts that load on the simulated
platform, deterministically:

* :mod:`repro.serve.loadgen` — an :class:`EventClock` cooperative
  scheduler plus a seeded open-loop load generator: thousands of
  concurrent clients with Zipf-skewed targets whose request trace is a
  pure function of the seed;
* :mod:`repro.serve.cache` — a privacy-aware profile-page cache keyed
  by ``(owner, viewer-privacy-class)`` with exact invalidation off the
  service's mutation events, proven byte-equivalent to uncached
  serving;
* :mod:`repro.serve.slo` — p50/p99 latency, availability and
  error-budget burn rate, and cache efficiency published through
  :mod:`repro.obs` as a schema-versioned ``serving`` report section.

``python -m repro.serve`` runs a standalone traffic storm;
:func:`build_traffic` is the one-call constructor campaigns use (see
``CampaignConfig.traffic``).  See ``docs/serving.md``.
"""

from __future__ import annotations

from typing import Mapping

from repro.faults import FaultSchedule, get_scenario
from repro.obs.metrics import Registry

from .cache import (
    ANON_CLASS,
    PageCache,
    SELF_CLASS,
    ViewerClasser,
    page_to_bytes,
    payload_digest,
    payload_to_bytes,
    render_for_class,
)
from .loadgen import (
    MIXED,
    MIXES,
    READ_HEAVY,
    BehaviorMix,
    EventClock,
    LoadGenerator,
    ServingStack,
    op_of,
)
from .slo import SERVING_SCHEMA_VERSION, SLOTracker, validate_serving_section

__all__ = [
    "ANON_CLASS",
    "BehaviorMix",
    "EventClock",
    "LoadGenerator",
    "MIXED",
    "MIXES",
    "PageCache",
    "READ_HEAVY",
    "SELF_CLASS",
    "SERVING_SCHEMA_VERSION",
    "SLOTracker",
    "ServingStack",
    "ViewerClasser",
    "build_traffic",
    "op_of",
    "page_to_bytes",
    "payload_digest",
    "payload_to_bytes",
    "render_for_class",
    "validate_serving_section",
]


def build_traffic(
    service,
    clock: EventClock,
    config: Mapping | None = None,
    registry: Registry | None = None,
) -> LoadGenerator:
    """Build the full serving stack from one config mapping.

    Recognised keys (all optional): ``n_clients``, ``seed``, ``mix``
    (a name from :data:`MIXES` or a :class:`BehaviorMix`), ``zipf_s``,
    ``think_mean``, ``n_seed_posts``, ``record_bodies``, ``keep_trace``,
    ``rate_per_ip``, ``burst``, ``hit_latency``, ``miss_latency``,
    ``op_latency``, ``availability_target``, ``cache`` (``False`` to
    serve uncached, or ``{"capacity": ..., "ttl": ...}``), and
    ``faults`` (a scenario name or document for
    :meth:`~repro.faults.FaultSchedule.from_dict`).

    Returns the :class:`LoadGenerator`, with the stack, cache, and
    :class:`SLOTracker` attached as attributes.
    """
    config = dict(config or {})
    mix = config.get("mix", "read_heavy")
    if isinstance(mix, str):
        try:
            mix = MIXES[mix]
        except KeyError:
            raise ValueError(
                f"unknown behavior mix {mix!r} (known: {sorted(MIXES)})"
            ) from None
    faults_spec = config.get("faults")
    if isinstance(faults_spec, str):
        faults_spec = get_scenario(faults_spec)
    faults = FaultSchedule.from_dict(faults_spec) if faults_spec else None
    cache_cfg = config.get("cache", {})
    cache = None
    if cache_cfg is not False and cache_cfg is not None:
        cache_cfg = dict(cache_cfg) if cache_cfg else {}
        cache = PageCache(
            service,
            clock,
            capacity=int(cache_cfg.get("capacity", 4096)),
            ttl=float(cache_cfg.get("ttl", 0.0)),
            registry=registry,
        )
    stack = ServingStack(
        service,
        clock,
        cache=cache,
        rate_per_ip=float(config.get("rate_per_ip", 50.0)),
        burst=float(config.get("burst", 200.0)),
        faults=faults,
        registry=registry,
        hit_latency=float(config.get("hit_latency", 0.0004)),
        miss_latency=float(config.get("miss_latency", 0.004)),
        op_latency=float(config.get("op_latency", 0.002)),
    )
    slo = SLOTracker(
        availability_target=float(config.get("availability_target", 0.999)),
        registry=registry,
        cache=cache,
    )
    return LoadGenerator(
        stack,
        clock,
        n_clients=int(config.get("n_clients", 200)),
        seed=int(config.get("seed", 0)),
        mix=mix,
        zipf_s=float(config.get("zipf_s", 1.3)),
        think_mean=float(config.get("think_mean", 1.0)),
        n_seed_posts=int(config.get("n_seed_posts", 32)),
        record_bodies=bool(config.get("record_bodies", False)),
        keep_trace=bool(config.get("keep_trace", False)),
        slo=slo,
        registry=registry,
    )
