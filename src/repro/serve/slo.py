"""SLO accounting for the serving layer.

Tracks request outcomes and modelled virtual latencies, publishes them
through :mod:`repro.obs` (``serve.requests``, the
``serve.latency_virtual_seconds`` histogram whose
:meth:`~repro.obs.metrics.Histogram.quantile` yields the p50/p99 rows),
and emits a schema-versioned ``serving`` section for ``run_report.json``
and the live dashboard.

Error-budget semantics: the availability SLI counts **completed**
requests only — 429 throttles are the platform *defending* the SLO, so
they are reported separately and excluded from the budget.  Errors are
injected failures and timeouts (403/408/5xx); 404s are correct answers
to bad requests.  The burn rate is the ratio of the observed error rate
to the budget ``1 - target``: burn 1.0 exactly spends the budget,
above 1.0 eats into it.

The tracker keeps plain internal tallies alongside the registry metrics
so the section stays correct under the ``REPRO_OBS=0`` kill switch
(latency quantiles then report ``None`` — the histogram is the one
obs-owned piece).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.metrics import Registry, get_registry, log_buckets, quantile_from_sample

__all__ = [
    "SERVING_SCHEMA_VERSION",
    "SLOTracker",
    "validate_serving_section",
]

SERVING_SCHEMA_VERSION = 1

_ERROR_STATUSES = frozenset({403, 408})


def _merge_samples(samples: list) -> dict | None:
    merged: dict | None = None
    for sample in samples:
        if not sample["count"]:
            continue
        if merged is None:
            merged = {
                "count": sample["count"],
                "sum": sample["sum"],
                "min": sample["min"],
                "max": sample["max"],
                "bucket_edges": list(sample["bucket_edges"]),
                "cumulative_counts": list(sample["cumulative_counts"]),
            }
            continue
        merged["count"] += sample["count"]
        merged["sum"] += sample["sum"]
        merged["min"] = min(merged["min"], sample["min"])
        merged["max"] = max(merged["max"], sample["max"])
        merged["cumulative_counts"] = [
            a + b
            for a, b in zip(merged["cumulative_counts"], sample["cumulative_counts"])
        ]
    return merged


class SLOTracker:
    """Per-op request/latency accounting with an availability budget."""

    def __init__(
        self,
        availability_target: float = 0.999,
        registry: Registry | None = None,
        cache=None,
    ):
        if not 0.0 < availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        self.availability_target = float(availability_target)
        self.cache = cache
        registry = registry if registry is not None else get_registry()
        self._m_requests = registry.counter(
            "serve.requests",
            "Serving-layer requests, by op and status",
            labels=("op", "status"),
        )
        self._latency = registry.histogram(
            "serve.latency_virtual_seconds",
            "Modelled virtual service latency of successful requests, by op",
            labels=("op",),
            buckets=log_buckets(0.0001, 1.6, 24),
        )
        self.total = 0
        self.throttled = 0
        self.errors = 0
        self.hits = 0
        self.misses = 0
        self.by_op: dict[str, int] = {}
        self.by_status: dict[str, int] = {}

    def observe(
        self,
        op: str,
        status: int,
        latency: float | None = None,
        hit: bool | None = None,
    ) -> None:
        self._m_requests.inc(op=op, status=status)
        if latency is not None:
            self._latency.observe(latency, op=op)
        self.total += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        key = str(status)
        self.by_status[key] = self.by_status.get(key, 0) + 1
        if status == 429:
            self.throttled += 1
        elif status >= 500 or status in _ERROR_STATUSES:
            self.errors += 1
        if hit is True:
            self.hits += 1
        elif hit is False:
            self.misses += 1

    # -- quantiles ------------------------------------------------------------

    def _overall_sample(self) -> dict | None:
        samples = [
            sample["value"]
            for sample in self._latency.samples()
            if sample["value"]["count"]
        ]
        return _merge_samples(samples)

    def quantile(self, q: float, op: str | None = None) -> float | None:
        """Latency quantile, overall or for one op; None when unobserved
        (including under ``REPRO_OBS=0``)."""
        if op is not None:
            return self._latency.quantile(q, op=op)
        sample = self._overall_sample()
        return None if sample is None else quantile_from_sample(sample, q)

    # -- the report section ---------------------------------------------------

    def section(self) -> dict:
        """The schema-versioned ``serving`` block for run reports."""
        completed = self.total - self.throttled
        ok = completed - self.errors
        availability = ok / completed if completed else None
        budget = 1.0 - self.availability_target
        error_rate = self.errors / completed if completed else 0.0
        burn_rate = error_rate / budget if completed else None
        latency: dict[str, Any] = {
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "by_op": {},
        }
        for op in sorted(self.by_op):
            p50 = self._latency.quantile(0.5, op=op)
            if p50 is None:
                continue
            latency["by_op"][op] = {
                "p50": p50,
                "p99": self._latency.quantile(0.99, op=op),
            }
        lookups = self.hits + self.misses
        return {
            "serving_schema_version": SERVING_SCHEMA_VERSION,
            "requests": {
                "total": self.total,
                "throttled": self.throttled,
                "errors": self.errors,
                "by_op": dict(sorted(self.by_op.items())),
                "by_status": dict(sorted(self.by_status.items())),
            },
            "availability": {
                "target": self.availability_target,
                "observed": availability,
                "error_rate": error_rate if completed else None,
                "burn_rate": burn_rate,
            },
            "latency": latency,
            "cache": (
                self.cache.stats()
                if self.cache is not None
                else {
                    "hits": self.hits,
                    "misses": self.misses,
                    "hit_rate": self.hits / lookups if lookups else None,
                    "evictions": None,
                    "invalidations": None,
                    "size": None,
                }
            ),
        }

    # -- resumable state -------------------------------------------------------

    def export_state(self) -> dict:
        return {
            "total": self.total,
            "throttled": self.throttled,
            "errors": self.errors,
            "hits": self.hits,
            "misses": self.misses,
            "by_op": dict(self.by_op),
            "by_status": dict(self.by_status),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self.total = int(state["total"])
        self.throttled = int(state["throttled"])
        self.errors = int(state["errors"])
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.by_op = {str(k): int(v) for k, v in state["by_op"].items()}
        self.by_status = {str(k): int(v) for k, v in state["by_status"].items()}


def validate_serving_section(section: Any) -> list[str]:
    """Shape-check a ``serving`` report section; returns problem strings."""
    problems: list[str] = []
    if not isinstance(section, Mapping):
        return ["serving section is not a mapping"]
    version = section.get("serving_schema_version")
    if not isinstance(version, int):
        problems.append("missing or non-integer serving_schema_version")
    elif version > SERVING_SCHEMA_VERSION:
        problems.append(
            f"serving_schema_version {version} is newer than supported "
            f"{SERVING_SCHEMA_VERSION}"
        )
    for key, kind in (
        ("requests", Mapping),
        ("availability", Mapping),
        ("latency", Mapping),
        ("cache", Mapping),
    ):
        if not isinstance(section.get(key), kind):
            problems.append(f"missing or malformed {key!r} block")
    if isinstance(section.get("requests"), Mapping):
        for key in ("total", "throttled", "errors", "by_op", "by_status"):
            if key not in section["requests"]:
                problems.append(f"requests block missing {key!r}")
    if isinstance(section.get("availability"), Mapping):
        for key in ("target", "observed", "burn_rate"):
            if key not in section["availability"]:
                problems.append(f"availability block missing {key!r}")
    if isinstance(section.get("latency"), Mapping):
        for key in ("p50", "p99", "by_op"):
            if key not in section["latency"]:
                problems.append(f"latency block missing {key!r}")
    return problems
