"""Deterministic concurrent-client load generator on the virtual clock.

Thousands of simulated Google+ members browse profiles, read streams,
search, edit circles, and +1 posts while the crawler fleet works the
same front door.  Concurrency is cooperative: every client schedules
its next request on an :class:`EventClock` (a :class:`SimulatedClock`
with an event heap), and whoever advances the clock — the crawler's
politeness waits, or a pure-traffic driver — dispatches the due client
requests at their exact virtual times.

Determinism is the design constraint everything else bends around:

* every client owns a seeded RNG; think times and op choices consume
  only that stream, so the same seed yields the identical request
  trace regardless of what else runs on the clock;
* traffic is **open-loop** — the next request time never depends on the
  previous response — so toggling the page cache (which changes
  latencies, not the trace) cannot perturb the request sequence, which
  is what makes the cache-on/cache-off differential proof meaningful;
* the whole generator exports and restores its state (client RNGs,
  next-event times, the applied-mutation log, cache metadata) through
  the crawler snapshot extension hooks, so a killed mixed
  crawl+traffic campaign resumes bit-identically.

The trace digest is a hash chain over every request record; two runs
are identical iff their digests match.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass
from functools import partial
from typing import Any, Mapping

import numpy as np

from repro.obs.metrics import Registry, get_registry
from repro.platform.http import STATUS_OK, HttpFrontend, Request, SimulatedClock

from .cache import payload_digest

__all__ = [
    "MIXES",
    "MIXED",
    "READ_HEAVY",
    "BehaviorMix",
    "EventClock",
    "LoadGenerator",
    "ServingStack",
    "op_of",
]


class EventClock(SimulatedClock):
    """A virtual clock with a heap of scheduled callbacks.

    :meth:`advance` dispatches every event due at or before the target
    time, at its exact virtual time, in ``(time, tie, insertion)``
    order — ``tie`` is a stable caller-chosen key (the client index) so
    the order of same-instant events survives a checkpoint/resume, when
    the heap is rebuilt in a different insertion order.  :meth:`restore`
    (checkpoint resume) never dispatches.  Callbacks must not re-enter
    ``advance``; client request handling is instantaneous in virtual
    time, which keeps traffic open-loop.
    """

    def __init__(self, start: float = 0.0):
        super().__init__(start)
        self._events: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._dispatching = False

    def schedule(self, when: float, callback, tie: int = 0) -> None:
        if when < self._now:
            raise ValueError("cannot schedule an event in the virtual past")
        heapq.heappush(self._events, (float(when), tie, self._seq, callback))
        self._seq += 1

    def pending(self) -> int:
        return len(self._events)

    def next_event_time(self) -> float | None:
        return self._events[0][0] if self._events else None

    def clear_scheduled(self) -> None:
        self._events.clear()

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("the clock only moves forward")
        target = self._now + seconds
        if not self._dispatching:
            self._dispatching = True
            try:
                while self._events and self._events[0][0] <= target:
                    when, _, _, callback = heapq.heappop(self._events)
                    if when > self._now:
                        self._now = when
                    callback(self._now)
            finally:
                self._dispatching = False
        self._now = target
        return self._now


@dataclass(frozen=True)
class BehaviorMix:
    """Per-request op probabilities for one client population."""

    browse: float = 0.6
    stream: float = 0.2
    search: float = 0.1
    circle_edit: float = 0.05
    plus_one: float = 0.05

    def __post_init__(self) -> None:
        weights = self.weights()
        if any(w < 0 for _, w in weights):
            raise ValueError("behavior weights must be >= 0")
        if sum(w for _, w in weights) <= 0:
            raise ValueError("behavior weights must sum to > 0")

    def weights(self) -> tuple[tuple[str, float], ...]:
        return (
            ("browse", self.browse),
            ("stream", self.stream),
            ("search", self.search),
            ("circle_edit", self.circle_edit),
            ("plus_one", self.plus_one),
        )

    def cumulative(self) -> tuple[tuple[str, float], ...]:
        total = sum(w for _, w in self.weights())
        acc = 0.0
        out = []
        for name, weight in self.weights():
            acc += weight / total
            out.append((name, acc))
        out[-1] = (out[-1][0], 1.0)
        return tuple(out)


#: The serving-bench mix: pure reads plus +1s (which mutate posts, never
#: profile pages) — no circle edits, so the graph the crawler walks is
#: untouched and its edge arrays stay bit-identical to a no-traffic run.
READ_HEAVY = BehaviorMix(
    browse=0.62, stream=0.2, search=0.1, circle_edit=0.0, plus_one=0.08
)

#: A realistic interactive mix including circle edits (graph mutations).
MIXED = BehaviorMix(browse=0.48, stream=0.18, search=0.1, circle_edit=0.12, plus_one=0.12)

MIXES: dict[str, BehaviorMix] = {"read_heavy": READ_HEAVY, "mixed": MIXED}


def op_of(path: str) -> str:
    if path.startswith("/u/"):
        return "browse"
    if path == "/stream":
        return "stream"
    if path.startswith("/search"):
        return "search"
    if path.startswith("/circle/"):
        return "circle_edit"
    if path.startswith("/plus/"):
        return "plus_one"
    return "other"


class ServingStack:
    """The member-facing front door: router, optional page cache, and a
    deterministic latency model, behind an :class:`HttpFrontend` of its
    own (own rate limiter, own fault schedule) so serving traffic never
    perturbs the crawler transport's RNG draws.

    Applied graph/content mutations (circle edits, +1s) are appended to
    :attr:`mutation_log` *after* the service call succeeds; replaying
    the log against a freshly rebuilt world reproduces the exact
    service state, which is how mixed campaigns resume.
    """

    def __init__(
        self,
        service,
        clock: SimulatedClock,
        cache=None,
        rate_per_ip: float = 50.0,
        burst: float = 200.0,
        faults=None,
        registry: Registry | None = None,
        hit_latency: float = 0.0004,
        miss_latency: float = 0.004,
        op_latency: float = 0.002,
    ):
        self.service = service
        self.cache = cache
        self.hit_latency = float(hit_latency)
        self.miss_latency = float(miss_latency)
        self.op_latency = float(op_latency)
        self.frontend = HttpFrontend(
            self._route,
            clock=clock,
            rate_per_ip=rate_per_ip,
            burst=burst,
            faults=faults,
            registry=registry,
        )
        self.mutation_log: list[list] = []
        self._name_index: dict[str, tuple[int, ...]] | None = None
        self._last_hit: bool | None = None

    def _names(self) -> dict[str, tuple[int, ...]]:
        if self._name_index is None:
            index: dict[str, list[int]] = {}
            for user_id in sorted(self.service.user_ids()):
                index.setdefault(self.service.profile(user_id).name, []).append(user_id)
            self._name_index = {name: tuple(ids) for name, ids in index.items()}
        return self._name_index

    def _route(self, path: str, viewer_id: int | None = None) -> tuple[int, Any]:
        service = self.service
        self._last_hit = None
        if path.startswith("/u/"):
            try:
                owner_id = int(path[3:])
            except ValueError:
                return 404, None
            if owner_id not in service:
                return 404, None
            if self.cache is not None:
                page, hit = self.cache.lookup(owner_id, viewer_id)
                self._last_hit = hit
            else:
                page = service.profile_page(owner_id, viewer_id=viewer_id)
                self._last_hit = False
            return STATUS_OK, page
        if path == "/stream":
            if viewer_id is None:
                return 404, None
            posts = service.stream_for(viewer_id)
            return STATUS_OK, {"posts": [post.post_id for post in posts]}
        if path.startswith("/search?q="):
            name = path[len("/search?q=") :]
            return STATUS_OK, {"results": list(self._names().get(name, ()))}
        if path.startswith("/circle/add/"):
            return self._circle_edit(path[len("/circle/add/") :], viewer_id, add=True)
        if path.startswith("/circle/remove/"):
            return self._circle_edit(
                path[len("/circle/remove/") :], viewer_id, add=False
            )
        if path.startswith("/plus/"):
            if viewer_id is None:
                return 404, None
            try:
                post_id = int(path[len("/plus/") :])
            except ValueError:
                return 404, None
            try:
                service.plus_one(viewer_id, post_id)
            except KeyError:
                return 404, None
            self.mutation_log.append(["plus_one", viewer_id, post_id])
            return STATUS_OK, {"ok": True}
        return 404, None

    def _circle_edit(
        self, raw_target: str, viewer_id: int | None, add: bool
    ) -> tuple[int, Any]:
        if viewer_id is None:
            return 404, None
        try:
            target_id = int(raw_target)
        except ValueError:
            return 404, None
        if target_id not in self.service or target_id == viewer_id:
            return 404, None
        if add:
            changed = self.service.add_to_circle(viewer_id, target_id)
            self.mutation_log.append(["circle_add", viewer_id, target_id])
        else:
            changed = self.service.remove_from_circle(viewer_id, target_id)
            self.mutation_log.append(["circle_remove", viewer_id, target_id])
        return STATUS_OK, {"changed": bool(changed)}

    def replay_mutations(self, log) -> None:
        """Re-apply an exported mutation log against the (rebuilt) world."""
        service = self.service
        for kind, actor_id, target_id in log:
            actor_id, target_id = int(actor_id), int(target_id)
            if kind == "circle_add":
                service.add_to_circle(actor_id, target_id)
            elif kind == "circle_remove":
                service.remove_from_circle(actor_id, target_id)
            elif kind == "plus_one":
                service.plus_one(actor_id, target_id)
            else:
                raise ValueError(f"unknown mutation kind: {kind!r}")
        self.mutation_log = [list(entry) for entry in log]
        self._name_index = None

    def serve(self, request: Request):
        """Handle one request; returns ``(response, latency, cache_hit)``.

        ``latency`` is the modelled virtual service time for successful
        responses (including fault-injected ``slow_by``), ``None`` for
        throttles and failures.  ``cache_hit`` is None off the page
        path.
        """
        self._last_hit = None
        response = self.frontend.handle(request)
        hit = self._last_hit
        latency = None
        if response.status == STATUS_OK:
            if request.path.startswith("/u/"):
                base = self.hit_latency if hit else self.miss_latency
            else:
                base = self.op_latency
            latency = base + response.slow_by
        return response, latency, hit


def _rng_to_json(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    return json.loads(json.dumps(state))


def _rng_from_json(rng: np.random.Generator, state: Mapping[str, Any]) -> None:
    rng.bit_generator.state = dict(state)


class _Client:
    __slots__ = ("index", "user_id", "ip", "rng", "next_at")

    def __init__(self, index: int, user_id: int, ip: str, rng: np.random.Generator):
        self.index = index
        self.user_id = user_id
        self.ip = ip
        self.rng = rng
        self.next_at = 0.0


class LoadGenerator:
    """Drives ``n_clients`` seeded open-loop clients against a
    :class:`ServingStack` on a shared :class:`EventClock`.

    Target users are drawn Zipf-skewed over the in-degree popularity
    ranking (celebrities absorb most reads — the cacheable regime).  A
    deterministic batch of seed posts is published at construction so
    +1 targets exist; because construction also runs before a resume,
    post ids are identical in interrupted and uninterrupted runs.
    """

    STATE_SCHEMA = 1

    def __init__(
        self,
        stack: ServingStack,
        clock: EventClock,
        n_clients: int,
        seed: int = 0,
        mix: BehaviorMix = READ_HEAVY,
        zipf_s: float = 1.3,
        think_mean: float = 1.0,
        n_seed_posts: int = 32,
        record_bodies: bool = False,
        keep_trace: bool = False,
        slo=None,
        registry: Registry | None = None,
    ):
        if n_clients < 1:
            raise ValueError("need at least one client")
        if zipf_s <= 1.0:
            raise ValueError("zipf_s must be > 1")
        if think_mean <= 0:
            raise ValueError("think_mean must be positive")
        self.stack = stack
        self.cache = stack.cache
        self.slo = slo
        self._clock = clock
        self._mix = mix
        self._cumulative = mix.cumulative()
        self._zipf_s = float(zipf_s)
        self._think_mean = float(think_mean)
        self._record_bodies = bool(record_bodies)
        service = stack.service
        users = sorted(service.user_ids())
        if not users:
            raise ValueError("cannot generate load against an empty world")
        in_degrees = np.fromiter(
            (service.in_degree(u) for u in users), dtype=np.int64, count=len(users)
        )
        order = np.lexsort((np.asarray(users, dtype=np.int64), -in_degrees))
        self._ranking = [users[i] for i in order]
        self._post_ids = self._seed_posts(service, n_seed_posts)
        picker = np.random.default_rng(np.random.SeedSequence([int(seed), 0]))
        assignment = picker.permutation(len(users))
        self._clients: list[_Client] = []
        for index in range(int(n_clients)):
            user_id = users[int(assignment[index % len(users)])]
            rng = np.random.default_rng(np.random.SeedSequence([int(seed), 1, index]))
            ip = f"10.{(index // 62500) % 256}.{(index // 250) % 250}.{index % 250}"
            self._clients.append(_Client(index, user_id, ip, rng))
        self.n_requests = 0
        self._digest = bytes(32)
        self.trace: list[tuple] | None = [] if keep_trace else None
        self.op_counts: dict[str, int] = {}
        self.status_counts: dict[str, int] = {}
        registry = registry if registry is not None else get_registry()
        self._m_clients = registry.gauge("serve.clients", "Simulated client count")
        self._m_clients.set(float(n_clients))
        for client in self._clients:
            client.next_at = clock.now() + float(client.rng.exponential(self._think_mean))
            self._schedule(client)

    @staticmethod
    def _seed_posts(service, n_seed_posts: int) -> list[int]:
        post_ids = []
        authors = sorted(service.user_ids())[:8]
        for k in range(int(n_seed_posts)):
            author = authors[k % len(authors)]
            post = service.publish(author, f"seed-post-{k}")
            post_ids.append(post.post_id)
        return post_ids

    @property
    def clients(self) -> int:
        return len(self._clients)

    @property
    def client_user_ids(self) -> list[int]:
        """The logged-in user each client browses as, by client index
        (trace records carry the client index, not the user id)."""
        return [client.user_id for client in self._clients]

    @property
    def trace_digest(self) -> str:
        """Hex digest of the hash chain over every request record."""
        return self._digest.hex()

    def _schedule(self, client: _Client) -> None:
        self._clock.schedule(client.next_at, partial(self._fire, client), tie=client.index)

    def _pick_op(self, client: _Client) -> str:
        draw = float(client.rng.random())
        for name, edge in self._cumulative:
            if draw <= edge:
                return name
        return self._cumulative[-1][0]

    def _pick_target(self, client: _Client) -> int:
        rank = int(client.rng.zipf(self._zipf_s))
        return self._ranking[(rank - 1) % len(self._ranking)]

    def _build_path(self, client: _Client, op: str) -> str:
        if op == "browse":
            return f"/u/{self._pick_target(client)}"
        if op == "stream":
            return "/stream"
        if op == "search":
            name = self.stack.service.profile(self._pick_target(client)).name
            return f"/search?q={name}"
        if op == "circle_edit":
            target = self._pick_target(client)
            if float(client.rng.random()) < 0.7:
                return f"/circle/add/{target}"
            return f"/circle/remove/{target}"
        # plus_one
        post_index = int(client.rng.integers(len(self._post_ids)))
        return f"/plus/{self._post_ids[post_index]}"

    def _fire(self, client: _Client, now: float) -> None:
        op = self._pick_op(client)
        path = self._build_path(client, op)
        request = Request(path, client.ip, viewer_id=client.user_id)
        response, latency, hit = self.stack.serve(request)
        body = ""
        if self._record_bodies and response.status == STATUS_OK:
            body = payload_digest(response.payload)
        record = [
            self.n_requests,
            client.index,
            op,
            path,
            response.status,
            latency,
            body,
        ]
        encoded = json.dumps(record, separators=(",", ":")).encode("utf-8")
        self._digest = hashlib.sha256(self._digest + encoded).digest()
        if self.trace is not None:
            self.trace.append(tuple(record))
        self.n_requests += 1
        self.op_counts[op] = self.op_counts.get(op, 0) + 1
        status_key = str(response.status)
        self.status_counts[status_key] = self.status_counts.get(status_key, 0) + 1
        if self.slo is not None:
            self.slo.observe(op, response.status, latency=latency, hit=hit)
        client.next_at = now + float(client.rng.exponential(self._think_mean))
        self._schedule(client)

    # -- pure-traffic driving (no crawler on the clock) ----------------------

    def run_requests(self, count: int) -> int:
        """Advance the clock until ``count`` more requests have fired."""
        target = self.n_requests + int(count)
        clock = self._clock
        while self.n_requests < target:
            when = clock.next_event_time()
            if when is None:
                break
            clock.advance(when - clock.now())
        return self.n_requests

    def run_until(self, until: float) -> None:
        """Advance the clock to an absolute virtual time."""
        remaining = until - self._clock.now()
        if remaining > 0:
            self._clock.advance(remaining)

    # -- resumable state ------------------------------------------------------

    def export_state(self) -> dict:
        """Everything needed to resume: client RNGs and next-event times,
        the applied-mutation log, transport state, and cache metadata."""
        return {
            "schema": self.STATE_SCHEMA,
            "n_requests": self.n_requests,
            "digest": self._digest.hex(),
            "op_counts": dict(self.op_counts),
            "status_counts": dict(self.status_counts),
            "clients": [
                {
                    "user_id": client.user_id,
                    "ip": client.ip,
                    "next_at": client.next_at,
                    "rng": _rng_to_json(client.rng),
                }
                for client in self._clients
            ],
            "mutations": [list(entry) for entry in self.stack.mutation_log],
            "frontend": self.stack.frontend.export_state(),
            "cache": self.cache.export_state() if self.cache is not None else None,
            "slo": self.slo.export_state() if self.slo is not None else None,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        if int(state.get("schema", 0)) != self.STATE_SCHEMA:
            raise ValueError(f"unsupported loadgen state schema: {state.get('schema')}")
        if len(state["clients"]) != len(self._clients):
            raise ValueError(
                "checkpoint was taken with a different client count "
                f"({len(state['clients'])} != {len(self._clients)})"
            )
        self._clock.clear_scheduled()
        self.stack.frontend.restore_state(state["frontend"])
        if self.cache is not None:
            self.cache.clear()
        self.stack.replay_mutations(state["mutations"])
        if self.cache is not None and state.get("cache") is not None:
            self.cache.restore_state(state["cache"])
        if self.slo is not None and state.get("slo") is not None:
            self.slo.restore_state(state["slo"])
        for client, entry in zip(self._clients, state["clients"]):
            client.user_id = int(entry["user_id"])
            client.ip = str(entry["ip"])
            client.next_at = float(entry["next_at"])
            _rng_from_json(client.rng, entry["rng"])
            self._schedule(client)
        self.n_requests = int(state["n_requests"])
        self._digest = bytes.fromhex(state["digest"])
        self.op_counts = {str(k): int(v) for k, v in state["op_counts"].items()}
        self.status_counts = {
            str(k): int(v) for k, v in state["status_counts"].items()
        }

    def summary(self) -> dict:
        section = {
            "clients": len(self._clients),
            "requests": self.n_requests,
            "trace_digest": self.trace_digest,
            "ops": dict(sorted(self.op_counts.items())),
            "statuses": dict(sorted(self.status_counts.items())),
        }
        if self.cache is not None:
            section["cache"] = self.cache.stats()
        return section
