"""Privacy-aware profile-page cache keyed by (owner, viewer-privacy-class).

Google+ profile pages are expensive to render for celebrities (truncated
10,000-entry circle lists) yet served to millions of viewers, almost all
of whom see one of a handful of *privacy classes* of the page.  The
cache exploits the key structural fact of the privacy model:

    The bytes of a profile page rendered for a given privacy class
    depend only on the **owner's own state** (profile fields and circle
    store).  Other users' circles — the two-hop EXTENDED_CIRCLES reach —
    only change which class a *viewer* maps to, never the content of a
    class's page.

So cached pages are keyed by ``(owner_id, class_key)`` where the class
key captures everything field visibility reads about the viewer:

* ``("anon",)`` — anonymous (the crawler); PUBLIC fields only.
* ``("self",)`` — the owner; everything, lists always shown.
* ``("m", in_circles, in_extended, custom)`` — a logged-in member:
  whether the owner has them in circles, whether they are in the
  owner's extended circles (computed only when the owner actually has
  EXTENDED_CIRCLES fields), and which of the owner's CUSTOM-referenced
  circles contain them.

Invalidation therefore splits cleanly:

* a **circle mutation** by ``u`` on ``v`` drops the cached pages of the
  two owners whose lists changed (``u``'s out-list, ``v``'s in-list —
  only the ``self`` page when an owner hides lists), and drops the
  viewer→class memo for ``u`` and for ``u``'s followers (whose extended
  reach flows through ``u``);
* a **profile mutation** on ``o`` drops ``o``'s pages, class memo, and
  privacy-needs entry;
* **posts and +1s** never touch profile pages and are ignored.

Correctness is proven by differential tests: for every viewer,
``render_for_class(class_of(owner, viewer))`` must equal
``service.profile_page(owner, viewer)`` byte for byte.
"""

from __future__ import annotations

import enum
import hashlib
import json
from collections import OrderedDict
from typing import Any, Mapping

from repro.obs.metrics import Registry, get_registry
from repro.platform.pages import CircleListView, ProfilePage, truncate_list
from repro.platform.privacy import Visibility

__all__ = [
    "ANON_CLASS",
    "PageCache",
    "SELF_CLASS",
    "ViewerClasser",
    "page_to_bytes",
    "payload_digest",
    "payload_to_bytes",
    "render_for_class",
]

ANON_CLASS = ("anon",)
SELF_CLASS = ("self",)

#: When a circle mutation's two-hop memo fan-out (the actor's follower
#: count) exceeds this, the whole memo is cleared instead — coarser but
#: still correct, and bounded work for celebrity actors.
_MEMO_FANOUT_LIMIT = 10_000


def _jsonify(value: Any) -> Any:
    """A canonical JSON-ready view of any profile-page value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, CircleListView):
        return {"ids": list(value.user_ids), "declared": value.declared_count}
    if isinstance(value, (frozenset, set)):
        return sorted(_jsonify(v) for v in value)
    if isinstance(value, (tuple, list)):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return repr(value)


def page_to_bytes(page: ProfilePage) -> bytes:
    """Canonical byte serialisation of a profile page (for differential
    byte-identity proofs and body digests)."""
    document = {
        "user_id": page.user_id,
        "name": page.name,
        "fields": {key: _jsonify(value) for key, value in page.fields.items()},
        "in_list": _jsonify(page.in_list),
        "out_list": _jsonify(page.out_list),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode("utf-8")


def payload_to_bytes(payload: Any) -> bytes:
    """Canonical bytes of any response payload a serving route returns."""
    if payload is None:
        return b"null"
    if isinstance(payload, ProfilePage):
        return page_to_bytes(payload)
    return json.dumps(
        _jsonify(payload), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def payload_digest(payload: Any) -> str:
    """Hex SHA-256 of a payload's canonical bytes."""
    return hashlib.sha256(payload_to_bytes(payload)).hexdigest()


class ViewerClasser:
    """Maps ``(owner, viewer)`` pairs to privacy-class keys, memoised.

    The memo is an owner-keyed two-level dict so invalidation by owner
    is O(1); the per-owner *privacy needs* (does any field use
    EXTENDED_CIRCLES? which circles do CUSTOM fields reference?) are
    cached too, because they gate the expensive extended-circles scan.
    """

    def __init__(self, service):
        self._service = service
        #: owner -> (has_extended, custom circle names, sorted)
        self._needs: dict[int, tuple[bool, tuple[str, ...]]] = {}
        #: owner -> viewer -> class key
        self._memo: dict[int, dict[int, tuple]] = {}
        #: viewer -> the accounts holding the viewer in circles.  With
        #: the owner-side contact sets below, the extended bit becomes a
        #: small-side set intersection instead of a fresh two-hop scan
        #: for every new (owner, viewer) pair; both memos amortise
        #: across the opposite axis (a viewer's followers serve every
        #: owner they browse, an owner's contacts serve every viewer).
        self._follower_sets: dict[int, set[int]] = {}
        #: owner -> the owner's contacts (circle members, deduplicated).
        self._followee_sets: dict[int, set[int]] = {}

    def needs(self, owner_id: int) -> tuple[bool, tuple[str, ...]]:
        cached = self._needs.get(owner_id)
        if cached is not None:
            return cached
        has_extended = False
        custom: set[str] = set()
        for entry in self._service.profile(owner_id).fields.values():
            visibility = entry.privacy.visibility
            if visibility is Visibility.EXTENDED_CIRCLES:
                has_extended = True
            elif visibility is Visibility.CUSTOM:
                custom.update(entry.privacy.custom_circles)
        result = (has_extended, tuple(sorted(custom)))
        self._needs[owner_id] = result
        return result

    def class_of(self, owner_id: int, viewer_id: int | None) -> tuple:
        if viewer_id is None:
            return ANON_CLASS
        if viewer_id == owner_id:
            return SELF_CLASS
        per_owner = self._memo.get(owner_id)
        if per_owner is not None:
            key = per_owner.get(viewer_id)
            if key is not None:
                return key
        else:
            per_owner = self._memo[owner_id] = {}
        service = self._service
        has_extended, custom_names = self.needs(owner_id)
        in_circles = service.in_circles(owner_id, viewer_id)
        if in_circles:
            in_extended = True
        elif has_extended:
            in_extended = self._in_extended(owner_id, viewer_id)
        else:
            in_extended = False  # placeholder: no EXTENDED field reads it
        custom = (
            service.circles_containing(owner_id, viewer_id, custom_names)
            if custom_names
            else ()
        )
        key = ("m", in_circles, in_extended, custom)
        per_owner[viewer_id] = key
        return key

    def _in_extended(self, owner_id: int, viewer_id: int) -> bool:
        """The extended bit for a viewer not in the owner's own circles:
        whether any of the owner's contacts has the viewer in circles,
        i.e. ``followees(owner) ∩ followers(viewer)`` is non-empty.
        Equivalent to ``service.in_extended_circles``, but both sides
        are memoised sets and the intersection walks the smaller one.
        """
        followers = self._follower_sets.get(viewer_id)
        if followers is None:
            followers = set(self._service.followers(viewer_id))
            self._follower_sets[viewer_id] = followers
        followees = self._followee_sets.get(owner_id)
        if followees is None:
            followees = set(self._service.followees(owner_id))
            self._followee_sets[owner_id] = followees
        if len(followees) <= len(followers):
            return not followers.isdisjoint(followees)
        return not followees.isdisjoint(followers)

    def drop_owner(self, owner_id: int, needs: bool = False) -> None:
        self._memo.pop(owner_id, None)
        if needs:
            self._needs.pop(owner_id, None)

    def on_circle_mutation(self, actor_id: int, target_id: int | None = None) -> None:
        """A circle edit by ``actor_id`` on ``target_id`` remaps:
        viewers' classes w.r.t. the actor, the classes of every owner
        that has the actor in circles (two-hop reach flows through the
        actor), the actor's contact set, and the target's follower set.
        """
        memo = self._memo
        memo.pop(actor_id, None)
        self._followee_sets.pop(actor_id, None)
        if target_id is not None:
            self._follower_sets.pop(target_id, None)
        followers = self._service.followers(actor_id)
        if len(followers) > _MEMO_FANOUT_LIMIT:
            memo.clear()
            return
        for owner_id in followers:
            memo.pop(owner_id, None)

    def clear(self) -> None:
        self._memo.clear()
        self._needs.clear()
        self._follower_sets.clear()
        self._followee_sets.clear()


def render_for_class(service, owner_id: int, class_key: tuple) -> ProfilePage:
    """Render the owner's page for a privacy class — viewer-independent.

    Must agree byte-for-byte with ``service.profile_page(owner, viewer)``
    for every viewer whose :meth:`ViewerClasser.class_of` is
    ``class_key``; the differential tests enforce it.
    """
    if class_key == ANON_CLASS:
        return service.profile_page(owner_id, viewer_id=None)
    if class_key == SELF_CLASS:
        return service.profile_page(owner_id, viewer_id=owner_id)
    _, in_circles, in_extended, custom = class_key
    profile = service.profile(owner_id)
    visible = {}
    for key, entry in profile.fields.items():
        visibility = entry.privacy.visibility
        if visibility is Visibility.PUBLIC:
            show = True
        elif visibility is Visibility.YOUR_CIRCLES:
            show = in_circles
        elif visibility is Visibility.EXTENDED_CIRCLES:
            show = in_extended
        elif visibility is Visibility.CUSTOM:
            show = any(name in custom for name in entry.privacy.custom_circles)
        else:  # ONLY_YOU
            show = False
        if show:
            visible[key] = entry.value
    in_list = out_list = None
    if profile.lists_public:
        in_list = truncate_list(
            service.followers(owner_id), service.circle_display_limit
        )
        out_list = truncate_list(
            service.followees(owner_id), service.circle_display_limit
        )
    return ProfilePage(
        user_id=owner_id,
        name=profile.name,
        fields=visible,
        in_list=in_list,
        out_list=out_list,
    )


def _class_to_json(class_key: tuple) -> list:
    if class_key == ANON_CLASS:
        return ["anon"]
    if class_key == SELF_CLASS:
        return ["self"]
    _, in_circles, in_extended, custom = class_key
    return ["m", bool(in_circles), bool(in_extended), list(custom)]


def _class_from_json(data: list) -> tuple:
    if data[0] == "anon":
        return ANON_CLASS
    if data[0] == "self":
        return SELF_CLASS
    return ("m", bool(data[1]), bool(data[2]), tuple(str(n) for n in data[3]))


class PageCache:
    """LRU + TTL cache of rendered profile pages, invalidated exactly.

    Subscribes to the service's mutation events (see the module
    docstring for the invalidation rules).  ``ttl`` of 0 disables time
    eviction; entries then live until LRU pressure or invalidation.
    """

    def __init__(
        self,
        service,
        clock,
        capacity: int = 4096,
        ttl: float = 0.0,
        registry: Registry | None = None,
        subscribe: bool = True,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        if ttl < 0:
            raise ValueError("ttl must be >= 0")
        self._service = service
        self._clock = clock
        self.capacity = capacity
        self.ttl = ttl
        self._classer = ViewerClasser(service)
        #: (owner, class) -> (page, inserted_at), in LRU order (oldest first).
        self._entries: OrderedDict[tuple, tuple[ProfilePage, float]] = OrderedDict()
        #: owner -> set of class keys currently cached, for O(1) owner drops.
        self._by_owner: dict[int, set[tuple]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        registry = registry if registry is not None else get_registry()
        self._m_hits = registry.counter("serve.cache.hits", "Page-cache hits")
        self._m_misses = registry.counter("serve.cache.misses", "Page-cache misses")
        self._m_evictions = registry.counter(
            "serve.cache.evictions", "Entries evicted, by policy", labels=("reason",)
        )
        self._m_invalidations = registry.counter(
            "serve.cache.invalidations",
            "Entries dropped by mutation events, by mutation kind",
            labels=("reason",),
        )
        self._m_size = registry.gauge("serve.cache.size", "Cached page entries")
        if subscribe:
            service.add_mutation_listener(self.on_mutation)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def keys(self):
        return self._entries.keys()

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (
                self.hits / (self.hits + self.misses)
                if self.hits + self.misses
                else None
            ),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": len(self._entries),
        }

    # -- lookup --------------------------------------------------------------

    def class_of(self, owner_id: int, viewer_id: int | None) -> tuple:
        return self._classer.class_of(owner_id, viewer_id)

    def lookup(self, owner_id: int, viewer_id: int | None) -> tuple[ProfilePage, bool]:
        """The page as ``viewer_id`` sees it, plus whether it was a hit."""
        key = (owner_id, self._classer.class_of(owner_id, viewer_id))
        entry = self._entries.get(key)
        if entry is not None and self.ttl:
            if self._clock.now() - entry[1] >= self.ttl:
                self._discard(key)
                self.evictions += 1
                self._m_evictions.inc(reason="ttl")
                entry = None
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._m_hits.inc()
            return entry[0], True
        page = render_for_class(self._service, owner_id, key[1])
        self._insert(key, page, self._clock.now())
        self.misses += 1
        self._m_misses.inc()
        return page, False

    def _insert(self, key: tuple, page: ProfilePage, inserted_at: float) -> None:
        self._entries[key] = (page, inserted_at)
        self._entries.move_to_end(key)
        self._by_owner.setdefault(key[0], set()).add(key[1])
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._unindex(evicted)
            self.evictions += 1
            self._m_evictions.inc(reason="lru")
        self._m_size.set(len(self._entries))

    def _unindex(self, key: tuple) -> None:
        classes = self._by_owner.get(key[0])
        if classes is not None:
            classes.discard(key[1])
            if not classes:
                del self._by_owner[key[0]]

    def _discard(self, key: tuple) -> bool:
        if self._entries.pop(key, None) is None:
            return False
        self._unindex(key)
        self._m_size.set(len(self._entries))
        return True

    # -- invalidation --------------------------------------------------------

    def _invalidate_owner(self, owner_id: int, reason: str, self_only: bool) -> None:
        if self_only:
            dropped = 1 if self._discard((owner_id, SELF_CLASS)) else 0
        else:
            classes = self._by_owner.get(owner_id)
            dropped = 0
            if classes:
                for class_key in list(classes):
                    if self._discard((owner_id, class_key)):
                        dropped += 1
        if dropped:
            self.invalidations += dropped
            self._m_invalidations.inc(dropped, reason=reason)

    def on_mutation(self, event) -> None:
        kind = event.kind
        if kind in ("circle_add", "circle_remove"):
            for owner_id in (event.user_id, event.target_id):
                if owner_id is None:
                    continue
                # Per-class page content reads the owner's circles only
                # through the displayed lists: owners hiding them keep
                # every member/anon entry valid — only the self page
                # (lists always shown to the owner) must go.
                lists_public = self._service.profile(owner_id).lists_public
                self._invalidate_owner(
                    owner_id, reason="circle", self_only=not lists_public
                )
            self._classer.on_circle_mutation(event.user_id, event.target_id)
        elif kind == "profile":
            self._invalidate_owner(event.user_id, reason="profile", self_only=False)
            self._classer.drop_owner(event.user_id, needs=True)
        elif kind == "bulk_edges":
            dropped = len(self._entries)
            self.clear()
            if dropped:
                self.invalidations += dropped
                self._m_invalidations.inc(dropped, reason="bulk")
        # "post" / "plus_one": profile pages are unaffected.

    def clear(self) -> None:
        self._entries.clear()
        self._by_owner.clear()
        self._classer.clear()
        self._m_size.set(0)

    # -- resumable state -----------------------------------------------------

    def export_state(self) -> dict:
        """Entry metadata in LRU order; pages re-render on restore.

        Restoring against a service in the same state (world rebuilt,
        mutation log replayed) reproduces the exact cache contents: any
        entry still cached was, by the invalidation rules, rendered from
        owner state that no later mutation touched.
        """
        return {
            "entries": [
                [key[0], _class_to_json(key[1]), inserted_at]
                for key, (_, inserted_at) in self._entries.items()
            ],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self._entries.clear()
        self._by_owner.clear()
        self._classer.clear()
        for owner_id, class_json, inserted_at in state["entries"]:
            key = (int(owner_id), _class_from_json(class_json))
            page = render_for_class(self._service, key[0], key[1])
            self._insert(key, page, float(inserted_at))
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.evictions = int(state["evictions"])
        self.invalidations = int(state["invalidations"])
        self._m_size.set(len(self._entries))
