"""repro-gplus: a reproduction of "New Kid on the Block: Exploring the
Google+ Social Graph" (Magno et al., IMC 2012).

Google+ no longer exists, so the package rebuilds the whole measurement
stack over a simulated service: a calibrated synthetic world
(:mod:`repro.synth`), the Google+ platform mechanics (:mod:`repro.platform`),
the authors' bidirectional BFS crawler (:mod:`repro.crawler`), a
from-scratch graph library (:mod:`repro.graph`), geo analytics
(:mod:`repro.geo`), and one analysis per table/figure
(:mod:`repro.analysis`), orchestrated by :mod:`repro.core`.

Quickstart::

    from repro import run_study

    results = run_study(n_users=20_000, seed=7)
    for row in results.table1_top_users[:5]:
        print(row.rank, row.name, row.in_degree, row.about)
"""

from .core import (
    compare_results,
    GooglePlusPaper,
    MeasurementStudy,
    run_study,
    StudyConfig,
    StudyResults,
)
from .synth import build_world, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "build_world",
    "compare_results",
    "GooglePlusPaper",
    "MeasurementStudy",
    "run_study",
    "StudyConfig",
    "StudyResults",
    "WorldConfig",
    "__version__",
]
