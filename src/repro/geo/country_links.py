"""The country-to-country link graph (Section 4.5, Figure 10).

Nodes are the top ten countries; the weight of the directed edge
``A -> B`` is the proportion of A's outgoing social links that point at
users in B (restricted to links between top-10-located users, which is
what the figure draws). The self-loop weight is the paper's "inward
looking" measure: 0.79 for the US versus 0.30 for the UK.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset

from .index import GeoIndex


@dataclass(frozen=True)
class CountryLinkGraph:
    """Row-normalised country mixing matrix over the selected countries."""

    countries: tuple[str, ...]
    weights: np.ndarray  # weights[i, j] = share of i's links going to j
    node_share: np.ndarray  # share of located users per country

    def weight(self, source: str, target: str) -> float:
        i = self.countries.index(source)
        j = self.countries.index(target)
        return float(self.weights[i, j])

    def self_loop(self, country: str) -> float:
        i = self.countries.index(country)
        return float(self.weights[i, i])

    def edges_over(self, threshold: float = 0.01) -> list[tuple[str, str, float]]:
        """Drawable edges: weight >= threshold, as in the figure."""
        result = []
        for i, src in enumerate(self.countries):
            for j, dst in enumerate(self.countries):
                w = float(self.weights[i, j])
                if w >= threshold:
                    result.append((src, dst, w))
        return result


def build_country_link_graph(
    dataset: CrawlDataset, index: GeoIndex, countries: list[str]
) -> CountryLinkGraph:
    """Aggregate the located edges of a crawl into the Figure 10 matrix."""
    code_index = {code: i for i, code in enumerate(countries)}
    k = len(countries)
    counts = np.zeros((k, k), dtype=np.int64)
    position = index.position_of
    for u, v in zip(dataset.sources, dataset.targets):
        a = position.get(int(u))
        b = position.get(int(v))
        if a is None or b is None:
            continue
        i = code_index.get(index.countries[a])
        j = code_index.get(index.countries[b])
        if i is None or j is None:
            continue
        counts[i, j] += 1
    row_sums = counts.sum(axis=1, keepdims=True)
    weights = np.divide(
        counts, np.maximum(row_sums, 1), dtype=float, casting="unsafe"
    )
    user_counts = np.zeros(k, dtype=np.int64)
    for code in index.countries:
        i = code_index.get(code)
        if i is not None:
            user_counts[i] += 1
    total_users = max(1, int(user_counts.sum()))
    return CountryLinkGraph(
        countries=tuple(countries),
        weights=weights,
        node_share=user_counts / total_users,
    )
