"""Great-circle distances (the "path miles" of Section 4.4)."""

from __future__ import annotations

import numpy as np

#: Mean Earth radius in miles.
EARTH_RADIUS_MILES = 3958.7613


def haversine_miles(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Great-circle distance in miles between coordinate arrays (degrees).

    Fully vectorised: inputs broadcast against each other; scalars work
    too and return a 0-d array.
    """
    lat1, lon1, lat2, lon2 = (
        np.radians(np.asarray(a, dtype=float)) for a in (lat1, lon1, lat2, lon2)
    )
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    # Clip guards the arcsin against floating-point overshoot at antipodes.
    return 2.0 * EARTH_RADIUS_MILES * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


def pairwise_miles(
    lats: np.ndarray, lons: np.ndarray, pairs_a: np.ndarray, pairs_b: np.ndarray
) -> np.ndarray:
    """Distances for index pairs into shared coordinate arrays."""
    return haversine_miles(lats[pairs_a], lons[pairs_a], lats[pairs_b], lons[pairs_b])
