"""Coordinate-to-country resolution (Section 4).

The paper extracted the coordinates of each user's last "places lived"
entry and "translated the coordinates into a valid country identifier."
:class:`CountryResolver` performs that translation against the gazetteer:
a coordinate resolves to the country of its nearest known city, provided
the city is within a sanity radius. The resolver deliberately ignores the
country label carried on :class:`~repro.platform.models.Place` objects,
so the geo pipeline is exercised end-to-end from raw coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.synth.cities import build_gazetteer

from .distance import haversine_miles

#: Coordinates farther than this from any known city stay unresolved.
DEFAULT_MAX_MILES = 600.0


class CountryResolver:
    """Nearest-gazetteer-city country lookup, vectorised over users."""

    def __init__(self, max_miles: float = DEFAULT_MAX_MILES):
        cities = [c for group in build_gazetteer().values() for c in group]
        self._lats = np.array([c.latitude for c in cities])
        self._lons = np.array([c.longitude for c in cities])
        self._codes = [c.country for c in cities]
        self._max_miles = max_miles

    def resolve(self, latitude: float, longitude: float) -> str | None:
        """Country code of the nearest city, or None when out of range."""
        distances = haversine_miles(latitude, longitude, self._lats, self._lons)
        best = int(np.argmin(distances))
        if distances[best] > self._max_miles:
            return None
        return self._codes[best]

    def resolve_many(
        self, latitudes: np.ndarray, longitudes: np.ndarray
    ) -> list[str | None]:
        """Resolve a batch of coordinates (row-wise nearest city)."""
        latitudes = np.asarray(latitudes, dtype=float)
        longitudes = np.asarray(longitudes, dtype=float)
        results: list[str | None] = []
        # Chunked broadcasting keeps the distance matrix small.
        chunk = 4096
        for start in range(0, len(latitudes), chunk):
            lat_block = latitudes[start : start + chunk, None]
            lon_block = longitudes[start : start + chunk, None]
            distances = haversine_miles(
                lat_block, lon_block, self._lats[None, :], self._lons[None, :]
            )
            best = np.argmin(distances, axis=1)
            best_distance = distances[np.arange(len(best)), best]
            for index, miles in zip(best, best_distance):
                results.append(
                    self._codes[int(index)] if miles <= self._max_miles else None
                )
        return results
