"""Geo analytics: distances, country resolution, path miles, link geography."""

from .country_links import build_country_link_graph, CountryLinkGraph
from .distance import EARTH_RADIUS_MILES, haversine_miles, pairwise_miles
from .index import build_geo_index, GeoIndex
from .pathmiles import (
    average_path_mile_by_country,
    compute_path_miles,
    PathMileSamples,
)
from .resolve import CountryResolver, DEFAULT_MAX_MILES

__all__ = [
    "average_path_mile_by_country",
    "build_country_link_graph",
    "build_geo_index",
    "compute_path_miles",
    "CountryLinkGraph",
    "CountryResolver",
    "DEFAULT_MAX_MILES",
    "EARTH_RADIUS_MILES",
    "GeoIndex",
    "haversine_miles",
    "pairwise_miles",
    "PathMileSamples",
]
