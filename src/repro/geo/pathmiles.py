"""Path-mile analysis (Section 4.4, Figure 9).

Three pair populations are compared:

1. socially connected pairs ("friends" — any directed edge),
2. reciprocally connected pairs,
3. random unlinked pairs,

all restricted to users sharing geo-location. The paper's headline: 58%
of friend pairs lie within a thousand miles, 15% within ten miles, and
reciprocal pairs live closest of all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset

from .distance import pairwise_miles
from .index import GeoIndex


@dataclass(frozen=True)
class PathMileSamples:
    """Distance samples (miles) for the three pair populations."""

    friends: np.ndarray
    reciprocal: np.ndarray
    random_pairs: np.ndarray

    def fraction_within(self, miles: float, population: str = "friends") -> float:
        sample = getattr(self, population)
        if len(sample) == 0:
            return float("nan")
        return float((sample <= miles).mean())


def _located_edges(
    dataset: CrawlDataset, index: GeoIndex
) -> tuple[np.ndarray, np.ndarray]:
    """Edge endpoint positions in the geo index, for edges fully located."""
    position = index.position_of
    pos_a: list[int] = []
    pos_b: list[int] = []
    for u, v in zip(dataset.sources, dataset.targets):
        a = position.get(int(u))
        b = position.get(int(v))
        if a is not None and b is not None:
            pos_a.append(a)
            pos_b.append(b)
    return np.array(pos_a, dtype=np.int64), np.array(pos_b, dtype=np.int64)


def compute_path_miles(
    dataset: CrawlDataset,
    index: GeoIndex,
    rng: np.random.Generator,
    max_pairs: int = 200_000,
) -> PathMileSamples:
    """Compute the Figure 9a samples from a crawl dataset.

    ``max_pairs`` caps each population (the paper used 60M / 13M / 20M
    pairs; proportionally smaller caps keep laptop runs fast without
    changing the distributions).
    """
    pos_a, pos_b = _located_edges(dataset, index)

    # Reciprocal pairs: both directions present among located edges.
    forward = set(zip(pos_a.tolist(), pos_b.tolist()))
    reciprocal_mask = np.fromiter(
        ((b, a) in forward for a, b in zip(pos_a, pos_b)),
        dtype=bool,
        count=len(pos_a),
    )

    def subsample(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if len(a) > max_pairs:
            chosen = rng.choice(len(a), size=max_pairs, replace=False)
            return a[chosen], b[chosen]
        return a, b

    fa, fb = subsample(pos_a, pos_b)
    ra, rb = subsample(pos_a[reciprocal_mask], pos_b[reciprocal_mask])

    # Random unlinked pairs among located users.
    n = index.n_located
    random_a = np.empty(0, dtype=np.int64)
    random_b = np.empty(0, dtype=np.int64)
    if n >= 2:
        want = min(max_pairs, 4 * max_pairs)
        a = rng.integers(0, n, size=want)
        b = rng.integers(0, n, size=want)
        valid = a != b
        linked = np.fromiter(
            ((x, y) in forward or (y, x) in forward for x, y in zip(a, b)),
            dtype=bool,
            count=want,
        )
        keep = valid & ~linked
        random_a, random_b = a[keep][:max_pairs], b[keep][:max_pairs]

    lats, lons = index.latitudes, index.longitudes
    return PathMileSamples(
        friends=pairwise_miles(lats, lons, fa, fb),
        reciprocal=pairwise_miles(lats, lons, ra, rb),
        random_pairs=pairwise_miles(lats, lons, random_a, random_b),
    )


def average_path_mile_by_country(
    dataset: CrawlDataset, index: GeoIndex, countries: list[str]
) -> dict[str, tuple[float, float]]:
    """Figure 9b: mean and standard deviation of friend-pair distances,
    grouped by the *source* user's country."""
    pos_a, pos_b = _located_edges(dataset, index)
    by_country: dict[str, list[float]] = {code: [] for code in countries}
    distances = pairwise_miles(index.latitudes, index.longitudes, pos_a, pos_b)
    for a, miles in zip(pos_a, distances):
        code = index.countries[int(a)]
        if code in by_country:
            by_country[code].append(float(miles))
    result: dict[str, tuple[float, float]] = {}
    for code in countries:
        values = np.array(by_country[code])
        if len(values) == 0:
            result[code] = (float("nan"), float("nan"))
        else:
            result[code] = (float(values.mean()), float(values.std()))
    return result
