"""Geo index: located users of a crawl dataset.

Roughly 27% of crawled users share "places lived"; the geo analyses of
Section 4 operate on that subset. The index resolves each located user's
last place to a country, stores coordinates as flat arrays, and maps user
ids to array positions so edge endpoints can be joined efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crawler.dataset import CrawlDataset

from .resolve import CountryResolver


@dataclass
class GeoIndex:
    """Located users: ids, coordinates, resolved countries."""

    user_ids: np.ndarray
    latitudes: np.ndarray
    longitudes: np.ndarray
    countries: list[str]
    position_of: dict[int, int]

    @property
    def n_located(self) -> int:
        return len(self.user_ids)

    def country_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for code in self.countries:
            counts[code] = counts.get(code, 0) + 1
        return counts


def build_geo_index(
    dataset: CrawlDataset, resolver: CountryResolver | None = None
) -> GeoIndex:
    """Extract and resolve all located users from a crawl dataset."""
    resolver = resolver if resolver is not None else CountryResolver()
    ids: list[int] = []
    lats: list[float] = []
    lons: list[float] = []
    for profile in dataset.profiles.values():
        place = profile.current_place()
        if place is None:
            continue
        ids.append(profile.user_id)
        lats.append(place.latitude)
        lons.append(place.longitude)
    lat_arr = np.array(lats, dtype=float)
    lon_arr = np.array(lons, dtype=float)
    resolved = resolver.resolve_many(lat_arr, lon_arr) if ids else []
    keep = [i for i, code in enumerate(resolved) if code is not None]
    user_ids = np.array([ids[i] for i in keep], dtype=np.int64)
    return GeoIndex(
        user_ids=user_ids,
        latitudes=lat_arr[keep],
        longitudes=lon_arr[keep],
        countries=[resolved[i] for i in keep],
        position_of={int(uid): pos for pos, uid in enumerate(user_ids)},
    )
