"""Named chaos scenarios — curated fault scripts for tests, CI, and demos.

Each scenario is a plain JSON-compatible document (see
:meth:`repro.faults.schedule.FaultSchedule.from_dict`) whose windows are
calibrated for the default campaign shape the ``python -m repro.faults``
CLI runs (a few thousand users, 11 machines, 20 ms request latency —
roughly 4–10 virtual seconds of crawl).  Scenarios are data, not code:
copy one, tweak the windows, and feed it back via ``--scenario-file``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .schedule import FaultSchedule, FaultSpecError

__all__ = [
    "DISK_SCENARIOS",
    "SCENARIOS",
    "disk_scenario_names",
    "get_disk_scenario",
    "get_scenario",
    "load_scenario_file",
    "scenario_names",
]


SCENARIOS: dict[str, dict[str, Any]] = {
    # The bread-and-butter chaos mix: two 503 bursts, a partial-fleet
    # ban, and a stretch of dirty pages.  The crawl should complete with
    # zero (or fully re-driven) dead letters.
    "flaky-fleet": {
        "seed": 7,
        "description": "503 bursts + a 3-machine ban + corrupted pages",
        "rules": [
            {"kind": "error_burst", "start": 0.2, "end": 1.4, "rate": 0.35,
             "retry_after": 0.01},
            {"kind": "error_burst", "start": 2.4, "end": 3.0, "rate": 0.5,
             "retry_after": 0.01},
            {
                "kind": "ip_ban",
                "start": 0.9,
                "end": 1.8,
                "ips": ["10.0.0.2", "10.0.0.5", "10.0.0.8"],
                "retry_after": 0.05,
            },
            {"kind": "corrupt_pages", "start": 0.6, "end": 2.6, "rate": 0.12},
        ],
    },
    # Every IP banned for a window: the breaker fleet must quarantine,
    # wait the bans out, and re-drive whatever dead-lettered meanwhile.
    "ban-hammer": {
        "seed": 11,
        "description": "a whole-fleet 403 window plus background 503s",
        "rules": [
            {"kind": "ip_ban", "start": 1.0, "end": 2.2, "retry_after": 0.1},
            {"kind": "bernoulli_errors", "rate": 0.05},
        ],
    },
    # A hard outage mid-crawl: everything 503s until the window lifts.
    "rolling-outage": {
        "seed": 13,
        "description": "two short full outages with clean air between",
        "rules": [
            {"kind": "outage", "start": 0.8, "end": 1.5, "retry_after": 0.1},
            {"kind": "outage", "start": 2.6, "end": 3.1, "retry_after": 0.1},
        ],
    },
    # Garbage in: a long window of mangled payloads plus slow responses
    # and hung requests.  Exercises parse hardening and timeout retries.
    "dirty-pages": {
        "seed": 17,
        "description": "heavy page corruption, slow responses, timeouts",
        "rules": [
            {"kind": "corrupt_pages", "start": 0.3, "end": 3.5, "rate": 0.25},
            {"kind": "slow_responses", "start": 0.5, "end": 2.5, "rate": 0.2,
             "extra_latency": 0.3},
            {"kind": "timeouts", "start": 1.0, "end": 2.0, "rate": 0.08,
             "timeout": 0.05},
        ],
    },
    # Peak-hour serving chaos: latency degradation and short 503/408
    # windows while interactive clients and the crawler share the site.
    # Deliberately no corrupt_pages — serving responses must stay
    # byte-comparable for the page-cache differential proofs.
    "serving-rush": {
        "seed": 29,
        "description": "slow responses + 503 bursts + timeouts (cache-safe)",
        "rules": [
            {"kind": "slow_responses", "start": 0.5, "end": 6.0, "rate": 0.25,
             "extra_latency": 0.08},
            {"kind": "error_burst", "start": 1.0, "end": 2.0, "rate": 0.2,
             "retry_after": 0.02},
            {"kind": "timeouts", "start": 2.5, "end": 4.0, "rate": 0.05,
             "timeout": 0.05},
            {"kind": "error_burst", "start": 4.5, "end": 5.2, "rate": 0.35,
             "retry_after": 0.02},
        ],
    },
    # Everything at once — the closest analogue to a hostile live site.
    "kitchen-sink": {
        "seed": 23,
        "description": "bursts + bans + outage + corruption + timeouts",
        "rules": [
            {"kind": "bernoulli_errors", "rate": 0.03},
            {"kind": "error_burst", "start": 0.4, "end": 1.2, "rate": 0.4,
             "retry_after": 0.01},
            {"kind": "ip_ban", "start": 0.8, "end": 1.6,
             "ips": ["10.0.0.1", "10.0.0.4", "10.0.0.7", "10.0.0.10"],
             "retry_after": 0.05},
            {"kind": "outage", "start": 2.0, "end": 2.4, "retry_after": 0.1},
            {"kind": "corrupt_pages", "start": 0.5, "end": 3.0, "rate": 0.1},
            {"kind": "timeouts", "start": 1.4, "end": 2.8, "rate": 0.05,
             "timeout": 0.05},
        ],
    },
}


#: Disk-fault scenarios (:meth:`repro.faults.disk.DiskFaultSchedule.from_dict`
#: schema).  Windows use the same virtual timescale as the network
#: scenarios above; disk ops fire on journal flushes (~every 64 pages)
#: and on segment/checkpoint publishes, so rates are per durability
#: event, not per page.
DISK_SCENARIOS: dict[str, dict[str, Any]] = {
    # Crash-consistency classics: occasional torn batch writes plus a
    # stretch of lying fsyncs.  Everything is recoverable from the
    # journal's valid prefix — fsck repairs, the supervisor resumes.
    "torn-tail": {
        "seed": 31,
        "description": "torn journal batches + dropped fsyncs",
        "rules": [
            {"kind": "torn_write", "start": 0.3, "end": 2.4, "rate": 0.04},
            {"kind": "dropped_fsync", "start": 0.5, "end": 2.0, "rate": 0.3},
        ],
    },
    # Sealed data decays: bit flips in published segments and stray
    # duplicate shards.  fsck rebuilds rotted segments by journal replay
    # and quarantines the strays.
    "rotten-segments": {
        "seed": 37,
        "description": "bit rot in sealed segments + duplicate shards",
        "rules": [
            {"kind": "bit_rot", "start": 0.2, "end": 3.0, "rate": 0.3,
             "targets": ["segment"]},
            {"kind": "duplicate_segment", "start": 0.5, "end": 2.5, "rate": 0.2},
        ],
    },
    # Resume points vanish and rot: newest-verifiable-wins fallback plus
    # fsck quarantine keep the campaign resumable from an older cut.
    "vanishing-checkpoints": {
        "seed": 41,
        "description": "checkpoint files deleted or rotted after publish",
        "rules": [
            {"kind": "missing_file", "start": 0.3, "end": 2.8, "rate": 0.3,
             "targets": ["checkpoint"]},
            {"kind": "bit_rot", "start": 0.3, "end": 2.8, "rate": 0.2,
             "targets": ["checkpoint"]},
        ],
    },
    # A drive on its way out: transient EIO, a short full-disk window,
    # lying fsyncs, the odd torn write.  Crashy but journal-recoverable.
    "disk-dying": {
        "seed": 43,
        "description": "EIO + a short ENOSPC window + dropped fsyncs",
        "rules": [
            {"kind": "eio", "start": 0.4, "end": 2.6, "rate": 0.05},
            {"kind": "enospc", "start": 1.2, "end": 1.5, "rate": 0.5},
            {"kind": "dropped_fsync", "start": 0.3, "end": 2.2, "rate": 0.25},
            {"kind": "torn_write", "start": 0.6, "end": 2.0, "rate": 0.03},
        ],
    },
    # The CI grinder: every *recoverable* fault kind at once.  A
    # supervised campaign must ride through this to a bit-identical
    # dataset (the journal always survives).
    "full-grind": {
        "seed": 47,
        "description": "torn writes + segment rot + vanishing checkpoints + strays",
        "rules": [
            {"kind": "torn_write", "start": 0.4, "end": 2.2, "rate": 0.03},
            {"kind": "bit_rot", "start": 0.3, "end": 2.8, "rate": 0.2,
             "targets": ["segment"]},
            {"kind": "missing_file", "start": 0.5, "end": 2.5, "rate": 0.2,
             "targets": ["checkpoint"]},
            {"kind": "duplicate_segment", "start": 0.6, "end": 2.4, "rate": 0.15},
            {"kind": "dropped_fsync", "start": 0.3, "end": 2.0, "rate": 0.2},
        ],
    },
    # Journal destroyers — the *unrecoverable* scenarios.  "journal-rot"
    # flips a bit early in the journal's history (before every retained
    # checkpoint's offset); "journal-vanishes" unlinks the file
    # outright.  Either way fsck must emit an exact loss manifest.
    "journal-rot": {
        "seed": 53,
        "description": "bit rot lands early in the journal history",
        "rules": [
            {"kind": "bit_rot", "start": 1.2, "end": 1e9, "rate": 1.0,
             "targets": ["journal"], "zone": [0.0, 0.15]},
        ],
    },
    "journal-vanishes": {
        "seed": 59,
        "description": "the journal file is unlinked mid-campaign",
        "rules": [
            {"kind": "missing_file", "start": 0.8, "end": 1e9, "rate": 1.0,
             "targets": ["journal"]},
        ],
    },
}


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


def disk_scenario_names() -> list[str]:
    return sorted(DISK_SCENARIOS)


def get_disk_scenario(name: str) -> dict[str, Any]:
    """The named disk scenario document (validated buildable)."""
    # Imported here, not at module top: ``.disk`` pulls in the store's
    # I/O seam, whose package init imports the crawler — which imports
    # this package.  Deferring breaks the cycle.
    from .disk import DiskFaultSchedule

    try:
        spec = DISK_SCENARIOS[name]
    except KeyError:
        raise FaultSpecError(
            f"unknown disk scenario {name!r} (known: {', '.join(disk_scenario_names())})"
        ) from None
    DiskFaultSchedule.from_dict(spec)
    return spec


def get_scenario(name: str) -> dict[str, Any]:
    """The named scenario document (validated buildable); KeyError-safe."""
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise FaultSpecError(
            f"unknown scenario {name!r} (known: {', '.join(scenario_names())})"
        ) from None
    FaultSchedule.from_dict(spec)  # validate eagerly: bad data fails loudly
    return spec


def load_scenario_file(path: str | Path) -> dict[str, Any]:
    """Load and validate a scenario document from a JSON file."""
    try:
        spec = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise FaultSpecError(f"{path}: unreadable scenario file ({exc})") from exc
    if not isinstance(spec, Mapping):
        raise FaultSpecError(f"{path}: scenario must be a JSON object")
    FaultSchedule.from_dict(spec)
    return dict(spec)
