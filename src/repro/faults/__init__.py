"""Scripted fault injection (``repro.faults``).

Deterministic, virtual-clock-scheduled chaos for the simulated Google+
transport: error-rate bursts, per-IP bans, outages, timeouts, slow
responses, and corrupted pages — all seeded, all resumable, so the
crawler's resilience layer can be exercised end-to-end and a campaign
interrupted mid-chaos still resumes bit-identically.

See ``docs/faults.md`` for the scenario schema and determinism
guarantees, and ``python -m repro.faults --scenario flaky-fleet`` for an
end-to-end chaos run.
"""

from .schedule import (
    BernoulliErrors,
    CORRUPTION_MODES,
    CorruptPages,
    ErrorBurst,
    FaultDecision,
    FaultRule,
    FaultSchedule,
    FaultSpecError,
    IpBan,
    Outage,
    SlowResponses,
    STATUS_FORBIDDEN,
    STATUS_REQUEST_TIMEOUT,
    STATUS_SERVER_ERROR,
    Timeouts,
    corrupt_payload,
)
from .scenarios import (
    DISK_SCENARIOS,
    SCENARIOS,
    disk_scenario_names,
    get_disk_scenario,
    get_scenario,
    load_scenario_file,
    scenario_names,
)

#: Disk-fault names resolved lazily (PEP 562): ``.disk`` imports the
#: store's I/O seam, whose package init imports the crawler — which
#: imports this package.  Eager import here would close that cycle.
_DISK_EXPORTS = frozenset(
    {"DiskFaultError", "DiskFaultRule", "DiskFaultSchedule", "FaultyStoreIO"}
)


def __getattr__(name: str):
    if name in _DISK_EXPORTS:
        from . import disk

        return getattr(disk, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DISK_SCENARIOS",
    "DiskFaultError",
    "DiskFaultRule",
    "DiskFaultSchedule",
    "FaultyStoreIO",
    "BernoulliErrors",
    "CORRUPTION_MODES",
    "CorruptPages",
    "ErrorBurst",
    "FaultDecision",
    "FaultRule",
    "FaultSchedule",
    "FaultSpecError",
    "IpBan",
    "Outage",
    "SCENARIOS",
    "SlowResponses",
    "STATUS_FORBIDDEN",
    "STATUS_REQUEST_TIMEOUT",
    "STATUS_SERVER_ERROR",
    "Timeouts",
    "corrupt_payload",
    "disk_scenario_names",
    "get_disk_scenario",
    "get_scenario",
    "load_scenario_file",
    "scenario_names",
]
