"""Scripted fault injection (``repro.faults``).

Deterministic, virtual-clock-scheduled chaos for the simulated Google+
transport: error-rate bursts, per-IP bans, outages, timeouts, slow
responses, and corrupted pages — all seeded, all resumable, so the
crawler's resilience layer can be exercised end-to-end and a campaign
interrupted mid-chaos still resumes bit-identically.

See ``docs/faults.md`` for the scenario schema and determinism
guarantees, and ``python -m repro.faults --scenario flaky-fleet`` for an
end-to-end chaos run.
"""

from .schedule import (
    BernoulliErrors,
    CORRUPTION_MODES,
    CorruptPages,
    ErrorBurst,
    FaultDecision,
    FaultRule,
    FaultSchedule,
    FaultSpecError,
    IpBan,
    Outage,
    SlowResponses,
    STATUS_FORBIDDEN,
    STATUS_REQUEST_TIMEOUT,
    STATUS_SERVER_ERROR,
    Timeouts,
    corrupt_payload,
)
from .scenarios import SCENARIOS, get_scenario, load_scenario_file, scenario_names

__all__ = [
    "BernoulliErrors",
    "CORRUPTION_MODES",
    "CorruptPages",
    "ErrorBurst",
    "FaultDecision",
    "FaultRule",
    "FaultSchedule",
    "FaultSpecError",
    "IpBan",
    "Outage",
    "SCENARIOS",
    "SlowResponses",
    "STATUS_FORBIDDEN",
    "STATUS_REQUEST_TIMEOUT",
    "STATUS_SERVER_ERROR",
    "Timeouts",
    "corrupt_payload",
    "get_scenario",
    "load_scenario_file",
    "scenario_names",
]
