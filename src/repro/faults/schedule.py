"""Scripted, deterministic fault injection for the simulated transport.

The authors' 46-day crawl ran against a live service that threw rate
bans, outages, and half-rendered pages at the fleet; our simulator must
be able to do the same, on demand and reproducibly.  A
:class:`FaultSchedule` is a list of :class:`FaultRule` objects evaluated
on every request the HTTP front end admits: each rule owns a virtual-time
window, an (optional) seeded RNG, and a decision — block the request
with an error status, slow it down, or corrupt its payload.

Determinism is the design constraint that shapes everything here:

* Every rule is evaluated on **every** request while its window is
  active, whether or not an earlier rule already decided the request's
  fate.  The RNG draw sequence therefore depends only on the virtual
  request timeline, never on rule interactions.
* All randomness comes from per-rule ``numpy`` generators seeded via
  ``SeedSequence``, and :meth:`FaultSchedule.export_state` /
  :meth:`FaultSchedule.restore_state` round-trip their bit-generator
  states, so a crawl killed and resumed mid-chaos replays the exact
  fault sequence an uninterrupted run would have seen (the
  :mod:`repro.store` bit-identical guarantee).

This module deliberately imports nothing from :mod:`repro.platform` —
the platform's HTTP front end imports *it* — so the status codes the
rules inject are defined here and re-exported by ``platform.http``.
"""

from __future__ import annotations

import copy
from types import SimpleNamespace
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "BernoulliErrors",
    "CORRUPTION_MODES",
    "CorruptPages",
    "ErrorBurst",
    "FaultDecision",
    "FaultRule",
    "FaultSchedule",
    "FaultSpecError",
    "IpBan",
    "Outage",
    "SlowResponses",
    "STATUS_FORBIDDEN",
    "STATUS_REQUEST_TIMEOUT",
    "STATUS_SERVER_ERROR",
    "Timeouts",
    "corrupt_payload",
]

#: Status codes the fault layer injects.  503 mirrors the platform's
#: constant; 403 (temporary per-IP ban) and 408 (request timeout) are
#: introduced by this layer and re-exported from ``repro.platform.http``.
STATUS_SERVER_ERROR = 503
STATUS_FORBIDDEN = 403
STATUS_REQUEST_TIMEOUT = 408


class FaultSpecError(ValueError):
    """A scenario document does not describe a valid fault schedule."""


class FaultDecision:
    """What one rule (or the combined schedule) does to one request.

    ``status`` set means the request is blocked before reaching the
    handler; ``slow_by`` adds virtual latency to a successful response;
    ``corrupt_mode`` mangles a successful payload (see
    :func:`corrupt_payload`).
    """

    __slots__ = ("kind", "status", "retry_after", "slow_by", "corrupt_mode")

    def __init__(
        self,
        kind: str,
        status: int | None = None,
        retry_after: float = 0.0,
        slow_by: float = 0.0,
        corrupt_mode: str | None = None,
    ):
        self.kind = kind
        self.status = status
        self.retry_after = retry_after
        self.slow_by = slow_by
        self.corrupt_mode = corrupt_mode


class FaultRule:
    """Base class: a virtual-time window plus an optional seeded RNG."""

    #: Scenario-document discriminator; subclasses override.
    kind = "abstract"

    def __init__(self, start: float = 0.0, end: float = float("inf"), seed: int | None = None):
        if end < start:
            raise FaultSpecError(f"{self.kind}: window end {end} before start {start}")
        self.start = float(start)
        self.end = float(end)
        self._rng = None if seed is None else np.random.default_rng(seed)

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def remaining(self, now: float) -> float:
        """Virtual time until the window closes (0 outside the window)."""
        return max(0.0, self.end - now) if self.end != float("inf") else 0.0

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        raise NotImplementedError

    def _chance(self, rate: float) -> bool:
        """One seeded Bernoulli draw (the rule's only randomness source)."""
        if self._rng is None:
            return True
        return bool(self._rng.random() < rate)

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        if self._rng is None:
            return {}
        return {"rng": copy.deepcopy(self._rng.bit_generator.state)}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        if self._rng is not None and "rng" in state:
            self._rng.bit_generator.state = copy.deepcopy(dict(state["rng"]))


def _rate_in_unit(rate: float, what: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise FaultSpecError(f"{what} must be in [0, 1], got {rate}")
    return float(rate)


class ErrorBurst(FaultRule):
    """A window of elevated transient 503s (error-rate burst)."""

    kind = "error_burst"

    def __init__(
        self,
        start: float = 0.0,
        end: float = float("inf"),
        rate: float = 0.5,
        retry_after: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(start, end, seed=seed)
        self.rate = _rate_in_unit(rate, "error_burst.rate")
        self.retry_after = float(retry_after)

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now) or self.rate == 0.0:
            return None
        if not self._chance(self.rate):
            return None
        return FaultDecision(
            self.kind, status=STATUS_SERVER_ERROR, retry_after=self.retry_after
        )


class BernoulliErrors(ErrorBurst):
    """Always-on uniform 503s — the legacy ``error_rate`` knob.

    Draw-for-draw compatible with the old single ``FlakinessModel`` hook:
    one uniform per request, ``default_rng(seed)``.
    """

    kind = "bernoulli_errors"

    def __init__(self, rate: float, seed: int = 0):
        super().__init__(0.0, float("inf"), rate=rate, retry_after=1.0, seed=seed)


class IpBan(FaultRule):
    """A temporary 403 ban window, for all client IPs or a listed subset."""

    kind = "ip_ban"

    def __init__(
        self,
        start: float,
        end: float,
        ips: Sequence[str] | None = None,
        retry_after: float = 5.0,
    ):
        super().__init__(start, end, seed=None)
        self.ips = frozenset(ips) if ips is not None else None
        self.retry_after = float(retry_after)

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now):
            return None
        if self.ips is not None and ip not in self.ips:
            return None
        return FaultDecision(
            self.kind, status=STATUS_FORBIDDEN, retry_after=self.retry_after
        )


class Outage(FaultRule):
    """A whole-service outage window: every request 503s until it lifts.

    The advertised ``retry_after`` is capped by the time remaining in the
    window, the way a load balancer's maintenance page advertises when
    the service is expected back.
    """

    kind = "outage"

    def __init__(self, start: float, end: float, retry_after: float = 2.0):
        super().__init__(start, end, seed=None)
        self.retry_after = float(retry_after)

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now):
            return None
        hint = min(self.retry_after, max(self.end - now, 0.01))
        return FaultDecision(self.kind, status=STATUS_SERVER_ERROR, retry_after=hint)


class Timeouts(FaultRule):
    """Requests that never complete: the client burns ``timeout`` waiting.

    Modelled as a 408 whose ``retry_after`` is the timeout the client
    sat through before giving up on the connection.
    """

    kind = "timeouts"

    def __init__(
        self,
        start: float = 0.0,
        end: float = float("inf"),
        rate: float = 0.1,
        timeout: float = 10.0,
        seed: int = 0,
    ):
        super().__init__(start, end, seed=seed)
        self.rate = _rate_in_unit(rate, "timeouts.rate")
        self.timeout = float(timeout)

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now) or self.rate == 0.0:
            return None
        if not self._chance(self.rate):
            return None
        return FaultDecision(
            self.kind, status=STATUS_REQUEST_TIMEOUT, retry_after=self.timeout
        )


class SlowResponses(FaultRule):
    """Successful responses that drag: adds virtual latency to 200s."""

    kind = "slow_responses"

    def __init__(
        self,
        start: float = 0.0,
        end: float = float("inf"),
        rate: float = 0.5,
        extra_latency: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(start, end, seed=seed)
        self.rate = _rate_in_unit(rate, "slow_responses.rate")
        self.extra_latency = float(extra_latency)

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now) or self.rate == 0.0:
            return None
        if not self._chance(self.rate):
            return None
        return FaultDecision(self.kind, slow_by=self.extra_latency)


#: Payload corruption modes, in the order the RNG indexes them.
CORRUPTION_MODES = ("blank", "truncated_document", "missing_name", "garbage_ids")


class CorruptPages(FaultRule):
    """Successful responses whose payload arrives mangled.

    The served document is replaced by one of the
    :data:`CORRUPTION_MODES` garbage shapes — an empty body, a
    half-rendered document, a page missing mandatory fields, or circle
    lists full of non-ids — everything the parser hardening
    (:func:`repro.crawler.parse.parse_profile_page`) must survive.
    """

    kind = "corrupt_pages"

    def __init__(
        self,
        start: float = 0.0,
        end: float = float("inf"),
        rate: float = 0.2,
        modes: Sequence[str] | None = None,
        seed: int = 0,
    ):
        super().__init__(start, end, seed=seed)
        self.rate = _rate_in_unit(rate, "corrupt_pages.rate")
        self.modes = tuple(modes) if modes is not None else CORRUPTION_MODES
        unknown = set(self.modes) - set(CORRUPTION_MODES)
        if unknown:
            raise FaultSpecError(f"unknown corruption modes: {sorted(unknown)}")

    def decide(self, now: float, ip: str) -> FaultDecision | None:
        if not self.active(now) or self.rate == 0.0:
            return None
        # Two draws per active request (hit?, which mode?) — always both,
        # so the draw sequence is independent of the hit outcome.
        hit = self._chance(self.rate)
        index = int(self._rng.integers(len(self.modes))) if self._rng is not None else 0
        if not hit:
            return None
        return FaultDecision(self.kind, corrupt_mode=self.modes[index])


def corrupt_payload(payload: Any, mode: str) -> Any:
    """Mangle a served page document the way ``mode`` describes.

    Purely structural — no randomness — so the schedule's RNG draws stay
    confined to :meth:`CorruptPages.decide`.
    """
    if mode == "blank":
        # A 200 with an empty body.  NOT ``None`` — that is the
        # transport's 404 signal, and a blank page must stay
        # distinguishable from a missing profile so the crawler
        # dead-letters (and later re-drives) it instead of silently
        # recording the user as not-found.
        return SimpleNamespace()
    if mode == "truncated_document":
        # The connection died mid-page: only a fragment arrived.
        return {"user_id": getattr(payload, "user_id", None), "truncated": True}
    if mode == "missing_name":
        # Rendered without its mandatory field block.
        return SimpleNamespace(
            user_id=getattr(payload, "user_id", None),
            fields={},
            in_list=getattr(payload, "in_list", None),
            out_list=getattr(payload, "out_list", None),
        )
    if mode == "garbage_ids":
        # Circle lists present but full of non-ids (mojibake scrape).
        garbage = SimpleNamespace(user_ids=("<a href>", None, -1.5), declared_count=3)
        return SimpleNamespace(
            user_id=getattr(payload, "user_id", None),
            name=getattr(payload, "name", None),
            fields=getattr(payload, "fields", {}),
            in_list=garbage,
            out_list=garbage,
        )
    raise FaultSpecError(f"unknown corruption mode {mode!r}")


#: Registry of rule kinds for scenario documents.
_RULE_KINDS: dict[str, type[FaultRule]] = {
    cls.kind: cls
    for cls in (ErrorBurst, BernoulliErrors, IpBan, Outage, Timeouts, SlowResponses, CorruptPages)
}

#: Rule constructor parameters that scenario documents may set.
_RULE_PARAMS: dict[str, tuple[str, ...]] = {
    "error_burst": ("start", "end", "rate", "retry_after"),
    "bernoulli_errors": ("rate",),
    "ip_ban": ("start", "end", "ips", "retry_after"),
    "outage": ("start", "end", "retry_after"),
    "timeouts": ("start", "end", "rate", "timeout"),
    "slow_responses": ("start", "end", "rate", "extra_latency"),
    "corrupt_pages": ("start", "end", "rate", "modes"),
}

#: Rule kinds that own an RNG (and therefore take a derived seed).
_SEEDED_KINDS = frozenset(
    {"error_burst", "bernoulli_errors", "timeouts", "slow_responses", "corrupt_pages"}
)


class FaultSchedule:
    """An ordered, composable set of fault rules with resumable state."""

    def __init__(self, rules: Iterable[FaultRule] = ()):
        self.rules = list(rules)
        # Envelope of all rule windows, for the quiet-air fast path in
        # :meth:`evaluate`.  The rule list is fixed after construction.
        self._window_start = min(
            (rule.start for rule in self.rules), default=float("inf")
        )
        self._window_end = max(
            (rule.end for rule in self.rules), default=float("-inf")
        )

    def __len__(self) -> int:
        return len(self.rules)

    def evaluate(self, now: float, ip: str) -> FaultDecision | None:
        """Combined decision for one admitted request at virtual ``now``.

        Every rule is consulted (fixed RNG draw discipline — see module
        docstring); the first blocking decision wins, slow-downs add up,
        and the first corruption mode applies.

        Outside the envelope of every rule window no rule can be active
        (and inactive rules never draw), so the whole loop is skipped —
        this keeps a schedule whose chaos has passed (or not yet begun)
        at near-zero per-request cost.
        """
        if now < self._window_start or now >= self._window_end:
            return None
        blocking: FaultDecision | None = None
        slow_by = 0.0
        corrupt_mode: str | None = None
        corrupt_kind = "corrupt_pages"
        for rule in self.rules:
            decision = rule.decide(now, ip)
            if decision is None:
                continue
            if decision.status is not None:
                if blocking is None:
                    blocking = decision
                continue
            slow_by += decision.slow_by
            if corrupt_mode is None and decision.corrupt_mode is not None:
                corrupt_mode = decision.corrupt_mode
                corrupt_kind = decision.kind
        if blocking is not None:
            return blocking
        if slow_by == 0.0 and corrupt_mode is None:
            return None
        kind = corrupt_kind if corrupt_mode is not None else "slow_responses"
        return FaultDecision(kind, slow_by=slow_by, corrupt_mode=corrupt_mode)

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        """Per-rule RNG states, JSON-ready, positionally keyed."""
        return {"rules": [rule.export_state() for rule in self.rules]}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        states = state.get("rules", [])
        if len(states) != len(self.rules):
            raise FaultSpecError(
                f"state covers {len(states)} rules, schedule has {len(self.rules)}"
            )
        for rule, rule_state in zip(self.rules, states):
            rule.restore_state(rule_state)

    # -- scenario documents --------------------------------------------------

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultSchedule":
        """Build a schedule from a scenario document.

        Document shape (JSON-compatible)::

            {"seed": 7, "rules": [
                {"kind": "error_burst", "start": 0.5, "end": 2.0, "rate": 0.4},
                {"kind": "ip_ban", "start": 1.0, "end": 1.8, "ips": ["10.0.0.3"]},
                ...
            ]}

        Seeded rules draw from generators derived via ``SeedSequence``
        from the document seed and the rule's position, so the same
        document always produces the same chaos.
        """
        if not isinstance(spec, Mapping):
            raise FaultSpecError(f"scenario must be a mapping, got {type(spec).__name__}")
        base_seed = int(spec.get("seed", 0))
        rules_spec = spec.get("rules")
        if not isinstance(rules_spec, (list, tuple)):
            raise FaultSpecError("scenario needs a 'rules' list")
        rules: list[FaultRule] = []
        for index, entry in enumerate(rules_spec):
            if not isinstance(entry, Mapping):
                raise FaultSpecError(f"rules[{index}] must be a mapping")
            kind = entry.get("kind")
            rule_cls = _RULE_KINDS.get(kind)
            if rule_cls is None:
                raise FaultSpecError(
                    f"rules[{index}]: unknown kind {kind!r} "
                    f"(known: {sorted(_RULE_KINDS)})"
                )
            allowed = _RULE_PARAMS[kind]
            unknown = set(entry) - set(allowed) - {"kind"}
            if unknown:
                raise FaultSpecError(
                    f"rules[{index}] ({kind}): unknown parameters {sorted(unknown)}"
                )
            kwargs = {key: entry[key] for key in allowed if key in entry}
            if kind in _SEEDED_KINDS:
                kwargs["seed"] = int(
                    np.random.SeedSequence([base_seed, index]).generate_state(1)[0]
                )
            try:
                rules.append(rule_cls(**kwargs))
            except TypeError as exc:
                raise FaultSpecError(f"rules[{index}] ({kind}): {exc}") from exc
        return cls(rules)
