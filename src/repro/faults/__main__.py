"""``python -m repro.faults`` — run a chaos scenario end-to-end.

    python -m repro.faults --list
    python -m repro.faults --scenario flaky-fleet
    python -m repro.faults --scenario ban-hammer --dir /tmp/chaos --users 4000
    python -m repro.faults --scenario-file my_scenario.json --report report.json

Builds a synthetic world, arms the HTTP front end with the scenario's
fault schedule, runs a durable crawl campaign through it (checkpoints
and all), and writes a ``run_report.json`` whose coverage block records
how the fleet survived: retries, bans, dead letters, redrives, and the
estimated edge loss from pages that stayed dead.

Exit status is 0 when the crawl completed (dead letters are survival,
not failure) and 1 when the campaign aborted.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.obs import build_report, get_registry, get_tracer
from repro.obs.report import RUN_REPORT_FILENAME

from .scenarios import get_scenario, load_scenario_file, scenario_names

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="run a scripted fault-injection scenario against a crawl",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--scenario",
        choices=scenario_names(),
        help="named scenario from repro.faults.scenarios",
    )
    source.add_argument(
        "--scenario-file", type=Path, help="JSON scenario document to run"
    )
    source.add_argument(
        "--list", action="store_true", help="list the named scenarios and exit"
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=None,
        help="campaign directory (default: a fresh temp dir)",
    )
    parser.add_argument("--users", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--machines", type=int, default=11)
    parser.add_argument("--max-pages", type=int, default=None)
    parser.add_argument("--retry-budget", type=int, default=None)
    parser.add_argument("--checkpoint-every-pages", type=int, default=500)
    parser.add_argument(
        "--report",
        type=Path,
        default=Path(RUN_REPORT_FILENAME),
        help=f"where to write the run report (default: ./{RUN_REPORT_FILENAME})",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list:
        for name in scenario_names():
            spec = get_scenario(name)
            print(f"{name:16s} {spec.get('description', '')}")
        return 0
    if args.scenario:
        name, spec = args.scenario, get_scenario(args.scenario)
    elif args.scenario_file:
        name, spec = str(args.scenario_file), load_scenario_file(args.scenario_file)
    else:
        print("error: one of --scenario / --scenario-file / --list is required",
              file=sys.stderr)
        return 2

    # Imported here so `--list` stays instant and dependency-light.
    from repro.crawler.lost_edges import estimate_dead_letter_loss
    from repro.store.campaign import CampaignConfig, CrawlCampaign

    directory = (
        args.dir
        if args.dir is not None
        else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    )
    # Backoffs calibrated to the simulated transport's time scale (a
    # request costs ~0.02 virtual s), not to real-world seconds —
    # otherwise one retry wait dwarfs a whole scenario window.
    resilience = {
        "initial_backoff": 0.02,
        "max_backoff": 0.5,
        "breaker_cooldown": 0.25,
        "retry_budget": args.retry_budget,
    }
    config = CampaignConfig(
        n_users=args.users,
        seed=args.seed,
        n_machines=args.machines,
        max_pages=args.max_pages,
        checkpoint_every_pages=args.checkpoint_every_pages,
        faults=dict(spec),
        resilience=resilience,
    )
    registry = get_registry()
    registry.reset()
    get_tracer().reset()
    print(f"chaos scenario {name!r}: {spec.get('description', 'custom scenario')}")
    print(f"campaign directory: {directory}")
    try:
        dataset = CrawlCampaign(directory, config).run(registry=registry)
    except Exception as exc:  # the report should exist even for a lost fleet
        print(f"campaign ABORTED: {exc}", file=sys.stderr)
        report = build_report(
            kind="chaos",
            config={"scenario": name, "faults": spec,
                    "campaign": config.to_json_dict()},
            coverage={"completed": False, "abort": repr(exc)},
        )
        report.write(args.report)
        return 1

    stats = dataset.stats
    loss = estimate_dead_letter_loss(dataset)
    coverage = {
        "completed": True,
        "pages": dataset.n_profiles,
        "edges": dataset.n_edges,
        "virtual_duration": stats.virtual_duration,
        "throttled": stats.throttled,
        "server_errors": stats.server_errors,
        "banned": stats.banned,
        "timeouts": stats.timeouts,
        "slow_responses": stats.slow_responses,
        "parse_errors": stats.parse_errors,
        "dead_lettered": stats.dead_lettered,
        "redriven": stats.redriven,
        "dead_letter_lost_fraction": loss.lost_fraction,
    }
    report = build_report(
        kind="chaos",
        config={"scenario": name, "faults": spec, "campaign": config.to_json_dict()},
        coverage=coverage,
    )
    path = report.write(args.report)
    print(
        f"crawl survived: {dataset.n_profiles} pages, {dataset.n_edges} edges "
        f"in {stats.virtual_duration:.2f} virtual s"
    )
    print(
        f"chaos absorbed: {stats.server_errors} 503s, {stats.banned} bans, "
        f"{stats.timeouts} timeouts, {stats.parse_errors} corrupt pages; "
        f"{stats.redriven} dead letters redriven, {stats.dead_lettered} lost "
        f"({loss.lost_fraction:.4%} est. edge loss)"
    )
    print(f"report: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
