"""Deterministic disk-fault injection for the campaign store.

The network chaos layer (:mod:`repro.faults.schedule`) scripts what the
*service* does to the crawler; this module scripts what the *disk* does
to the store.  A :class:`DiskFaultSchedule` holds virtual-clock-windowed
rules that fire on the store's durability events — journal batch
writes, fsyncs, and atomic publishes of segments and checkpoints — via
the :class:`~repro.store.atomio.StoreIO` seam threaded through
``journal.py``, ``segments.py``, and ``checkpoint.py``.

Rule kinds
----------
``torn_write``
    A write that dies partway: a random prefix of the batch lands, then
    :class:`DiskFaultError` aborts the process path (the classic torn
    journal tail / half-written temp file).
``enospc`` / ``eio``
    ``OSError``-style failures (disk full, medium error) raised before
    any byte lands; ``eio`` also fires on fsync and rename.
``dropped_fsync``
    The fsync silently does nothing.  If the file is later published by
    rename without an intervening successful fsync, a random tail of it
    is cut first — exactly the page-cache loss window the fsync
    discipline in :mod:`repro.store.atomio` exists to close.
``bit_rot``
    Flips one random bit in a file *after* it went durable — sealed
    segments by default; ``targets`` extends it to checkpoints or the
    journal's already-flushed region (``zone`` narrows where in that
    region the flip may land).
``missing_file``
    Unlinks a file after it was published (vanished checkpoint shard;
    with ``targets: ["journal"]``, the journal itself).
``duplicate_segment``
    Copies a freshly sealed segment to the next free shard name — the
    stray-file debris a confused retry loop leaves behind.

Determinism
-----------
Same contract as the network layer: per-rule ``numpy`` generators
seeded via ``SeedSequence([scenario_seed, rule_index])``; every rule
whose window is open and whose op matches draws a **fixed** number of
variates whether or not it fires, so the draw sequence depends only on
the store's op timeline.  ``export_state``/``restore_state`` round-trip
every bit-generator state and ride in crawl checkpoints under the
``disk_faults`` extension key, so repeated crash/resume cycles replay
the same chaos decisions deterministically.
"""

from __future__ import annotations

import copy
import errno
import os
from pathlib import Path
from typing import IO, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.store.atomio import StoreIO

from .schedule import FaultSpecError

__all__ = [
    "BitRot",
    "DiskFaultError",
    "DiskFaultRule",
    "DiskFaultSchedule",
    "DroppedFsync",
    "DuplicateSegment",
    "Enospc",
    "Eio",
    "FaultyStoreIO",
    "MissingFile",
    "TornWrite",
]

#: Targets a published/flushed-path rule may aim at.  ``segment``,
#: ``checkpoint`` and ``manifest`` are publish kinds (see the ``kind``
#: argument the store passes to ``StoreIO.replace``/``published``);
#: ``journal`` attaches to the post-flush hook instead.
_KNOWN_TARGETS = frozenset({"segment", "checkpoint", "manifest", "journal"})


class DiskFaultError(OSError):
    """An injected disk fault (carries the rule kind that fired)."""

    def __init__(self, kind: str, message: str, err: int | None = None):
        super().__init__(err if err is not None else 0, message)
        self.kind = kind


class _Decision:
    """What one rule does to one store op."""

    __slots__ = ("kind", "err", "keep_fraction", "lose_fraction", "rot", "unlink", "duplicate")

    def __init__(
        self,
        kind: str,
        err: int | None = None,
        keep_fraction: float | None = None,
        lose_fraction: float | None = None,
        rot: tuple[float, int] | None = None,
        unlink: bool = False,
        duplicate: bool = False,
    ):
        self.kind = kind
        self.err = err
        self.keep_fraction = keep_fraction
        self.lose_fraction = lose_fraction
        self.rot = rot  # (relative offset in eligible region, bit index)
        self.unlink = unlink
        self.duplicate = duplicate


class DiskFaultRule:
    """Base class: virtual-time window + seeded RNG + op filter."""

    kind = "abstract"
    #: Store ops this rule is consulted on ("write", "fsync", "replace",
    #: "published", "flushed").
    ops: frozenset[str] = frozenset()

    def __init__(self, start: float = 0.0, end: float = float("inf"), seed: int = 0):
        if end < start:
            raise FaultSpecError(f"{self.kind}: window end {end} before start {start}")
        self.start = float(start)
        self.end = float(end)
        self._rng = np.random.default_rng(seed)

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def matches_target(self, target: str) -> bool:
        return True

    def decide(self, op: str, now: float, target: str) -> _Decision | None:
        """Consult the rule for one op; draws a fixed variate count."""
        raise NotImplementedError

    def _chance(self, rate: float) -> bool:
        return bool(self._rng.random() < rate)

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        return {"rng": copy.deepcopy(self._rng.bit_generator.state)}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        if "rng" in state:
            self._rng.bit_generator.state = copy.deepcopy(dict(state["rng"]))


def _rate_in_unit(rate: float, what: str) -> float:
    if not 0.0 <= rate <= 1.0:
        raise FaultSpecError(f"{what} must be in [0, 1], got {rate}")
    return float(rate)


def _targets(targets: Sequence[str] | None, default: tuple[str, ...], kind: str):
    chosen = tuple(targets) if targets is not None else default
    unknown = set(chosen) - _KNOWN_TARGETS
    if unknown:
        raise FaultSpecError(f"{kind}: unknown targets {sorted(unknown)}")
    return frozenset(chosen)


class TornWrite(DiskFaultRule):
    """A batch write that lands a random prefix, then dies."""

    kind = "torn_write"
    ops = frozenset({"write"})

    def __init__(self, start=0.0, end=float("inf"), rate: float = 0.05, seed: int = 0):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "torn_write.rate")

    def decide(self, op, now, target):
        # Two draws per consulted op (hit?, where to tear?) — always
        # both, so the sequence is independent of the hit outcome.
        hit = self._chance(self.rate)
        fraction = float(self._rng.random())
        if not hit:
            return None
        return _Decision(self.kind, keep_fraction=fraction)


class Enospc(DiskFaultRule):
    """The disk is full: writes fail before any byte lands."""

    kind = "enospc"
    ops = frozenset({"write"})

    def __init__(self, start=0.0, end=float("inf"), rate: float = 1.0, seed: int = 0):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "enospc.rate")

    def decide(self, op, now, target):
        if not self._chance(self.rate):
            return None
        return _Decision(self.kind, err=errno.ENOSPC)


class Eio(DiskFaultRule):
    """Medium errors: any write, fsync, or rename may fail with EIO."""

    kind = "eio"
    ops = frozenset({"write", "fsync", "replace"})

    def __init__(self, start=0.0, end=float("inf"), rate: float = 0.05, seed: int = 0):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "eio.rate")

    def decide(self, op, now, target):
        if not self._chance(self.rate):
            return None
        return _Decision(self.kind, err=errno.EIO)


class DroppedFsync(DiskFaultRule):
    """An fsync that silently does nothing (lying drive / page cache)."""

    kind = "dropped_fsync"
    ops = frozenset({"fsync"})

    def __init__(self, start=0.0, end=float("inf"), rate: float = 0.5, seed: int = 0):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "dropped_fsync.rate")

    def decide(self, op, now, target):
        # hit? + how much of the tail the cache would lose — both drawn.
        hit = self._chance(self.rate)
        lose = float(self._rng.random())
        if not hit:
            return None
        return _Decision(self.kind, lose_fraction=lose)


class BitRot(DiskFaultRule):
    """Flip one bit in a file after it became durable."""

    kind = "bit_rot"
    ops = frozenset({"published", "flushed"})

    def __init__(
        self,
        start=0.0,
        end=float("inf"),
        rate: float = 0.1,
        targets: Sequence[str] | None = None,
        zone: Sequence[float] | None = None,
        seed: int = 0,
    ):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "bit_rot.rate")
        self.targets = _targets(targets, ("segment",), self.kind)
        lo, hi = (0.0, 1.0) if zone is None else (float(zone[0]), float(zone[1]))
        if not 0.0 <= lo < hi <= 1.0:
            raise FaultSpecError(f"bit_rot.zone must satisfy 0 <= lo < hi <= 1, got {zone}")
        self.zone = (lo, hi)

    def matches_target(self, target):
        return target in self.targets

    def decide(self, op, now, target):
        hit = self._chance(self.rate)
        rel = float(self._rng.random())
        bit = int(self._rng.integers(8))
        if not hit:
            return None
        lo, hi = self.zone
        return _Decision(self.kind, rot=(lo + rel * (hi - lo), bit))


class MissingFile(DiskFaultRule):
    """A published file vanishes (lost dirent, eager cleanup job)."""

    kind = "missing_file"
    ops = frozenset({"published", "flushed"})

    def __init__(
        self,
        start=0.0,
        end=float("inf"),
        rate: float = 0.25,
        targets: Sequence[str] | None = None,
        seed: int = 0,
    ):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "missing_file.rate")
        self.targets = _targets(targets, ("checkpoint",), self.kind)

    def matches_target(self, target):
        return target in self.targets

    def decide(self, op, now, target):
        if not self._chance(self.rate):
            return None
        return _Decision(self.kind, unlink=True)


class DuplicateSegment(DiskFaultRule):
    """A sealed segment gets cloned to the next free shard name."""

    kind = "duplicate_segment"
    ops = frozenset({"published"})

    def __init__(self, start=0.0, end=float("inf"), rate: float = 0.1, seed: int = 0):
        super().__init__(start, end, seed)
        self.rate = _rate_in_unit(rate, "duplicate_segment.rate")

    def matches_target(self, target):
        return target == "segment"

    def decide(self, op, now, target):
        if not self._chance(self.rate):
            return None
        return _Decision(self.kind, duplicate=True)


#: Registry of rule kinds for scenario documents.
_RULE_KINDS: dict[str, type[DiskFaultRule]] = {
    cls.kind: cls
    for cls in (TornWrite, Enospc, Eio, DroppedFsync, BitRot, MissingFile, DuplicateSegment)
}

#: Constructor parameters scenario documents may set, per kind.
_RULE_PARAMS: dict[str, tuple[str, ...]] = {
    "torn_write": ("start", "end", "rate"),
    "enospc": ("start", "end", "rate"),
    "eio": ("start", "end", "rate"),
    "dropped_fsync": ("start", "end", "rate"),
    "bit_rot": ("start", "end", "rate", "targets", "zone"),
    "missing_file": ("start", "end", "rate", "targets"),
    "duplicate_segment": ("start", "end", "rate"),
}


class DiskFaultSchedule:
    """An ordered, resumable set of disk-fault rules."""

    def __init__(self, rules: Iterable[DiskFaultRule] = ()):
        self.rules = list(rules)
        self._window_start = min((r.start for r in self.rules), default=float("inf"))
        self._window_end = max((r.end for r in self.rules), default=float("-inf"))

    def __len__(self) -> int:
        return len(self.rules)

    def decide(self, op: str, now: float, target: str = "file") -> list[_Decision]:
        """All firing decisions for one store op at virtual ``now``.

        Every matching rule is consulted (fixed draw discipline);
        outside the envelope of all windows the loop is skipped, which
        is the armed-but-quiet fast path the overhead gate measures.
        """
        if now < self._window_start or now >= self._window_end:
            return []
        decisions: list[_Decision] = []
        for rule in self.rules:
            if op not in rule.ops or not rule.active(now):
                continue
            if not rule.matches_target(target):
                continue
            decision = rule.decide(op, now, target)
            if decision is not None:
                decisions.append(decision)
        return decisions

    # -- checkpointing (see repro.store) -------------------------------------

    def export_state(self) -> dict:
        return {"rules": [rule.export_state() for rule in self.rules]}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        states = state.get("rules", [])
        if len(states) != len(self.rules):
            raise FaultSpecError(
                f"state covers {len(states)} rules, schedule has {len(self.rules)}"
            )
        for rule, rule_state in zip(self.rules, states):
            rule.restore_state(rule_state)

    # -- scenario documents --------------------------------------------------

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "DiskFaultSchedule":
        """Build a schedule from a scenario document.

        Same shape as the network layer's::

            {"seed": 31, "rules": [
                {"kind": "torn_write", "start": 0.5, "end": 2.0, "rate": 0.05},
                {"kind": "bit_rot", "start": 1.0, "rate": 0.2,
                 "targets": ["segment", "checkpoint"]},
                ...
            ]}
        """
        if not isinstance(spec, Mapping):
            raise FaultSpecError(f"disk scenario must be a mapping, got {type(spec).__name__}")
        base_seed = int(spec.get("seed", 0))
        rules_spec = spec.get("rules")
        if not isinstance(rules_spec, (list, tuple)):
            raise FaultSpecError("disk scenario needs a 'rules' list")
        rules: list[DiskFaultRule] = []
        for index, entry in enumerate(rules_spec):
            if not isinstance(entry, Mapping):
                raise FaultSpecError(f"rules[{index}] must be a mapping")
            kind = entry.get("kind")
            rule_cls = _RULE_KINDS.get(kind)
            if rule_cls is None:
                raise FaultSpecError(
                    f"rules[{index}]: unknown disk fault kind {kind!r} "
                    f"(known: {sorted(_RULE_KINDS)})"
                )
            allowed = _RULE_PARAMS[kind]
            unknown = set(entry) - set(allowed) - {"kind"}
            if unknown:
                raise FaultSpecError(
                    f"rules[{index}] ({kind}): unknown parameters {sorted(unknown)}"
                )
            kwargs = {key: entry[key] for key in allowed if key in entry}
            kwargs["seed"] = int(
                np.random.SeedSequence([base_seed, index]).generate_state(1)[0]
            )
            try:
                rules.append(rule_cls(**kwargs))
            except TypeError as exc:
                raise FaultSpecError(f"rules[{index}] ({kind}): {exc}") from exc
        return cls(rules)


def _flip_bit(path: Path, offset: int, bit: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            return
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << bit)]))


class FaultyStoreIO(StoreIO):
    """A :class:`StoreIO` that injects a :class:`DiskFaultSchedule`.

    The clock arrives via :meth:`bind_clock` (the store forwards the
    crawl's virtual clock before any routed op runs); until then ops
    evaluate at t=0, which is before every sane scenario window.
    """

    armed = True

    def __init__(self, schedule: DiskFaultSchedule, clock=None, registry=None):
        self.schedule = schedule
        self._now = clock if clock is not None else (lambda: 0.0)
        #: Live files whose last fsync was dropped: path -> lose_fraction.
        self._unsynced: dict[str, float] = {}
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        self._m_injected = registry.counter(
            "store.disk_faults_injected", "Disk faults injected, by rule kind",
            labels=("kind",),
        )

    def bind_clock(self, clock) -> None:
        self._now = clock.now if hasattr(clock, "now") else clock

    def _raise_if_error(self, decisions: list[_Decision]) -> None:
        for decision in decisions:
            if decision.err is not None:
                self._m_injected.inc(kind=decision.kind)
                raise DiskFaultError(
                    decision.kind,
                    f"injected {decision.kind}",
                    err=decision.err,
                )

    # -- routed ops ----------------------------------------------------------

    def write(self, handle: IO[bytes], data: bytes) -> None:
        decisions = self.schedule.decide("write", self._now())
        self._raise_if_error(decisions)
        for decision in decisions:
            if decision.keep_fraction is not None and len(data) > 1:
                keep = min(len(data) - 1, int(decision.keep_fraction * len(data)))
                handle.write(data[:keep])
                handle.flush()
                self._m_injected.inc(kind=decision.kind)
                raise DiskFaultError(decision.kind, f"torn write after {keep} bytes")
        handle.write(data)

    def fsync(self, handle: IO[bytes]) -> None:
        decisions = self.schedule.decide("fsync", self._now())
        self._raise_if_error(decisions)
        handle.flush()
        for decision in decisions:
            if decision.lose_fraction is not None:
                # The fsync lies: bytes stay in the (simulated) cache.
                self._unsynced[handle.name] = decision.lose_fraction
                self._m_injected.inc(kind=decision.kind)
                return
        os.fsync(handle.fileno())
        self._unsynced.pop(handle.name, None)

    def replace(self, src: str | Path, dst: str | Path, kind: str = "file") -> None:
        decisions = self.schedule.decide("replace", self._now(), target=kind)
        self._raise_if_error(decisions)
        lose = self._unsynced.pop(str(src), None)
        if lose is not None:
            # Publishing a never-synced file: the rename lands but the
            # cached tail never hit the platter — cut it.
            size = os.path.getsize(src)
            lost = max(1, int(size * lose))
            os.truncate(src, max(0, size - lost))
        os.replace(src, dst)

    def published(self, path: Path, kind: str = "file") -> None:
        path = Path(path)
        decisions = self.schedule.decide("published", self._now(), target=kind)
        for decision in decisions:
            if decision.unlink:
                path.unlink(missing_ok=True)
                self._m_injected.inc(kind=decision.kind)
                return  # nothing left to rot or duplicate
            if decision.rot is not None and path.exists():
                size = os.path.getsize(path)
                if size:
                    rel, bit = decision.rot
                    _flip_bit(path, min(size - 1, int(rel * size)), bit)
                    self._m_injected.inc(kind=decision.kind)
            if decision.duplicate and kind == "segment" and path.exists():
                clone = self._next_segment_name(path)
                clone.write_bytes(path.read_bytes())
                self._m_injected.inc(kind=decision.kind)

    def flushed(self, handle: IO[bytes], path: Path, durable_end: int) -> None:
        decisions = self.schedule.decide("flushed", self._now(), target="journal")
        for decision in decisions:
            if decision.unlink:
                Path(path).unlink(missing_ok=True)
                self._m_injected.inc(kind=decision.kind)
                return
            if decision.rot is not None:
                # Rot only already-durable history, never the batch that
                # just landed (that is torn_write's territory).
                from repro.store.journal import HEADER_SIZE

                span = durable_end - HEADER_SIZE
                if span > 0:
                    rel, bit = decision.rot
                    offset = HEADER_SIZE + min(span - 1, int(rel * span))
                    handle.flush()
                    _flip_bit(Path(path), offset, bit)
                    self._m_injected.inc(kind=decision.kind)

    @staticmethod
    def _next_segment_name(path: Path) -> Path:
        from repro.store.segments import iter_segment_paths

        existing = iter_segment_paths(path.parent)
        last = int(existing[-1].name[4:10]) if existing else 0
        return path.parent / f"seg-{last + 1:06d}.edges"
