"""Occupation models: ordinary users and per-country celebrity profiles.

Table 5 of the paper lists the exact occupation-code sequence of the ten
most-followed users in each of the top ten countries. Those sequences are
embedded verbatim and assigned to the synthetic per-country celebrities,
so the Table 5 reproduction (including the Jaccard similarity against the
US) is exact by construction *once the analysis pipeline correctly ranks
users by crawled in-degree* — which is the part under test.
"""

from __future__ import annotations

import numpy as np

from repro.platform.models import Occupation

#: Table 5 rows: occupation codes of the top-10 users per country.
CELEBRITY_OCCUPATIONS: dict[str, tuple[Occupation, ...]] = {
    "US": (Occupation.COMEDIAN, Occupation.MUSICIAN, Occupation.IT,
           Occupation.MUSICIAN, Occupation.IT, Occupation.MUSICIAN,
           Occupation.BUSINESSMAN, Occupation.IT, Occupation.MODEL,
           Occupation.ACTOR),
    "IN": (Occupation.MUSICIAN, Occupation.SOCIALITE, Occupation.IT,
           Occupation.MUSICIAN, Occupation.MODEL, Occupation.MODEL,
           Occupation.IT, Occupation.BUSINESSMAN, Occupation.IT,
           Occupation.MUSICIAN),
    "BR": (Occupation.COMEDIAN, Occupation.TV_HOST, Occupation.JOURNALIST,
           Occupation.WRITER, Occupation.ARTIST, Occupation.BLOGGER,
           Occupation.BLOGGER, Occupation.COMEDIAN, Occupation.MUSICIAN,
           Occupation.COMEDIAN),
    "GB": (Occupation.BUSINESSMAN, Occupation.MUSICIAN, Occupation.IT,
           Occupation.IT, Occupation.MUSICIAN, Occupation.MUSICIAN,
           Occupation.IT, Occupation.MODEL, Occupation.SOCIALITE,
           Occupation.IT),
    "CA": (Occupation.IT, Occupation.IT, Occupation.MUSICIAN,
           Occupation.COMEDIAN, Occupation.BUSINESSMAN, Occupation.ACTOR,
           Occupation.IT, Occupation.MUSICIAN, Occupation.COMEDIAN,
           Occupation.ACTOR),
    "DE": (Occupation.BLOGGER, Occupation.IT, Occupation.IT,
           Occupation.JOURNALIST, Occupation.BLOGGER, Occupation.IT,
           Occupation.JOURNALIST, Occupation.ECONOMIST, Occupation.MUSICIAN,
           Occupation.BLOGGER),
    "ID": (Occupation.MUSICIAN, Occupation.IT, Occupation.SOCIALITE,
           Occupation.MODEL, Occupation.MODEL, Occupation.IT,
           Occupation.MUSICIAN, Occupation.ECONOMIST, Occupation.PHOTOGRAPHER,
           Occupation.JOURNALIST),
    "MX": (Occupation.MUSICIAN, Occupation.MUSICIAN, Occupation.MUSICIAN,
           Occupation.IT, Occupation.MUSICIAN, Occupation.BLOGGER,
           Occupation.BLOGGER, Occupation.MUSICIAN, Occupation.ACTOR,
           Occupation.JOURNALIST),
    "IT": (Occupation.JOURNALIST, Occupation.JOURNALIST, Occupation.IT,
           Occupation.IT, Occupation.JOURNALIST, Occupation.IT,
           Occupation.JOURNALIST, Occupation.MUSICIAN, Occupation.MUSICIAN,
           Occupation.IT),
    "ES": (Occupation.JOURNALIST, Occupation.POLITICIAN, Occupation.POLITICIAN,
           Occupation.IT, Occupation.MUSICIAN, Occupation.MUSICIAN,
           Occupation.IT, Occupation.MUSICIAN, Occupation.POLITICIAN,
           Occupation.IT),
}

#: Occupation mix of ordinary (non-celebrity) users who share the field.
ORDINARY_OCCUPATIONS: dict[Occupation, float] = {
    Occupation.IT: 0.16,
    Occupation.ENGINEER: 0.12,
    Occupation.STUDENT: 0.22,
    Occupation.TEACHER: 0.07,
    Occupation.BUSINESSMAN: 0.07,
    Occupation.MUSICIAN: 0.05,
    Occupation.PHOTOGRAPHER: 0.05,
    Occupation.WRITER: 0.04,
    Occupation.JOURNALIST: 0.03,
    Occupation.BLOGGER: 0.04,
    Occupation.ARTIST: 0.04,
    Occupation.ACTOR: 0.02,
    Occupation.MODEL: 0.02,
    Occupation.OTHER: 0.07,
}


class OccupationSampler:
    """Samples ordinary-user occupations from the generic mix."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._codes = list(ORDINARY_OCCUPATIONS)
        probs = np.array([ORDINARY_OCCUPATIONS[c] for c in self._codes])
        self._probs = probs / probs.sum()

    def sample(self, n: int) -> list[Occupation]:
        idx = self._rng.choice(len(self._codes), size=n, p=self._probs)
        return [self._codes[i] for i in idx]


def jaccard_index(a: set, b: set) -> float:
    """Jaccard similarity |a ∩ b| / |a ∪ b| (Table 5's last column)."""
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
