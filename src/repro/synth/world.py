"""Assembly of a complete synthetic Google+ world.

:class:`SyntheticWorld` ties the generator stages together: population →
profiles → social graph → a populated :class:`GooglePlusService` behind a
rate-limited HTTP front end. It keeps the ground truth around so tests
and ablation benches can compare crawled measurements against the truth.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.obs import trace
from repro.platform.columnar import (
    ColumnarGooglePlusService,
    ColumnarProfileStore,
    ProfilesView,
)
from repro.platform.gcpause import gc_paused
from repro.platform.http import HttpFrontend, SimulatedClock
from repro.platform.models import UserProfile
from repro.platform.service import GooglePlusService

from .config import WorldConfig
from .fastgen import generate_graph_fast
from .fastprofiles import build_profile_columns_fast, build_profiles_fast
from .graphgen import GeneratedGraph, generate_graph
from .profiles import Population, build_profiles, generate_population

#: Circle labels used when planting social links, to exercise named circles.
_CIRCLE_LABELS = ("friends", "family", "colleagues", "following")


@dataclass
class SyntheticWorld:
    """A fully assembled world: service + front end + ground truth."""

    config: WorldConfig
    population: Population
    #: ``{user_id: profile}`` ground truth — a plain dict of
    #: :class:`UserProfile` under the dict store, a lazy
    #: :class:`~repro.platform.columnar.ProfilesView` under the columnar
    #: store (same mapping protocol, no object per user).
    profiles: dict[int, UserProfile] | ProfilesView
    graph: GeneratedGraph
    service: GooglePlusService
    clock: SimulatedClock

    def frontend(
        self,
        rate_per_ip: float = 200.0,
        burst: float = 400.0,
        error_rate: float = 0.0,
        faults=None,
    ) -> HttpFrontend:
        """A fresh HTTP front end over this world's service.

        ``faults`` is an optional :class:`repro.faults.FaultSchedule` of
        scripted failure windows (chaos campaigns).
        """
        return HttpFrontend(
            self.service.handle_path,
            clock=self.clock,
            rate_per_ip=rate_per_ip,
            burst=burst,
            error_rate=error_rate,
            seed=self.config.seed + 101,
            faults=faults,
        )

    @property
    def n_users(self) -> int:
        return self.population.n

    def true_edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Ground-truth (sources, targets) arrays of the social graph."""
        return self.graph.sources, self.graph.targets

    def seed_user_id(self) -> int:
        """The crawl seed: the rank-2 global celebrity (Mark Zuckerberg).

        The paper began its BFS at Mark Zuckerberg's profile; the world
        guarantees a rank-2 global celebrity exists.
        """
        for user_id, spec in self.population.celebrity_spec.items():
            if spec.global_rank == 2:
                return user_id
        raise RuntimeError("world has no rank-2 global celebrity")


def _populate_service_columnar(
    world_config: WorldConfig,
    population: Population,
    profile_store: ColumnarProfileStore,
    graph: GeneratedGraph,
    rng: np.random.Generator,
) -> ColumnarGooglePlusService:
    """Columnar counterpart of :func:`_populate_service`.

    Registration and edge planting collapse into one bulk ingest.  The
    RNG draws of the dict path (inviter rolls, circle rolls) are kept in
    the exact same order, so a seed builds the same world under either
    store; the field-trial inviter validation is skipped because the
    generator's inviters are valid by construction (each user is invited
    by an earlier trial user).
    """
    service = ColumnarGooglePlusService(
        open_signup=True,
        circle_display_limit=world_config.circle_display_limit,
    )
    n = population.n
    trial_count = max(1, int(round(world_config.field_trial_fraction * n)))
    rng.integers(0, trial_count, size=n)  # the dict path's inviter rolls
    circle_rolls = rng.integers(0, len(_CIRCLE_LABELS), size=graph.n_edges)
    # Narrow before ingest: holding the int64 draw alongside the CSR
    # build costs O(edges) for nothing.
    circle_rolls = circle_rolls.astype(np.uint8)
    service.ingest_world(
        profile_store,
        graph.sources,
        graph.targets,
        _CIRCLE_LABELS,
        circle_rolls,
        exempt_ids=population.celebrity_spec,
    )
    return service


def _populate_service(
    world_config: WorldConfig,
    population: Population,
    profiles: dict[int, UserProfile],
    graph: GeneratedGraph,
    rng: np.random.Generator,
) -> GooglePlusService:
    """Register accounts (field trial then open signup) and plant edges."""
    service = GooglePlusService(
        open_signup=True,
        circle_display_limit=world_config.circle_display_limit,
    )
    n = population.n
    trial_count = max(1, int(round(world_config.field_trial_fraction * n)))
    exempt_ids = population.celebrity_spec
    # Bootstrap account, then invitation-only field trial.
    service.register(profiles[0], exempt_from_circle_limit=population.is_celebrity(0))
    service.open_signup = False
    inviter_rolls = rng.integers(0, trial_count, size=n)
    inviters = (inviter_rolls[1:trial_count] % np.arange(1, trial_count)).tolist()
    service.register_bulk(
        (profiles[user_id] for user_id in range(1, trial_count)),
        exempt_ids=exempt_ids,
        invited_by=inviters,
    )
    # September 20th, 2011: open signup.
    service.enable_open_signup()
    service.register_bulk(
        (profiles[user_id] for user_id in range(trial_count, n)),
        exempt_ids=exempt_ids,
    )
    circle_rolls = rng.integers(0, len(_CIRCLE_LABELS), size=graph.n_edges)
    # Bulk ingest (both engines): state-identical to the per-edge
    # add_to_circle loop, minus 400k+ per-call validations.
    service.add_edges_bulk(
        graph.sources,
        graph.targets,
        circle_index=(_CIRCLE_LABELS, circle_rolls),
    )
    return service


def build_world(config: WorldConfig | None = None) -> SyntheticWorld:
    """Generate a complete world from a config (or the calibrated default)."""
    config = config if config is not None else WorldConfig()
    rng = np.random.default_rng(config.seed)
    fast = config.engine == "fast"
    columnar = config.store == "columnar"
    # One GC pause across the whole fast build: the stage-local pauses
    # nest inside it (gc_paused is re-entrant), so the collector sweeps
    # the finished world once instead of after every stage.
    pause = gc_paused() if fast else nullcontext()
    with trace.span(
        "synth.build_world",
        users=config.n_users,
        engine=config.engine,
        store=config.store,
    ), pause:
        with trace.span("synth.population"):
            population = generate_population(config, rng)
        with trace.span("synth.profiles"):
            if fast and columnar:
                # The memory-diet path: columns assembled directly, no
                # UserProfile object ever exists for the base world.
                profile_store = build_profile_columns_fast(population, config, rng)
            elif fast:
                profiles = build_profiles_fast(population, config, rng)
            else:
                profiles = build_profiles(population, config, rng)
                if columnar:
                    profile_store = ColumnarProfileStore.from_profiles(profiles)
        with trace.span("synth.graphgen"):
            if fast:
                graph = generate_graph_fast(population, config.graph, rng)
            else:
                graph = generate_graph(population, config.graph, rng)
        with trace.span("synth.service"):
            if columnar:
                service = _populate_service_columnar(
                    config, population, profile_store, graph, rng
                )
            else:
                service = _populate_service(config, population, profiles, graph, rng)
    return SyntheticWorld(
        config=config,
        population=population,
        profiles=ProfilesView(service) if columnar else profiles,
        graph=graph,
        service=service,
        clock=SimulatedClock(),
    )
