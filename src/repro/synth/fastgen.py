"""Vectorized world-generation engine: round-batched graph growth.

:func:`generate_graph_fast` produces the same *calibrated* graph family
as :func:`repro.synth.graphgen.generate_graph` — preferential attachment
with celebrity seeding, country mixing rows, gravity city homophily,
triadic closure, damped follow-back, and the 5000-contact cap — at a
fraction of the cost. Where the reference engine pays one Python call
per edge (`add_edge` / `maybe_followback` / `pick_from_pool`) and keeps
token-duplication lists that materialise one Python int per attachment
unit, the fast engine:

* keeps **incremental weight arrays** (:class:`IncrementalPools`): one
  float per (user, pool layer), bumped in O(1) per received edge, with
  per-pool cumulative tables rebuilt lazily — only when a pool is both
  stale and actually sampled;
* draws each growth round's decisions as **whole-round array ops** —
  country mixing rows, gravity city picks (row-wise ``searchsorted``
  over the stacked cumulative kernels), pool candidate picks, triadic
  hops (gathers from a preallocated **wish buffer** CSR of accepted
  forward edges), duplicate detection (bulk hash-set probes of integer
  edge keys), and follow-back acceptances — there is no per-edge Python
  loop anywhere in the growth process.

The two engines are *statistically* equivalent, not bitwise: the fast
engine has its own RNG draw discipline (documented in ``docs/synth.md``
together with the tolerance table of the calibration acceptance suite).
The deliberate behavioural deviations, all documented there:

* each decision gets its **own roll** — the reference engine reuses
  ``city_rolls[slot]`` for both the triadic second hop and the gravity
  city pick (kept there because changing it would invalidate goldens);
* rounds are **batched**: attachment weights, in-degrees and follow-back
  probabilities update at round granularity instead of per edge;
* triadic closure samples both hops from **forward (wish) edges only**;
  follow-back edges still shape in-degree, attachment weight and the
  contact cap, but are invisible to the two-hop walk;
* the returned edge arrays are **grouped by source** (stable within a
  user), not interleaved in acceptance order.

Determinism: every draw comes from the caller's ``np.random.Generator``
in a fixed order, and no salted ``hash()`` or wall-clock input is used,
so equal seeds give bit-identical edge arrays across runs *and* across
processes (asserted by tests).
"""

from __future__ import annotations

import numpy as np

from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.platform.gcpause import gc_paused

from .cities import build_gazetteer
from .config import GraphGenConfig
from .graphgen import GeneratedGraph, _GravityKernel, _sample_out_degrees
from .profiles import Population


#: Rounds with at least this many active users run singly (exactly one
#: stub per user per round, as the reference engine does), keeping
#: attachment-weight updates at per-round granularity where most of the
#: graph's mass attaches.
_STUB_BATCH = 8192

#: Target stubs per *coalesced* batch for rounds smaller than
#: ``_STUB_BATCH``: the long celebrity tail (up to ``2 * out_degree_cap``
#: rounds of a handful of users) collapses into a few dozen batches.
_TAIL_BATCH = 32768


class IncrementalPools:
    """Grouped incremental cumulative-weight sampler.

    Members (identified by their index in the constructor arrays) are
    partitioned into groups; each group's weights occupy one contiguous
    slice of a single array. This gives the three operations the growth
    loop needs:

    * :meth:`add_weights` — O(1) amortised per bump (``np.add.at`` on the
      flat array), marking only the touched groups stale;
    * :meth:`pick` — weight-proportional sampling of many members of one
      group at once, via ``searchsorted`` on the group's cumulative table;
    * lazy rebuilds — a group's cumulative table is recomputed only when
      it is both stale and sampled (``rebuilds`` counts them).

    Weights must stay non-negative; mutators raise on updates that would
    take any weight below zero.
    """

    def __init__(self, group_ids: np.ndarray, weights: np.ndarray):
        group_ids = np.asarray(group_ids, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if group_ids.shape != weights.shape or group_ids.ndim != 1:
            raise ValueError("group_ids and weights must be equal-length 1-D arrays")
        if len(group_ids) and group_ids.min() < 0:
            raise ValueError("group ids must be non-negative")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        self.n_groups = int(group_ids.max()) + 1 if len(group_ids) else 0
        #: member index per slot, grouped: ``order[starts[g]:stops[g]]``
        #: lists group ``g``'s members.
        self.order = np.argsort(group_ids, kind="stable")
        counts = np.bincount(group_ids, minlength=self.n_groups)
        self.stops = np.cumsum(counts)
        self.starts = self.stops - counts
        self.group_of = group_ids
        self.slot_of = np.empty(len(group_ids), dtype=np.int64)
        self.slot_of[self.order] = np.arange(len(group_ids))
        self._weights = weights[self.order].copy()
        self._cums: list[np.ndarray | None] = [None] * self.n_groups
        #: number of lazy cumulative-table rebuilds performed so far.
        self.rebuilds = 0

    def group_size(self, group: int) -> int:
        return int(self.stops[group] - self.starts[group])

    def group_weights(self, group: int) -> np.ndarray:
        """Copy of one group's weights, in member order (for inspection)."""
        return self._weights[self.starts[group]:self.stops[group]].copy()

    def weight_of(self, member: int) -> float:
        return float(self._weights[self.slot_of[member]])

    def add_weight(self, member: int, amount: float = 1.0) -> None:
        """Bump one member's weight; O(1), invalidates only its group."""
        slot = self.slot_of[member]
        if self._weights[slot] + amount < 0:
            raise ValueError("weight update would go negative")
        self._weights[slot] += amount
        self._cums[self.group_of[member]] = None

    def add_weights(self, members: np.ndarray, amount: float = 1.0) -> None:
        """Bump many members at once (repeats accumulate)."""
        if len(members) == 0:
            return
        slots = self.slot_of[members]
        np.add.at(self._weights, slots, amount)
        if (self._weights[slots] < 0).any():
            np.add.at(self._weights, slots, -amount)
            raise ValueError("weight update would go negative")
        for group in np.unique(self.group_of[members]).tolist():
            self._cums[group] = None

    def cumulative(self, group: int) -> np.ndarray:
        """The group's cumulative weight table, rebuilt lazily."""
        cum = self._cums[group]
        if cum is None:
            cum = self._weights[self.starts[group]:self.stops[group]].cumsum()
            self._cums[group] = cum
            self.rebuilds += 1
        return cum

    def pick(self, group: int, rolls: np.ndarray) -> np.ndarray:
        """Weight-proportional member picks for uniform rolls in [0, 1)."""
        cum = self.cumulative(group)
        if len(cum) == 0 or cum[-1] <= 0:
            raise ValueError(f"group {group} has no samplable weight")
        idx = cum.searchsorted(rolls * cum[-1], side="right")
        return self.order[self.starts[group] + np.minimum(idx, len(cum) - 1)]

    def pick_scalar(self, group: int, roll: float) -> int:
        """Single weight-proportional pick (the collision-retry fallback)."""
        cum = self.cumulative(group)
        idx = min(int(cum.searchsorted(roll * cum[-1], side="right")), len(cum) - 1)
        return int(self.order[self.starts[group] + idx])


class _KeySet:
    """Vectorized open-addressing hash set of non-negative int64 keys.

    Purpose-built for the duplicate-edge filter: ``contains`` probes and
    ``add`` inserts whole arrays with a handful of numpy ops per probe
    round (Fibonacci hashing + linear probing), instead of one Python
    hash-set operation per key. Empty slots hold -1; the table doubles
    when load reaches 1/2. ``add`` requires keys unique within the call
    (the growth loop always inserts freshly deduplicated batches).
    """

    _MULT = np.uint64(0x9E3779B97F4A7C15)

    def __init__(self, expected: int = 1024):
        bits = max(10, int(np.ceil(np.log2(max(2 * expected, 2)))))
        self._bits = bits
        self._table = np.full(1 << bits, -1, dtype=np.int64)
        self._count = 0

    def _home(self, keys: np.ndarray) -> np.ndarray:
        h = keys.astype(np.uint64) * self._MULT
        return (h >> np.uint64(64 - self._bits)).astype(np.int64)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask for an array of keys."""
        table = self._table
        mask = len(table) - 1
        slot = self._home(keys)
        out = np.zeros(len(keys), dtype=bool)
        live = np.arange(len(keys))
        while len(live):
            found = table[slot]
            hit = found == keys[live]
            out[live[hit]] = True
            probing = ~hit & (found != -1)
            live = live[probing]
            slot = (slot[probing] + 1) & mask
        return out

    def add(self, keys: np.ndarray) -> None:
        """Insert keys (unique within the call; duplicates of stored
        keys are ignored)."""
        if self._count + len(keys) > len(self._table) // 2:
            self._grow(self._count + len(keys))
        table = self._table
        mask = len(table) - 1
        slot = self._home(keys)
        live = np.arange(len(keys))
        while len(live):
            found = table[slot]
            free = found == -1
            # Claim empty slots; colliding writers are detected below
            # (the last write wins) and retry at the next slot.
            cand_slots = slot[free]
            cand_live = live[free]
            table[cand_slots] = keys[cand_live]
            won = table[slot] == keys[live]
            self._count += int(np.count_nonzero(free & won))
            settled = won | (found == keys[live])
            live = live[~settled]
            slot = (slot[~settled] + 1) & mask
        return None

    def _grow(self, need: int) -> None:
        stored = self._table[self._table != -1]
        while (1 << self._bits) // 2 < need:
            self._bits += 1
        self._table = np.full(1 << self._bits, -1, dtype=np.int64)
        self._count = 0
        if len(stored):
            self.add(stored)


def _metrics():
    registry = get_registry()
    return {
        "rounds": registry.counter(
            "synth.gen_rounds", "growth rounds executed by the fast engine"
        ),
        "batches": registry.counter(
            "synth.gen_round_batches",
            "coalesced round batches executed by the fast engine",
        ),
        "stubs": registry.counter(
            "synth.gen_stubs", "edge stubs attempted by the fast engine"
        ),
        "edges": registry.counter(
            "synth.gen_edges", "edges added by the fast engine", labels=("kind",)
        ),
        "retries": registry.counter(
            "synth.gen_retry_picks",
            "scalar fallback re-picks after collision/self-loop/duplicate",
        ),
        "rebuilds": registry.counter(
            "synth.pool_rebuilds",
            "lazy cumulative-table rebuilds, by pool layer",
            labels=("layer",),
        ),
        "edges_per_round": registry.gauge(
            "synth.gen_edges_per_round", "mean edges per round of the last fast run"
        ),
        "retry_fraction": registry.gauge(
            "synth.gen_retry_fraction",
            "scalar-fallback re-picks per stub of the last fast run",
        ),
    }


def generate_graph_fast(
    population: Population,
    config: GraphGenConfig,
    rng: np.random.Generator,
) -> GeneratedGraph:
    """Run the vectorized growth process and return the directed edge list.

    Drop-in alternative to :func:`repro.synth.graphgen.generate_graph`
    for the same ``(population, config)``; selected by
    ``WorldConfig(engine="fast")``.
    """
    with gc_paused():
        return _generate_graph_fast(population, config, rng)


def _generate_graph_fast(
    population: Population,
    config: GraphGenConfig,
    rng: np.random.Generator,
) -> GeneratedGraph:
    n = population.n
    metrics = _metrics()
    with trace.span("fastgen.setup", users=n):
        out_wish = _sample_out_degrees(population, config, rng)

        codes = list(population.countries)
        code_index = {code: i for i, code in enumerate(codes)}
        n_countries = len(codes)
        country_idx = np.fromiter(
            (code_index[c] for c in population.country_codes), np.int64, count=n
        )
        city_idx = population.city_indices.astype(np.int64)

        domesticity = np.array(
            [population.countries[c].domesticity for c in codes]
        )
        us_flux = np.array(
            [population.countries[c].us_flux if c != "US" else 0.0 for c in codes]
        )
        shares = np.array([population.countries[c].gplus_share for c in codes])
        share_cum = np.cumsum(shares / shares.sum())
        us_i = code_index.get("US", 0)

        # Pool layers. City pools are keyed ci * stride + city so both
        # layers live in one IncrementalPools each; empty city groups
        # (gravity may target a city with no residents) fall back to the
        # country pool, as in the reference engine.
        init_weights = config.base_attachment_tokens + np.round(
            population.celebrity_weight
        )
        country_pools = IncrementalPools(country_idx, init_weights)
        stride = int(city_idx.max()) + 1 if n else 1
        city_gid = country_idx * stride + city_idx
        city_pools = IncrementalPools(city_gid, init_weights)
        city_sizes = np.zeros(city_pools.n_groups, dtype=np.int64)
        np.add.at(city_sizes, city_gid, 1)

        grav_cum: dict[int, np.ndarray] | None = None
        if config.geo_homophily:
            kernel = _GravityKernel(config)
            gazetteer = build_gazetteer()
            grav_cum = {
                code_index[code]: kernel._cum[code]
                for code in gazetteer
                if code in code_index
            }

        followback = population.followback
        celebrity = population.celebrity_weight > 0
        cap = config.out_degree_cap

    # Global duplicate-edge filter: one int key u * n + v per edge in a
    # vectorized open-addressing hash set (:class:`_KeySet`), replacing
    # the reference's per-user member sets. Membership and insertion are
    # whole-array probes — a handful of numpy ops per batch instead of
    # one Python hash operation per key. Inserted keys = accepted edges:
    # forward (≤ the wish total) plus follow-backs (~half of forward at
    # the calibrated reciprocity), so 1.5× the wish total covers the
    # insert load with margin; _KeySet doubles that for the table.
    seen = _KeySet(expected=int(out_wish.sum() * 1.5) + 1024)
    seen_mask = seen.contains

    # Wish-buffer CSR: per-user slices of one flat array hold each user's
    # accepted *forward* (wish) edges, preallocated from out_wish, filled
    # as rounds accept edges. Triadic closure samples both hops from this
    # buffer with pure array gathers. Follow-back edges are not written
    # here (their count is not known up front), so they are invisible to
    # triadic hop sampling — a documented deviation from the reference
    # engine, revalidated by the calibration acceptance suite.
    # User ids fit int32 at any supported scale; the wish buffer and the
    # accepted-edge chunks are the O(edges) resident arrays, so halving
    # their width halves the growth loop's standing footprint (keys and
    # arithmetic stay int64 — only storage narrows).
    edge_dtype = np.int32 if n < 2**31 else np.int64
    off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_wish, out=off[1:])
    buf = np.zeros(int(off[-1]), dtype=edge_dtype)
    fill = np.zeros(n, dtype=np.int64)

    out_len = np.zeros(n, dtype=np.int64)
    in_degree = np.zeros(n, dtype=np.int64)
    chunk_src: list[np.ndarray] = []
    chunk_dst: list[np.ndarray] = []

    active = np.argsort(-out_wish)  # stable processing order, heaviest first
    wish_desc = out_wish[active]
    max_rounds = int(out_wish.max()) if n else 0
    rounds_run = 0
    batches_run = 0
    stubs = 0
    retries = 0
    edges_forward = 0
    edges_followback = 0

    with trace.span("fastgen.growth_rounds", rounds=max_rounds):
        round_index = 0
        while round_index < max_rounds:
            # active is sorted by descending wish, so this round's users
            # are the prefix still wishing for more than round_index edges.
            k = int(np.searchsorted(-wish_desc, -round_index, side="left"))
            if k == 0:
                break
            # Late rounds shrink to a handful of heavy users (celebrities
            # whitelisted past the cap); running them one round at a time
            # would pay the fixed per-round cost thousands of times for a
            # trickle of stubs. Rounds with at least _STUB_BATCH active
            # users always run singly (weight updates stay per-round where
            # the bulk of the mass attaches); smaller rounds are coalesced
            # until the batch carries ~_TAIL_BATCH stubs, so the celebrity
            # tail costs a few dozen batches instead of thousands.
            if k >= _STUB_BATCH:
                span_rounds = 1
            else:
                span_rounds = min(max(1, _TAIL_BATCH // k), max_rounds - round_index)
            if span_rounds == 1:
                users = active[:k]
            else:
                per_user = np.minimum(wish_desc[:k] - round_index, span_rounds)
                users = np.repeat(active[:k], per_user)
            round_index += span_rounds
            rounds_run += span_rounds
            batches_run += 1
            k = len(users)
            stubs += k
            # Fixed per-round draw order; every decision owns its roll
            # (unlike the reference engine's city_rolls reuse).
            triadic_rolls = rng.random(k)
            country_rolls = rng.random(k)
            city_rolls = rng.random(k)
            pick_rolls = rng.random(k)
            global_rolls = rng.random(k)
            tri_v_rolls = rng.random(k)
            tri_w_rolls = rng.random(k)

            targets = np.full(k, -1, dtype=np.int64)
            # Pool key per slot for the collision-retry fallback:
            # [0, n_countries) = country pool, >= n_countries = city pool
            # shifted by n_countries, -1 = triadic pick (no pool).
            slot_pool = np.full(k, -1, dtype=np.int64)

            # -- triadic closure: follow a followee of a followee ----------
            # Both hops are array gathers from the wish buffer. An invalid
            # pick (no second hop, self-loop, or an edge that already
            # exists) falls through to the country/pool path, as in the
            # reference engine.
            tri_slots = np.flatnonzero(
                (triadic_rolls < config.triadic_prob) & (fill[users] > 0)
            )
            if len(tri_slots):
                tu = users[tri_slots]
                hop1 = (tri_v_rolls[tri_slots] * fill[tu]).astype(np.int64)
                v = buf[off[tu] + hop1]
                has_hop2 = fill[v] > 0
                sl2 = tri_slots[has_hop2]
                v2 = v[has_hop2]
                hop2 = (tri_w_rolls[sl2] * fill[v2]).astype(np.int64)
                w = buf[off[v2] + hop2]
                u2 = users[sl2]
                good = (w != u2) & ~seen_mask(u2 * n + w)
                targets[sl2[good]] = w[good]

            # -- country mixing + gravity city + pool picks (vectorized) ---
            need = np.flatnonzero(targets < 0)
            if len(need):
                nu = users[need]
                nci = country_idx[nu]
                roll = country_rolls[need]
                dom = domesticity[nci]
                target_ci = np.where(
                    roll < dom,
                    nci,
                    np.where(
                        roll < dom + us_flux[nci],
                        us_i,
                        np.searchsorted(share_cum, global_rolls[need]),
                    ),
                )
                pool_key = target_ci.copy()  # default: target-country pool
                same = target_ci == nci
                if grav_cum is not None:
                    dsel = np.flatnonzero(same)
                    if len(dsel):
                        d_ci = nci[dsel]
                        for ci in np.unique(d_ci).tolist():
                            csel = dsel[d_ci == ci]
                            rows = grav_cum[ci][city_idx[nu[csel]]]
                            rolls2 = city_rolls[need[csel]]
                            picked_city = (rows < rolls2[:, None]).sum(axis=1)
                            # Gravity may target a city with no residents
                            # (possibly past the last resident group id);
                            # those stubs keep the country pool.
                            gid = ci * stride + picked_city
                            in_range = np.minimum(gid, len(city_sizes) - 1)
                            resident = (gid < len(city_sizes)) & (
                                city_sizes[in_range] > 0
                            )
                            pool_key[csel[resident]] = n_countries + gid[resident]
                else:
                    # Ablation baseline: flat same-city probability. The
                    # user's own city group always has residents.
                    own_city = same & (city_rolls[need] < config.same_city_prob)
                    gid = nci * stride + city_idx[nu]
                    pool_key[own_city] = n_countries + gid[own_city]

                # Group stubs by pool and sample each pool's batch at once.
                # (int32 keys: the stable radix sort runs half the passes.)
                order = np.argsort(pool_key.astype(np.int32), kind="stable")
                sorted_keys = pool_key[order]
                boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
                cand = np.empty(len(need), dtype=np.int64)
                for part in np.split(np.arange(len(need))[order], boundaries):
                    key = int(pool_key[part[0]])
                    rolls3 = pick_rolls[need[part]]
                    if key < n_countries:
                        cand[part] = country_pools.pick(key, rolls3)
                    else:
                        cand[part] = city_pools.pick(key - n_countries, rolls3)
                targets[need] = cand
                slot_pool[need] = pool_key

            # -- accept forward stubs: vectorized edge keys checked against
            # -- the sorted-chunk duplicate filter (in-batch duplicates via
            # -- np.unique first-occurrence), with up to 3 vectorized
            # -- re-pick passes for collisions (matching the reference's
            # -- 4-attempt pick_from_pool loop). Self-loops encode as a
            # -- negative key so the accept pass makes a single check. ----
            keys = np.where(
                (targets < 0) | (targets == users), -1, users * n + targets
            )
            acc_parts: list[np.ndarray] = []
            pending = np.flatnonzero(targets >= 0)
            for attempt in range(4):
                pk = keys[pending]
                valid = pk >= 0
                if attempt == 0:
                    # Triadic picks were already screened against `seen`
                    # at pick time and nothing was inserted since, so the
                    # first attempt only needs to probe pool picks.
                    dup = np.zeros(len(pk), dtype=bool)
                    pool_slots = np.flatnonzero(slot_pool[pending] >= 0)
                    if len(pool_slots):
                        dup[pool_slots] = seen_mask(pk[pool_slots])
                else:
                    dup = seen_mask(pk)
                lost = ~valid | dup
                _, first_idx = np.unique(pk, return_index=True)
                first = np.zeros(len(pk), dtype=bool)
                first[first_idx] = True
                ok = ~lost & first
                new_keys = pk[ok]
                if len(new_keys):
                    acc_parts.append(new_keys)
                    seen.add(new_keys)
                # Triadic picks (pool -1) are not retried: a collision
                # there means the edge already exists.
                fail = ~ok & (slot_pool[pending] >= 0)
                if attempt == 3 or not fail.any():
                    break
                pending = pending[fail]
                retries += len(pending)
                fkeys = slot_pool[pending]
                rolls = rng.random(len(pending))
                order2 = np.argsort(fkeys.astype(np.int32), kind="stable")
                bounds = np.flatnonzero(np.diff(fkeys[order2])) + 1
                repick = np.empty(len(pending), dtype=np.int64)
                for part in np.split(order2, bounds):
                    key = int(fkeys[part[0]])
                    if key < n_countries:
                        repick[part] = country_pools.pick(key, rolls[part])
                    else:
                        repick[part] = city_pools.pick(
                            key - n_countries, rolls[part]
                        )
                fusers = users[pending]
                keys[pending] = np.where(
                    repick == fusers, -1, fusers * n + repick
                )

            if not acc_parts:
                continue
            acc_keys = np.concatenate(acc_parts)
            src_arr = acc_keys // n
            dst_arr = acc_keys - src_arr * n
            chunk_src.append(src_arr.astype(edge_dtype))
            chunk_dst.append(dst_arr.astype(edge_dtype))
            edges_forward += len(src_arr)
            np.add.at(in_degree, dst_arr, 1)
            np.add.at(out_len, src_arr, 1)
            country_pools.add_weights(dst_arr)
            city_pools.add_weights(dst_arr)
            # Scatter this batch's forward edges into the wish buffer:
            # group by source, then slot = offset + fill + rank-in-batch.
            worder = np.argsort(
                src_arr.astype(np.int32) if n < 2**31 else src_arr, kind="stable"
            )
            ws = src_arr[worder]
            grp_start = np.flatnonzero(np.r_[True, ws[1:] != ws[:-1]])
            counts = np.diff(np.append(grp_start, len(ws)))
            rank = np.arange(len(ws)) - np.repeat(grp_start, counts)
            buf[off[ws] + fill[ws] + rank] = dst_arr[worder]
            fill[ws[grp_start]] += counts

            # -- follow-back (vectorized probabilities, batch semantics) ---
            follow_rolls = rng.random(len(src_arr))
            p = followback[dst_arr] / (
                1.0 + in_degree[dst_arr] / config.followback_popularity_scale
            )
            p *= config.followback_wish_gain / (
                1.0 + out_wish[dst_arr] / config.followback_wish_scale
            )
            same_c = country_idx[src_arr] == country_idx[dst_arr]
            same_city = same_c & (city_idx[src_arr] == city_idx[dst_arr])
            p *= np.where(same_city, 1.3, np.where(same_c, 1.15, 0.7))
            accept = follow_rolls < np.minimum(0.98, p)
            # The 5000-contact cap applies unless whitelisted (celebrity);
            # out_len includes this batch's forward edges, so the check is
            # at batch rather than per-edge granularity.
            accept &= (out_len[dst_arr] < cap) | celebrity[dst_arr]

            fb_cand = (dst_arr * n + src_arr)[accept]
            if len(fb_cand):
                _, fb_first = np.unique(fb_cand, return_index=True)
                fb_mask = np.zeros(len(fb_cand), dtype=bool)
                fb_mask[fb_first] = True
                fb_mask &= ~seen_mask(fb_cand)
                fb_keys = fb_cand[fb_mask]
            else:
                fb_keys = fb_cand
            if len(fb_keys):
                seen.add(fb_keys)
                fsrc = fb_keys // n
                fdst = fb_keys - fsrc * n
                chunk_src.append(fsrc.astype(edge_dtype))
                chunk_dst.append(fdst.astype(edge_dtype))
                edges_followback += len(fsrc)
                np.add.at(in_degree, fdst, 1)
                np.add.at(out_len, fsrc, 1)
                country_pools.add_weights(fdst)
                city_pools.add_weights(fdst)

    metrics["rounds"].inc(rounds_run)
    metrics["batches"].inc(batches_run)
    metrics["stubs"].inc(stubs)
    metrics["edges"].inc(edges_forward, kind="forward")
    metrics["edges"].inc(edges_followback, kind="followback")
    metrics["retries"].inc(retries)
    metrics["rebuilds"].inc(country_pools.rebuilds, layer="country")
    metrics["rebuilds"].inc(city_pools.rebuilds, layer="city")
    total_edges = edges_forward + edges_followback
    if rounds_run:
        metrics["edges_per_round"].set(total_edges / rounds_run)
    if stubs:
        metrics["retry_fraction"].set(retries / stubs)

    # Release the growth-loop state before materialising the final
    # arrays: the hash table and wish buffer are the two biggest
    # allocations, and holding them across the concatenate would stack
    # the peak RSS instead of pipelining it.
    del seen, seen_mask, buf, fill

    if chunk_src:
        sources = np.concatenate(chunk_src)
        targets_arr = np.concatenate(chunk_dst)
        chunk_src.clear()
        chunk_dst.clear()
        # Emit edges grouped by source (stable, so a user's contacts stay
        # in acceptance order): deterministic, and downstream bulk ingest
        # sorts by owner anyway, so handing it nearly-sorted input makes
        # the service phase cheaper.
        order = np.argsort(sources, kind="stable")
        sources = sources[order].astype(np.int64)
        targets_arr = targets_arr[order].astype(np.int64)
    else:
        sources = np.empty(0, dtype=np.int64)
        targets_arr = np.empty(0, dtype=np.int64)
    return GeneratedGraph(sources=sources, targets=targets_arr, n_users=n)
