"""Population and profile generation for the synthetic world.

Two stages:

1. :func:`generate_population` draws the ground truth — country, city and
   coordinates, gender, relationship status, occupation, disclosure
   propensity, follow-back propensity, celebrity seeding, tel-user flags;
2. :func:`build_profiles` turns ground truth into
   :class:`repro.platform.models.UserProfile` objects with per-field
   privacy settings, so that *publicly visible* field availability matches
   Table 2 and the per-country openness ordering of Figure 8.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.platform.models import (
    ContactInfo,
    Gender,
    LookingFor,
    Occupation,
    OCCUPATION_LABELS,
    Place,
    Relationship,
    UserProfile,
)
from repro.platform.privacy import (
    EXTENDED_CIRCLES,
    FieldPrivacy,
    ONLY_YOU,
    PUBLIC,
    YOUR_CIRCLES,
)

from .celebrities import (
    CelebritySpec,
    GLOBAL_CELEBRITIES,
    attachment_weight,
    national_celebrities,
)
from .cities import CitySampler
from .config import WorldConfig
from .countries import Country, build_country_table
from .demographics import (
    DemographicsSampler,
    FIELD_SHARE_PROBABILITY,
    tel_user_weights,
)
from .occupations import OccupationSampler

#: Non-public fields draw their privacy uniformly from these levels.
_HIDDEN_LEVELS: tuple[FieldPrivacy, ...] = (
    EXTENDED_CIRCLES,
    YOUR_CIRCLES,
    ONLY_YOU,
)


@dataclass
class Population:
    """Ground truth of the synthetic user base (arrays indexed by user id).

    User ids are the compact range ``0..n-1``. ``celebrity_weight[i]`` is
    the preferential-attachment boost (0 for ordinary users);
    ``celebrity_spec`` maps seeded celebrity ids to their archetypes.
    """

    n: int
    country_codes: list[str]
    city_indices: np.ndarray
    latitudes: np.ndarray
    longitudes: np.ndarray
    genders: list[Gender]
    relationships: list[Relationship]
    occupations: list[Occupation]
    disclosure: np.ndarray
    followback: np.ndarray
    celebrity_weight: np.ndarray
    celebrity_spec: dict[int, CelebritySpec] = field(default_factory=dict)
    tel_users: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    countries: dict[str, Country] = field(default_factory=dict)

    def openness_of(self, user_id: int) -> float:
        return self.countries[self.country_codes[user_id]].openness

    def is_celebrity(self, user_id: int) -> bool:
        return user_id in self.celebrity_spec


def _assign_countries(
    n: int, countries: dict[str, Country], rng: np.random.Generator
) -> list[str]:
    codes = list(countries)
    shares = np.array([countries[c].gplus_share for c in codes])
    shares = shares / shares.sum()
    drawn = rng.choice(len(codes), size=n, p=shares)
    return [codes[i] for i in drawn]


def generate_population(config: WorldConfig, rng: np.random.Generator) -> Population:
    """Draw the full ground-truth population for a world config."""
    n = config.n_users
    countries = build_country_table()
    sampler = CitySampler()
    demographics = DemographicsSampler(rng)
    occupations = OccupationSampler(rng)

    country_codes = _assign_countries(n, countries, rng)
    if config.engine == "fast":
        # Batched draws: same distributions, different RNG stream order.
        city_indices = sampler.sample_city_indices(country_codes, rng)
        latitudes, longitudes = sampler.coordinates_for_many(
            country_codes, city_indices, rng
        )
    else:
        city_indices = np.empty(n, dtype=np.int64)
        latitudes = np.empty(n)
        longitudes = np.empty(n)
        for i, code in enumerate(country_codes):
            city = sampler.sample_city_index(code, rng)
            city_indices[i] = city
            latitudes[i], longitudes[i] = sampler.coordinates_for(code, city, rng)

    population = Population(
        n=n,
        country_codes=country_codes,
        city_indices=city_indices,
        latitudes=latitudes,
        longitudes=longitudes,
        genders=demographics.sample_genders(n),
        relationships=demographics.sample_relationships(n),
        occupations=occupations.sample(n),
        disclosure=demographics.sample_disclosure(n),
        followback=rng.beta(
            config.graph.followback_beta_a, config.graph.followback_beta_b, size=n
        ),
        celebrity_weight=np.zeros(n),
        countries=countries,
    )
    _seed_celebrities(population, config, rng)
    _select_tel_users(population, config, rng)
    return population


def _seed_celebrities(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> None:
    """Plant the Table 1 global top-20 and the Table 5 national top-10s.

    Celebrities are assigned to users living in the right country (the
    lowest-id users of each country, deterministically), given Zipf
    attachment weight, near-zero follow-back, and their canonical
    occupation. In very small worlds a country may not have enough
    residents; the seeder then relocates a high-id user into the country
    so every celebrity archetype always exists.
    """
    specs = list(GLOBAL_CELEBRITIES) + national_celebrities()
    by_country: dict[str, list[int]] = {}
    for user_id, code in enumerate(population.country_codes):
        by_country.setdefault(code, []).append(user_id)
    cursor: dict[str, int] = {code: 0 for code in by_country}
    national_position: dict[str, int] = {}
    scale = config.graph.celebrity_weight_scale
    sampler = CitySampler()
    relocate_cursor = population.n - 1
    for spec in specs:
        pool = by_country.setdefault(spec.country, [])
        index = cursor.get(spec.country, 0)
        if index >= len(pool):
            # Relocate the highest-id non-celebrity user into the country.
            while relocate_cursor in population.celebrity_spec:
                relocate_cursor -= 1
            user_id = relocate_cursor
            relocate_cursor -= 1
            old_code = population.country_codes[user_id]
            if user_id in by_country.get(old_code, []):
                by_country[old_code].remove(user_id)
            population.country_codes[user_id] = spec.country
            city = sampler.sample_city_index(spec.country, rng)
            population.city_indices[user_id] = city
            lat, lon = sampler.coordinates_for(spec.country, city, rng)
            population.latitudes[user_id] = lat
            population.longitudes[user_id] = lon
            pool.append(user_id)
        else:
            user_id = pool[index]
        cursor[spec.country] = index + 1
        position = national_position.get(spec.country, 0) + 1
        national_position[spec.country] = position
        weight = (
            attachment_weight(
                spec,
                n_users=population.n,
                country_users=len(pool),
                national_position=position,
            )
            * scale
        )
        population.celebrity_weight[user_id] = weight
        population.celebrity_spec[user_id] = spec
        population.occupations[user_id] = spec.occupation
        population.followback[user_id] = config.graph.celebrity_followback
        # Celebrities run open, curated profiles.
        population.disclosure[user_id] = max(2.0, population.disclosure[user_id])


def _select_tel_users(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> None:
    """Choose exactly ``round(rate * n)`` phone-sharing users, Table 3 skews."""
    n = population.n
    count = int(round(config.tel_user_rate * n))
    tel_flags = np.zeros(n, dtype=bool)
    if count > 0:
        affinity = np.array(
            [population.countries[c].tel_affinity for c in population.country_codes]
        )
        weights = tel_user_weights(
            population.genders,
            population.relationships,
            population.disclosure,
            affinity,
        )
        # Celebrities publish managed contact pages, not personal phones.
        for user_id in population.celebrity_spec:
            weights[user_id] = 0.0
        total = weights.sum()
        if total <= 0:
            raise ValueError("tel-user weights vanished; check demographics tables")
        chosen = rng.choice(n, size=min(count, n), replace=False, p=weights / total)
        tel_flags[chosen] = True
    population.tel_users = tel_flags


def _share_probability(base: float, openness: float, disclosure: float) -> float:
    """Probability a field is publicly shared, given culture and trait."""
    return float(min(0.995, base * openness * disclosure))


def _privacy_for_hidden(rng: np.random.Generator) -> FieldPrivacy:
    return _HIDDEN_LEVELS[int(rng.integers(0, len(_HIDDEN_LEVELS)))]


def _places_for(
    population: Population,
    user_id: int,
    sampler: CitySampler,
    config: WorldConfig,
    rng: np.random.Generator,
) -> list[Place]:
    """1-3 places lived; the last is the user's actual current city."""
    code = population.country_codes[user_id]
    places: list[Place] = []
    if rng.random() < config.profiles.multi_place_prob:
        extra = int(rng.integers(1, 3))
        for _ in range(extra):
            if rng.random() < config.profiles.foreign_previous_place_prob:
                previous_code = str(rng.choice(sampler.countries()))
            else:
                previous_code = code
            city_idx = sampler.sample_city_index(previous_code, rng)
            lat, lon = sampler.coordinates_for(previous_code, city_idx, rng)
            city = sampler.cities_of(previous_code)[city_idx]
            places.append(Place(city.name, lat, lon, previous_code))
    home_city = sampler.cities_of(code)[int(population.city_indices[user_id])]
    places.append(
        Place(
            home_city.name,
            float(population.latitudes[user_id]),
            float(population.longitudes[user_id]),
            code,
        )
    )
    return places


def _contact_blocks(
    population: Population,
    user_id: int,
    config: WorldConfig,
    rng: np.random.Generator,
) -> dict[str, ContactInfo]:
    """Public contact blocks for a tel-user (both / work-only / home-only)."""
    code = population.country_codes[user_id]
    # crc32, not hash(): str hashing is salted per process, and worlds
    # must be bit-identical across processes (checkpoint/resume relies
    # on rebuilding the same world in a fresh interpreter).
    prefix = (zlib.crc32(code.encode("ascii")) % 90) + 10
    phone = f"+{prefix} 555 {user_id % 10_000:04d}"
    contact = ContactInfo(phone=phone, email=f"user{user_id}@example.com")
    roll = rng.random()
    profiles = config.profiles
    if roll < profiles.tel_both_fraction:
        return {"work_contact": contact, "home_contact": contact}
    if roll < profiles.tel_both_fraction + profiles.tel_work_only_fraction:
        return {"work_contact": contact}
    return {"home_contact": contact}


def build_profiles(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> dict[int, UserProfile]:
    """Materialise privacy-annotated profiles for the whole population."""
    sampler = CitySampler()
    looking_for_options = list(LookingFor)
    profiles: dict[int, UserProfile] = {}
    for user_id in range(population.n):
        spec = population.celebrity_spec.get(user_id)
        name = spec.name if spec else f"User {user_id:06d}"
        profile = UserProfile(
            user_id=user_id,
            name=name,
            lists_public=rng.random() >= config.profiles.private_lists_prob,
        )
        openness = population.openness_of(user_id)
        disclosure = float(population.disclosure[user_id])
        is_celebrity = spec is not None

        def decide(
            field_key: str, value, culture_factor: float | None = None
        ) -> None:
            base_p = FIELD_SHARE_PROBABILITY[field_key]
            factor = openness if culture_factor is None else culture_factor
            if is_celebrity and field_key in (
                "occupation", "places_lived", "employment", "gender",
            ):
                profile.set_field(field_key, value, PUBLIC)
                return
            if rng.random() < _share_probability(base_p, factor, disclosure):
                profile.set_field(field_key, value, PUBLIC)
            elif rng.random() < config.profiles.hidden_field_prob:
                profile.set_field(field_key, value, _privacy_for_hidden(rng))

        # Gender availability barely varies by culture (97.7% overall), so
        # openness enters with a soft exponent only.
        gender_p = FIELD_SHARE_PROBABILITY["gender"] * openness**0.05
        if rng.random() < min(0.999, gender_p):
            profile.set_field("gender", population.genders[user_id], PUBLIC)
        else:
            profile.set_field(
                "gender", population.genders[user_id], _privacy_for_hidden(rng)
            )

        # Places-lived sharing is kept culture-independent so the located
        # subsample preserves the country mix (Figure 6 is computed over
        # located users); openness still shapes every *other* field
        # (Figure 8 conditions on located users and counts the rest).
        decide(
            "places_lived",
            _places_for(population, user_id, sampler, config, rng),
            culture_factor=1.0,
        )
        decide("education", f"Studied at University {user_id % 409}")
        decide("employment", f"Works at Company {user_id % 997}")
        decide("phrase", "Carpe diem")
        decide("other_profiles", [f"https://social.example/{user_id}"])
        decide("occupation", OCCUPATION_LABELS[population.occupations[user_id]])
        decide("contributor_to", [f"https://blog.example/{user_id % 211}"])
        decide("introduction", "Hi, I joined Google+!")
        decide("other_names", f"U{user_id:06d}")
        # Tel-users disproportionately publish their relationship status:
        # Table 3 rests on 29,068 of 72,736 tel-users (40%) sharing it,
        # versus 4.3% of the population.
        if population.tel_users[user_id]:
            if rng.random() < 0.40:
                profile.set_field(
                    "relationship", population.relationships[user_id], PUBLIC
                )
            else:
                profile.set_field(
                    "relationship",
                    population.relationships[user_id],
                    _privacy_for_hidden(rng),
                )
        else:
            decide("relationship", population.relationships[user_id])
        decide("bragging_rights", "Survived the invite queue")
        decide("recommended_links", [f"https://links.example/{user_id % 53}"])
        decide(
            "looking_for",
            looking_for_options[int(rng.integers(0, len(looking_for_options)))],
        )

        if population.tel_users[user_id]:
            for key, contact in _contact_blocks(population, user_id, config, rng).items():
                profile.set_field(key, contact, PUBLIC)
        else:
            # A sliver of users keeps a hidden contact block on file.
            if rng.random() < 0.01:
                profile.set_field(
                    "work_contact",
                    ContactInfo(email=f"user{user_id}@example.com"),
                    _privacy_for_hidden(rng),
                )
        profiles[user_id] = profile
    return profiles
