"""Synthetic social-graph generator.

A degree-driven growth process combining the mechanisms the paper's
measurements point at:

* **preferential attachment** with celebrity seeding — power-law in-degree
  (Figure 3) and the Table 1 / Table 5 top lists;
* **country mixing rows** (domesticity / US-flux / global remainder) —
  the Figure 10 link landscape;
* **city homophily** for domestic links — the short-range mass of the
  path-mile CDF (Figure 9a);
* **triadic closure** — clustering coefficients well above random
  (Figure 4b);
* **per-user follow-back propensity**, damped by popularity and boosted
  by proximity — the bimodal RR distribution (Figure 4a), the ~32% global
  reciprocity (Table 4), and the reciprocal-pairs-live-closest ordering
  (Figure 9a);
* the **5000-contact cap** with whitelisted celebrities — the out-degree
  knee (Figure 3).

Edges are generated in interleaved rounds (one stub per user per round)
so attachment weights grow concurrently, as in the real service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.distance import haversine_miles
from repro.obs import trace

from .cities import build_gazetteer
from .config import GraphGenConfig
from .profiles import Population


@dataclass(frozen=True)
class GeneratedGraph:
    """Edge arrays of the generated social graph (user ids, 0..n-1)."""

    sources: np.ndarray
    targets: np.ndarray
    n_users: int

    @property
    def n_edges(self) -> int:
        return len(self.sources)


class _TokenPools:
    """Per-country and per-(country, city) preferential-attachment pools."""

    def __init__(self, population: Population, config: GraphGenConfig):
        self.by_country: dict[str, list[int]] = {}
        self.by_city: dict[tuple[str, int], list[int]] = {}
        for user_id in range(population.n):
            code = population.country_codes[user_id]
            city = int(population.city_indices[user_id])
            tokens = config.base_attachment_tokens + int(
                round(population.celebrity_weight[user_id])
            )
            self.by_country.setdefault(code, []).extend([user_id] * tokens)
            self.by_city.setdefault((code, city), []).extend([user_id] * tokens)

    def record_follow(self, population: Population, user_id: int) -> None:
        """Grow a user's attachment weight after receiving an edge."""
        code = population.country_codes[user_id]
        city = int(population.city_indices[user_id])
        self.by_country[code].append(user_id)
        self.by_city[(code, city)].append(user_id)


class _GravityKernel:
    """Per-country city-to-city target-choice distributions.

    For a source living in city ``i``, the probability of targeting city
    ``j`` of the same country is proportional to
    ``population_j / (1 + d_ij / scale)^gamma`` (diagonal boosted by
    ``same_city_boost``). Rows are precomputed as cumulative
    distributions; picking a city is a binary search.
    """

    def __init__(self, config: GraphGenConfig):
        self._cum: dict[str, np.ndarray] = {}
        for code, cities in build_gazetteer().items():
            lats = np.array([c.latitude for c in cities])
            lons = np.array([c.longitude for c in cities])
            weights = np.array([c.weight for c in cities])
            distances = haversine_miles(
                lats[:, None], lons[:, None], lats[None, :], lons[None, :]
            )
            kernel = weights[None, :] / np.power(
                1.0 + distances / config.gravity_scale_miles, config.gravity_gamma
            )
            kernel[np.diag_indices(len(cities))] *= config.same_city_boost
            cumulative = np.cumsum(kernel, axis=1)
            cumulative /= cumulative[:, -1:]
            self._cum[code] = cumulative

    def pick_city(self, code: str, source_city: int, roll: float) -> int:
        return int(np.searchsorted(self._cum[code][source_city], roll))


def _sample_out_degrees(
    population: Population, config: GraphGenConfig, rng: np.random.Generator
) -> np.ndarray:
    """Pareto out-degree targets, capped for non-whitelisted users."""
    u = rng.random(population.n)
    raw = config.out_scale * np.power(u, -1.0 / config.out_alpha)
    degrees = np.maximum(1, np.floor(raw).astype(np.int64))
    capped = np.minimum(degrees, config.out_degree_cap)
    if population.celebrity_spec:
        # Whitelisted accounts may exceed the cap (Section 3.3.1), though
        # their sampled wish rarely does; keep the uncapped draw.
        whitelisted = np.fromiter(
            population.celebrity_spec,
            dtype=np.int64,
            count=len(population.celebrity_spec),
        )
        capped[whitelisted] = np.minimum(
            degrees[whitelisted], 2 * config.out_degree_cap
        )
    # Nobody can follow more users than exist.
    return np.minimum(capped, population.n - 1)


def _country_mixing(population: Population) -> dict[str, tuple[float, float]]:
    """Per-country (domesticity, us_flux) rows."""
    return {
        code: (country.domesticity, country.us_flux if code != "US" else 0.0)
        for code, country in population.countries.items()
    }


def generate_graph(
    population: Population,
    config: GraphGenConfig,
    rng: np.random.Generator,
) -> GeneratedGraph:
    """Run the growth process and return the directed edge list."""
    n = population.n
    with trace.span("graphgen.setup", users=n):
        out_wish = _sample_out_degrees(population, config, rng)
        pools = _TokenPools(population, config)
        mixing = _country_mixing(population)
        gravity = _GravityKernel(config) if config.geo_homophily else None
    country_codes = population.country_codes
    city_indices = population.city_indices
    followback = population.followback
    celebrity = population.celebrity_weight > 0

    # Global share distribution for the non-domestic, non-US remainder.
    all_codes = list(population.countries)
    shares = np.array([population.countries[c].gplus_share for c in all_codes])
    shares = shares / shares.sum()
    share_cum = np.cumsum(shares)

    out_sets: list[set[int]] = [set() for _ in range(n)]
    out_lists: list[list[int]] = [[] for _ in range(n)]
    in_degree = np.zeros(n, dtype=np.int64)
    sources: list[int] = []
    targets: list[int] = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in out_sets[u]:
            return False
        out_sets[u].add(v)
        out_lists[u].append(v)
        sources.append(u)
        targets.append(v)
        in_degree[v] += 1
        pools.record_follow(population, v)
        return True

    def maybe_followback(u: int, v: int, roll: float) -> None:
        """v considers following u back after receiving the edge u -> v."""
        p = followback[v] / (1.0 + in_degree[v] / config.followback_popularity_scale)
        p *= config.followback_wish_gain / (
            1.0 + out_wish[v] / config.followback_wish_scale
        )
        if country_codes[u] == country_codes[v]:
            if city_indices[u] == city_indices[v]:
                p *= 1.3
            else:
                p *= 1.15
        else:
            p *= 0.7
        if roll >= min(0.98, p):
            return
        at_cap = (
            len(out_sets[v]) >= config.out_degree_cap and not celebrity[v]
        )
        if not at_cap:
            add_edge(v, u)

    def pick_from_pool(pool: list[int], u: int, roll: float) -> int | None:
        for attempt in range(4):
            candidate = pool[int(roll * len(pool)) % len(pool)]
            if candidate != u and candidate not in out_sets[u]:
                return candidate
            roll = rng.random()
        return None

    max_rounds = int(out_wish.max())
    active = np.argsort(-out_wish)  # stable processing order, heaviest first
    with trace.span("graphgen.growth_rounds", rounds=max_rounds):
        _run_growth_rounds(
            max_rounds,
            active,
            out_wish,
            config,
            rng,
            mixing,
            gravity,
            pools,
            country_codes,
            city_indices,
            all_codes,
            share_cum,
            out_lists,
            out_sets,
            add_edge,
            maybe_followback,
            pick_from_pool,
        )

    return GeneratedGraph(
        sources=np.array(sources, dtype=np.int64),
        targets=np.array(targets, dtype=np.int64),
        n_users=n,
    )


def _run_growth_rounds(
    max_rounds,
    active,
    out_wish,
    config,
    rng,
    mixing,
    gravity,
    pools,
    country_codes,
    city_indices,
    all_codes,
    share_cum,
    out_lists,
    out_sets,
    add_edge,
    maybe_followback,
    pick_from_pool,
) -> int:
    """Interleaved edge-growth rounds (split out for span accounting)."""
    edges_added = 0
    for round_index in range(max_rounds):
        round_users = active[out_wish[active] > round_index]
        if len(round_users) == 0:
            break
        k = len(round_users)
        triadic_rolls = rng.random(k)
        country_rolls = rng.random(k)
        city_rolls = rng.random(k)
        pick_rolls = rng.random(k)
        follow_rolls = rng.random(k)
        for slot in range(k):
            u = int(round_users[slot])
            target: int | None = None
            # Triadic closure: follow a followee of a followee.
            if triadic_rolls[slot] < config.triadic_prob and out_lists[u]:
                v = out_lists[u][int(pick_rolls[slot] * len(out_lists[u]))]
                if out_lists[v]:
                    w = out_lists[v][
                        int(city_rolls[slot] * len(out_lists[v]))
                    ]
                    if w != u and w not in out_sets[u]:
                        target = w
            if target is None:
                code = country_codes[u]
                domesticity, us_flux = mixing[code]
                roll = country_rolls[slot]
                if roll < domesticity:
                    target_code = code
                elif roll < domesticity + us_flux:
                    target_code = "US"
                else:
                    target_code = all_codes[
                        int(np.searchsorted(share_cum, rng.random()))
                    ]
                if target_code == code and gravity is not None:
                    city = gravity.pick_city(code, int(city_indices[u]), city_rolls[slot])
                    pool = pools.by_city.get((code, city)) or pools.by_country[code]
                elif (
                    target_code == code
                    and city_rolls[slot] < config.same_city_prob
                ):
                    pool = pools.by_city.get(
                        (code, int(city_indices[u])),
                        pools.by_country[code],
                    )
                else:
                    pool = pools.by_country[target_code]
                target = pick_from_pool(pool, u, pick_rolls[slot])
            if target is None:
                continue
            if add_edge(u, target):
                edges_added += 1
                maybe_followback(u, target, follow_rolls[slot])
    return edges_added
