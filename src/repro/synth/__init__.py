"""Synthetic Google+ world: countries, cities, demographics, graph, assembly."""

from .activity import (
    ActivityConfig,
    ActivityLog,
    Cascade,
    simulate_activity,
)
from .baselines import (
    BASELINE_GENERATORS,
    BaselineConfig,
    generate_facebook_like,
    generate_orkut_like,
    generate_twitter_like,
)
from .celebrities import (
    attachment_weight,
    CelebritySpec,
    GLOBAL_CELEBRITIES,
    national_celebrities,
)
from .cities import build_gazetteer, City, CitySampler
from .config import GraphGenConfig, ProfileGenConfig, WorldConfig
from .countries import (
    build_country_table,
    Country,
    MAJOR_COUNTRIES,
    MINOR_COUNTRIES,
    TOP10_CODES,
)
from .demographics import (
    DemographicsSampler,
    FIELD_SHARE_PROBABILITY,
    GENDER_DISTRIBUTION,
    RELATIONSHIP_DISTRIBUTION,
    TEL_USER_RATE,
    tel_user_weights,
)
from .fastgen import generate_graph_fast, IncrementalPools
from .fastprofiles import build_profiles_fast
from .graphgen import GeneratedGraph, generate_graph
from .growth import (
    assign_edge_days,
    assign_join_days,
    build_timeline,
    CRAWL_DAY,
    GrowthConfig,
    GrowthTimeline,
    OPEN_SIGNUP_DAY,
)
from .occupations import (
    CELEBRITY_OCCUPATIONS,
    jaccard_index,
    OccupationSampler,
    ORDINARY_OCCUPATIONS,
)
from .profiles import build_profiles, generate_population, Population
from .world import build_world, SyntheticWorld

__all__ = [
    "ActivityConfig",
    "ActivityLog",
    "attachment_weight",
    "BASELINE_GENERATORS",
    "BaselineConfig",
    "generate_facebook_like",
    "generate_orkut_like",
    "generate_twitter_like",
    "Cascade",
    "simulate_activity",
    "build_country_table",
    "build_gazetteer",
    "build_profiles",
    "build_profiles_fast",
    "build_world",
    "CELEBRITY_OCCUPATIONS",
    "CelebritySpec",
    "City",
    "CitySampler",
    "Country",
    "DemographicsSampler",
    "FIELD_SHARE_PROBABILITY",
    "GENDER_DISTRIBUTION",
    "assign_edge_days",
    "assign_join_days",
    "build_timeline",
    "CRAWL_DAY",
    "GeneratedGraph",
    "generate_graph",
    "generate_graph_fast",
    "IncrementalPools",
    "GrowthConfig",
    "GrowthTimeline",
    "OPEN_SIGNUP_DAY",
    "generate_population",
    "GLOBAL_CELEBRITIES",
    "GraphGenConfig",
    "jaccard_index",
    "MAJOR_COUNTRIES",
    "MINOR_COUNTRIES",
    "national_celebrities",
    "OccupationSampler",
    "ORDINARY_OCCUPATIONS",
    "Population",
    "ProfileGenConfig",
    "RELATIONSHIP_DISTRIBUTION",
    "SyntheticWorld",
    "tel_user_weights",
    "TEL_USER_RATE",
    "TOP10_CODES",
    "WorldConfig",
]
