"""Configuration of the synthetic Google+ world.

Every stochastic component reads its knobs from :class:`WorldConfig`; the
defaults are calibrated so the crawled measurements reproduce the paper's
shapes at laptop scale (see EXPERIMENTS.md for measured-vs-paper values).
All generation flows from ``seed``: equal configs produce identical
worlds, crawls and analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GraphGenConfig:
    """Knobs of the social-graph generator.

    The generator is a degree-driven preferential-attachment process with
    geographic and country homophily, per-user follow-back propensity, and
    triadic closure:

    * out-degrees are Pareto with CCDF exponent ``out_alpha`` (the paper
      fits 1.2) scaled by ``out_scale`` and capped at ``out_degree_cap``
      (the 5000-contact policy; celebrities are whitelisted past it);
    * each edge stub picks a target country from the source country's
      mixing row (domesticity / US-flux / global share — Figure 10), then
      a target by in-degree preferential attachment, staying in the
      source's own city with probability ``same_city_prob`` for domestic
      stubs (Figure 9a's short-range mass);
    * with probability ``triadic_prob`` a stub closes a triangle through
      an existing followee instead (Figure 4b's clustering);
    * the target follows back with its personal propensity — Beta
      distributed for ordinary users, ``celebrity_followback`` for
      celebrities (Figure 4a's bimodal RR, Table 4's 32% reciprocity).
    """

    out_alpha: float = 1.1
    out_scale: float = 3.0
    out_degree_cap: int = 5_000
    #: Domestic stubs pick a target city through a gravity kernel
    #: ``weight_j / (1 + d_ij / scale)^gamma`` — this is what puts 58% of
    #: friend pairs within a thousand miles while keeping the ~15% of
    #: same-metro pairs within ten (Figure 9a). Setting ``geo_homophily``
    #: False falls back to country-uniform preferential attachment with a
    #: flat ``same_city_prob`` (the ablation baseline).
    geo_homophily: bool = True
    gravity_gamma: float = 1.5
    gravity_scale_miles: float = 300.0
    same_city_boost: float = 0.3
    same_city_prob: float = 0.45
    triadic_prob: float = 0.5
    followback_beta_a: float = 0.9
    followback_beta_b: float = 0.9
    celebrity_followback: float = 0.02
    #: Follow-back probability is damped by 1 / (1 + in_degree / this),
    #: so very popular users reciprocate rarely (paper Section 3.3.2).
    followback_popularity_scale: float = 25.0
    #: Sociality coupling: a target's follow-back probability is scaled by
    #: ``gain / (1 + out_wish / scale)``. Low-wish users (the vast
    #: majority under a power law) reciprocate nearly always, heavy
    #: followers rarely — which is what lets the *user-weighted* RR
    #: distribution sit high (Fig 4a) while the *edge-weighted* global
    #: reciprocity stays near 32% (Table 4).
    followback_wish_gain: float = 1.4
    followback_wish_scale: float = 8.0
    #: Initial attachment tokens per ordinary user (Laplace smoothing of
    #: preferential attachment; higher = flatter in-degree distribution).
    base_attachment_tokens: int = 1
    #: Global scale on celebrity attachment weights.
    celebrity_weight_scale: float = 4.0


@dataclass(frozen=True)
class ProfileGenConfig:
    """Knobs of profile/privacy generation (Tables 2-3, Figures 2 and 8)."""

    #: Probability scale for hidden-but-present fields: when a field is not
    #: public, it exists privately with this probability.
    hidden_field_prob: float = 0.5
    #: Of tel-users, the split across contact blocks (both / work / home),
    #: derived from Table 2 vs Section 3.2 counts.
    tel_both_fraction: float = 0.65
    tel_work_only_fraction: float = 0.19
    #: Probability that a user's places-lived list has 2 or 3 entries.
    multi_place_prob: float = 0.35
    #: Probability that a previous place lived is abroad.
    foreign_previous_place_prob: float = 0.10
    #: Fraction of users hiding their circle lists on the profile page.
    private_lists_prob: float = 0.02


@dataclass(frozen=True)
class WorldConfig:
    """Top-level configuration of a synthetic Google+ world."""

    n_users: int = 20_000
    seed: int = 7
    graph: GraphGenConfig = field(default_factory=GraphGenConfig)
    profiles: ProfileGenConfig = field(default_factory=ProfileGenConfig)
    #: Tel-user rate (Section 3.2: 72,736 / 27,556,390).
    tel_user_rate: float = 0.0026
    #: Users created during the invitation-only field trial (fraction).
    field_trial_fraction: float = 0.3
    #: Public circle-list display cap. The real service used 10,000; small
    #: worlds can lower it to exercise the Section 2.2 lost-edge machinery.
    circle_display_limit: int = 10_000
    #: Generation engine. ``"reference"`` is the sequential, bit-stable
    #: original (every golden test pins its output); ``"fast"`` is the
    #: vectorized engine (:mod:`repro.synth.fastgen`), which produces the
    #: same *calibrated* graph family — statistically equivalent, not
    #: bit-identical — at a fraction of the time and memory. See
    #: ``docs/synth.md`` for the equivalence contract.
    engine: str = "reference"
    #: Backing store of the built service. ``"dict"`` is the per-object
    #: reference store; ``"columnar"`` is the struct-of-arrays store
    #: (:mod:`repro.platform.columnar`) that holds profiles as interned
    #: columns and circles as CSR arrays — state-identical behind the
    #: same service API, and the only store that fits million-user
    #: worlds in laptop RAM. See ``docs/storage.md``.
    store: str = "dict"

    def __post_init__(self) -> None:
        if self.n_users < 200:
            raise ValueError("worlds below 200 users cannot host the celebrity set")
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"engine must be 'reference' or 'fast', got {self.engine!r}"
            )
        if self.store not in ("dict", "columnar"):
            raise ValueError(
                f"store must be 'dict' or 'columnar', got {self.store!r}"
            )
        if not 0.0 <= self.field_trial_fraction <= 1.0:
            raise ValueError("field_trial_fraction must be in [0, 1]")
        if not 0.0 <= self.tel_user_rate < 1.0:
            raise ValueError("tel_user_rate must be in [0, 1)")
