"""Country database, circa 2011.

Static per-country facts used throughout Section 4 of the paper:
population, Internet penetration rate (IPR, the share of the population
online — the paper sources internetworldstats.com), GDP per capita (PPP),
and region. On top of the facts sit the *calibration targets* the
synthetic world is tuned to reproduce:

* ``gplus_share`` — the country's *pre-crawl* share of located users.
  The BFS crawl (seeded at a US celebrity, stopped at ~78% coverage)
  over-samples countries socially close to the seed, exactly the bias
  the paper's Section 2.2 caveats; these ground-truth shares are
  therefore bias-compensated so the *crawled* shares land on the
  paper's Figure 6 / Table 3 numbers (US 31.4%, IN 16.7%, ...);
* ``tel_affinity`` — relative propensity of the country's users to share
  a phone number (Table 3's tel-user location mix);
* ``openness`` — multiplier on field-sharing propensity (Figure 8's
  ranking: Indonesia and Mexico most open, Germany most conservative);
* ``domesticity`` — probability that an out-link stays in-country and
  ``us_flux`` — probability it goes to the US (Figure 10).

Population figures are in millions; penetration in [0, 1]; GDP per capita
in PPP dollars.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Country:
    """Facts and calibration targets for one country."""

    code: str
    name: str
    region: str
    population_m: float
    internet_penetration: float
    gdp_per_capita_ppp: float
    gplus_share: float
    tel_affinity: float = 1.0
    openness: float = 1.0
    domesticity: float = 0.5
    us_flux: float = 0.15
    english_speaking: bool = False

    @property
    def internet_population_m(self) -> float:
        """Internet users in millions — the GPR denominator (Equation 2)."""
        return self.population_m * self.internet_penetration


#: The twenty countries of Figure 7, with calibration targets.
MAJOR_COUNTRIES: tuple[Country, ...] = (
    Country("US", "United States", "North America", 311.0, 0.78, 48_100,
            gplus_share=0.278, tel_affinity=0.28, openness=1.00,
            domesticity=0.76, us_flux=0.0, english_speaking=True),
    Country("IN", "India", "Asia", 1241.0, 0.08, 3_700,
            gplus_share=0.21, tel_affinity=1.91, openness=0.78,
            domesticity=0.88, us_flux=0.06, english_speaking=True),
    Country("BR", "Brazil", "Latin America", 196.0, 0.45, 11_600,
            gplus_share=0.078, tel_affinity=0.82, openness=0.95,
            domesticity=0.88, us_flux=0.05),
    Country("GB", "United Kingdom", "Europe", 63.0, 0.84, 36_000,
            gplus_share=0.026, tel_affinity=0.65, openness=0.92,
            domesticity=0.30, us_flux=0.36, english_speaking=True),
    Country("CA", "Canada", "North America", 34.0, 0.83, 40_500,
            gplus_share=0.021, tel_affinity=0.66, openness=0.82,
            domesticity=0.33, us_flux=0.38, english_speaking=True),
    Country("DE", "Germany", "Europe", 82.0, 0.83, 38_100,
            gplus_share=0.019, tel_affinity=0.60, openness=0.45,
            domesticity=0.56, us_flux=0.20),
    Country("ID", "Indonesia", "Asia", 242.0, 0.18, 4_700,
            gplus_share=0.0185, tel_affinity=1.60, openness=1.35,
            domesticity=0.86, us_flux=0.07),
    Country("MX", "Mexico", "Latin America", 115.0, 0.365, 15_100,
            gplus_share=0.0172, tel_affinity=1.10, openness=1.25,
            domesticity=0.52, us_flux=0.22),
    Country("IT", "Italy", "Europe", 61.0, 0.58, 30_100,
            gplus_share=0.0167, tel_affinity=0.80, openness=0.78,
            domesticity=0.62, us_flux=0.14),
    Country("ES", "Spain", "Europe", 46.0, 0.67, 30_600,
            gplus_share=0.0145, tel_affinity=0.85, openness=0.85,
            domesticity=0.56, us_flux=0.18),
    Country("VN", "Vietnam", "Asia", 88.0, 0.34, 3_400,
            gplus_share=0.0135, tel_affinity=1.70, openness=1.10,
            domesticity=0.70, us_flux=0.12),
    Country("FR", "France", "Europe", 65.0, 0.80, 35_000,
            gplus_share=0.014, tel_affinity=0.70, openness=0.80,
            domesticity=0.55, us_flux=0.18),
    Country("RU", "Russia", "Europe", 143.0, 0.49, 16_700,
            gplus_share=0.013, tel_affinity=1.00, openness=0.90,
            domesticity=0.65, us_flux=0.12),
    Country("TH", "Thailand", "Asia", 67.0, 0.30, 9_700,
            gplus_share=0.0135, tel_affinity=1.40, openness=1.15,
            domesticity=0.68, us_flux=0.12),
    Country("JP", "Japan", "Asia", 128.0, 0.80, 34_300,
            gplus_share=0.0113, tel_affinity=0.60, openness=0.70,
            domesticity=0.72, us_flux=0.12),
    Country("CN", "China", "Asia", 1344.0, 0.38, 8_400,
            gplus_share=0.0087, tel_affinity=1.20, openness=0.90,
            domesticity=0.70, us_flux=0.12),
    Country("TW", "Taiwan", "Asia", 23.0, 0.75, 37_900,
            gplus_share=0.0106, tel_affinity=1.10, openness=1.00,
            domesticity=0.60, us_flux=0.15),
    Country("AR", "Argentina", "Latin America", 41.0, 0.67, 17_400,
            gplus_share=0.0075, tel_affinity=1.00, openness=1.05,
            domesticity=0.55, us_flux=0.12),
    Country("AU", "Australia", "Oceania", 22.0, 0.89, 40_800,
            gplus_share=0.0069, tel_affinity=0.70, openness=0.90,
            domesticity=0.40, us_flux=0.30, english_speaking=True),
    Country("IR", "Iran", "Middle East", 75.0, 0.21, 13_200,
            gplus_share=0.0085, tel_affinity=1.40, openness=0.95,
            domesticity=0.70, us_flux=0.12),
)

#: Minor countries sharing the remaining user mass ("Other" in Table 3).
MINOR_COUNTRIES: tuple[Country, ...] = (
    Country("PL", "Poland", "Europe", 38.0, 0.62, 20_100, 0.0,
            tel_affinity=1.0, openness=0.95, domesticity=0.55, us_flux=0.15),
    Country("NL", "Netherlands", "Europe", 17.0, 0.89, 42_300, 0.0,
            tel_affinity=0.8, openness=0.85, domesticity=0.45, us_flux=0.20),
    Country("TR", "Turkey", "Middle East", 74.0, 0.42, 14_600, 0.0,
            tel_affinity=1.3, openness=1.05, domesticity=0.65, us_flux=0.12),
    Country("PH", "Philippines", "Asia", 95.0, 0.29, 4_100, 0.0,
            tel_affinity=1.5, openness=1.20, domesticity=0.60, us_flux=0.25,
            english_speaking=True),
    Country("ZA", "South Africa", "Africa", 51.0, 0.21, 11_000, 0.0,
            tel_affinity=1.3, openness=1.00, domesticity=0.55, us_flux=0.18,
            english_speaking=True),
    Country("NG", "Nigeria", "Africa", 162.0, 0.28, 2_600, 0.0,
            tel_affinity=1.7, openness=1.10, domesticity=0.60, us_flux=0.18,
            english_speaking=True),
    Country("EG", "Egypt", "Middle East", 83.0, 0.26, 6_500, 0.0,
            tel_affinity=1.5, openness=1.05, domesticity=0.65, us_flux=0.12),
    Country("KR", "South Korea", "Asia", 50.0, 0.81, 31_700, 0.0,
            tel_affinity=0.9, openness=0.85, domesticity=0.70, us_flux=0.12),
    Country("SE", "Sweden", "Europe", 9.5, 0.92, 40_600, 0.0,
            tel_affinity=0.8, openness=0.85, domesticity=0.45, us_flux=0.18),
    Country("PT", "Portugal", "Europe", 10.6, 0.55, 23_400, 0.0,
            tel_affinity=0.9, openness=0.95, domesticity=0.50, us_flux=0.15),
    Country("RO", "Romania", "Europe", 21.4, 0.44, 12_600, 0.0,
            tel_affinity=1.3, openness=1.10, domesticity=0.55, us_flux=0.15),
    Country("CO", "Colombia", "Latin America", 47.0, 0.50, 10_200, 0.0,
            tel_affinity=1.2, openness=1.10, domesticity=0.55, us_flux=0.15),
    Country("CL", "Chile", "Latin America", 17.3, 0.54, 17_300, 0.0,
            tel_affinity=1.0, openness=1.00, domesticity=0.55, us_flux=0.14),
    Country("MY", "Malaysia", "Asia", 28.9, 0.61, 16_200, 0.0,
            tel_affinity=1.3, openness=1.10, domesticity=0.60, us_flux=0.15,
            english_speaking=True),
    Country("PK", "Pakistan", "Asia", 177.0, 0.09, 2_800, 0.0,
            tel_affinity=1.7, openness=0.95, domesticity=0.65, us_flux=0.15,
            english_speaking=True),
)


#: Ceiling on any minor country's user share — kept below the smallest
#: top-10 share (ES, 1.7%) so minors never intrude into the Figure 6 bars.
_MINOR_SHARE_CAP = 0.0125


def build_country_table() -> dict[str, Country]:
    """All countries keyed by ISO code, with minor-country shares filled in.

    The major countries' explicit shares sum below 1; the remainder is
    split across minor countries in proportion to Internet population,
    capped at :data:`_MINOR_SHARE_CAP`, reproducing the long "Other" tail
    of Table 3 (~40% outside the top 5) without letting any minor country
    crack the Figure 6 top-10. Shares are renormalised downstream, so a
    sub-1.0 total only scales everything proportionally.
    """
    majors = {c.code: c for c in MAJOR_COUNTRIES}
    explicit = sum(c.gplus_share for c in MAJOR_COUNTRIES)
    remainder = max(0.0, 1.0 - explicit)
    weight_total = sum(c.internet_population_m for c in MINOR_COUNTRIES)
    table = dict(majors)
    for country in MINOR_COUNTRIES:
        share = min(
            _MINOR_SHARE_CAP,
            remainder * country.internet_population_m / weight_total,
        )
        table[country.code] = Country(
            code=country.code,
            name=country.name,
            region=country.region,
            population_m=country.population_m,
            internet_penetration=country.internet_penetration,
            gdp_per_capita_ppp=country.gdp_per_capita_ppp,
            gplus_share=share,
            tel_affinity=country.tel_affinity,
            openness=country.openness,
            domesticity=country.domesticity,
            us_flux=country.us_flux,
            english_speaking=country.english_speaking,
        )
    return table


#: The ten countries of Figures 6, 8, 9b and 10 and Table 5, paper order.
TOP10_CODES: tuple[str, ...] = (
    "US", "IN", "BR", "GB", "CA", "DE", "ID", "MX", "IT", "ES",
)
