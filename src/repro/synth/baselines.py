"""Baseline network models: the OSNs Google+ is compared against.

Table 4 of the paper *quotes* Facebook, Twitter and Orkut statistics from
prior work (Ugander et al., Kwak et al., Mislove et al.). To let the
cross-network comparison be *measured* rather than only quoted, this
module provides laptop-scale generative models capturing each network's
defining structure:

* :func:`generate_twitter_like` — directed follow graph with media-outlet
  hubs that never follow back and a weak follow-back norm: reciprocity
  ~22%, power-law in-degree with a heavier celebrity tail than Google+;
* :func:`generate_facebook_like` — an undirected friendship graph
  (every link mutual: reciprocity 100%) grown by preferential attachment
  with strong triadic closure and a higher mean degree;
* :func:`generate_orkut_like` — also fully mutual, community-heavy
  (denser triadic closure, lower degree), the Orkut shape.

All three reuse the same growth machinery (token-pool preferential
attachment + triadic closure) as the Google+ generator, so differences
between the measured rows come from the *model parameters*, not from
implementation artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class BaselineConfig:
    """Shared knobs of the baseline growth process."""

    out_alpha: float = 1.1
    out_scale: float = 3.0
    triadic_prob: float = 0.3
    followback_prob: float = 0.2
    n_hubs: int = 20
    hub_weight_share: float = 0.02  # initial token share of the top hub
    mutual: bool = False  # every edge added in both directions


def _grow(
    n: int,
    config: BaselineConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Token-pool preferential-attachment growth (single global pool)."""
    wish = np.maximum(
        1,
        np.floor(
            config.out_scale * np.power(rng.random(n), -1.0 / config.out_alpha)
        ).astype(np.int64),
    )
    wish = np.minimum(wish, n - 1)
    if not config.mutual and config.n_hubs:
        # Media-outlet hubs publish, they don't follow: tiny out wish.
        wish[: config.n_hubs] = np.minimum(wish[: config.n_hubs], 5)
    tokens: list[int] = list(range(n))
    for hub in range(config.n_hubs):
        boost = int(config.hub_weight_share * n / (hub + 1))
        tokens.extend([hub] * boost)
    hubs = set(range(config.n_hubs))
    out_sets: list[set[int]] = [set() for _ in range(n)]
    out_lists: list[list[int]] = [[] for _ in range(n)]
    sources: list[int] = []
    targets: list[int] = []

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in out_sets[u]:
            return False
        out_sets[u].add(v)
        out_lists[u].append(v)
        sources.append(u)
        targets.append(v)
        tokens.append(v)
        return True

    order = np.argsort(-wish)
    max_rounds = int(wish.max())
    for round_index in range(max_rounds):
        active = order[wish[order] > round_index]
        if len(active) == 0:
            break
        rolls = rng.random((len(active), 3))
        for slot, u in enumerate(active):
            u = int(u)
            target = None
            if rolls[slot, 0] < config.triadic_prob and out_lists[u]:
                via = out_lists[u][int(rolls[slot, 1] * len(out_lists[u]))]
                if out_lists[via]:
                    candidate = out_lists[via][
                        int(rolls[slot, 2] * len(out_lists[via]))
                    ]
                    if candidate != u and candidate not in out_sets[u]:
                        target = candidate
            if target is None:
                for _ in range(4):
                    candidate = tokens[int(rng.random() * len(tokens))]
                    if candidate != u and candidate not in out_sets[u]:
                        target = candidate
                        break
            if target is None:
                continue
            if add_edge(u, target):
                if config.mutual:
                    add_edge(target, u)
                elif target not in hubs and rng.random() < config.followback_prob:
                    add_edge(target, u)
    return np.array(sources, dtype=np.int64), np.array(targets, dtype=np.int64)


def _to_graph(n: int, edges: tuple[np.ndarray, np.ndarray]) -> CSRGraph:
    return CSRGraph.from_edge_arrays(
        edges[0], edges[1], node_ids=np.arange(n, dtype=np.int64)
    )


def generate_twitter_like(n: int, seed: int = 0) -> CSRGraph:
    """A Twitter-shaped follow graph: media hubs, ~22% reciprocity."""
    config = BaselineConfig(
        out_alpha=1.0,          # heavier tail (Kwak et al.'s shallow CCDF)
        out_scale=4.0,
        triadic_prob=0.15,      # news following is not friend-of-friend
        followback_prob=0.12,   # calibrated to ~22% edge reciprocity
        n_hubs=30,
        hub_weight_share=0.04,  # media outlets dwarf everything
    )
    return _to_graph(n, _grow(n, config, np.random.default_rng(seed)))


def generate_facebook_like(n: int, seed: int = 0) -> CSRGraph:
    """A Facebook-shaped friendship graph: all links mutual, dense."""
    config = BaselineConfig(
        out_alpha=1.5,          # lighter tail: friendship counts bounded
        out_scale=7.0,          # higher mean degree than Google+
        triadic_prob=0.55,      # strong friend-of-friend formation
        n_hubs=5,
        hub_weight_share=0.003,  # no celebrity follow asymmetry
        mutual=True,
    )
    return _to_graph(n, _grow(n, config, np.random.default_rng(seed)))


def generate_orkut_like(n: int, seed: int = 0) -> CSRGraph:
    """An Orkut-shaped friendship graph: mutual, community-dense."""
    config = BaselineConfig(
        out_alpha=1.4,
        out_scale=5.0,
        triadic_prob=0.65,
        n_hubs=5,
        hub_weight_share=0.004,
        mutual=True,
    )
    return _to_graph(n, _grow(n, config, np.random.default_rng(seed)))


#: Name -> generator, for sweep-style use.
BASELINE_GENERATORS = {
    "Twitter-like": generate_twitter_like,
    "Facebook-like": generate_facebook_like,
    "Orkut-like": generate_orkut_like,
}
