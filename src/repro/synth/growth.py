"""Temporal growth of the network — the paper's first future-work item.

Section 7: *"we are interested in measuring the speed at which a new
social network service grows and whether we can predict the phase
transitions in the growth sparks (e.g., tipping point when a network
suddenly shows a rapid growth or the point where the growth stabilizes).
By collecting multiple snapshots of the Google+ topology, we hope to gain
insight in the dynamic changes in the internal structure."*

This module makes those snapshots available without re-generating the
graph: every user gets a **join day** drawn from the service's adoption
curve (invitation-viral field trial for the first 90 days, an open-signup
spike, then logistic saturation — the arc Google+ actually followed
between June 2011 and the crawl), and every edge gets a **creation day**
after both endpoints joined. A snapshot at day *t* is then just a mask
over users and edges.

The growth arc also explains the paper's Section 5 observation (via
Leskovec et al.) that young networks are sparse and long-pathed and
*densify* over time: snapshots of the same world exhibit the
``E(t) ∝ N(t)^a`` densification power law with ``a > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graphgen import GeneratedGraph

#: Day the service opened to everyone (September 20th, 2011 — day 90
#: after the June 28th launch).
OPEN_SIGNUP_DAY = 90.0

#: Day of the crawl snapshot (late 2011 — roughly day 180).
CRAWL_DAY = 180.0


@dataclass(frozen=True)
class GrowthConfig:
    """Shape of the adoption curve.

    * ``viral_doubling_days`` — doubling time during the invitation-only
      field trial (Google+ famously reached 20M visitors in 21 days);
    * ``open_spike_fraction`` — share of open-signup users who pile in
      within ``open_spike_days`` of the gates opening;
    * ``saturation_scale_days`` — time constant of the post-spike
      logistic tail.
    """

    viral_doubling_days: float = 9.0
    open_spike_fraction: float = 0.35
    open_spike_days: float = 14.0
    saturation_scale_days: float = 45.0
    #: Mean lag between the later endpoint joining and an edge forming.
    edge_lag_days: float = 12.0


def assign_join_days(
    n_users: int,
    field_trial_fraction: float,
    rng: np.random.Generator,
    config: GrowthConfig | None = None,
) -> np.ndarray:
    """Join day per user id.

    The earliest ids join first (the world seats celebrities at low ids,
    which matches reality: the field trial was dominated by tech-savvy
    early adopters and public figures).
    """
    config = config if config is not None else GrowthConfig()
    n_trial = max(1, int(round(field_trial_fraction * n_users)))
    n_open = n_users - n_trial

    # Field trial: exponential viral growth => join times are the order
    # statistics of an exponential ramp, i.e. log-uniform in rank.
    rank = np.arange(1, n_trial + 1)
    growth_rate = np.log(2.0) / config.viral_doubling_days
    trial_days = np.log(rank / rank[-1] * (np.exp(growth_rate * OPEN_SIGNUP_DAY) - 1) + 1) / growth_rate
    trial_days = np.clip(trial_days, 0.0, OPEN_SIGNUP_DAY)

    # Open signup: a spike then a saturating tail. Both are *truncated*
    # exponentials so that every user has joined by the crawl day without
    # piling probability mass onto the final day.
    def truncated_exponential(scale: float, horizon: float, size: int) -> np.ndarray:
        if size <= 0:
            return np.empty(0)
        ceiling = 1.0 - np.exp(-horizon / scale)
        return -scale * np.log1p(-rng.uniform(0.0, ceiling, size=size))

    n_spike = int(round(config.open_spike_fraction * n_open))
    spike_days = OPEN_SIGNUP_DAY + truncated_exponential(
        config.open_spike_days / 2.0, CRAWL_DAY - OPEN_SIGNUP_DAY, n_spike
    )
    tail_start = OPEN_SIGNUP_DAY + config.open_spike_days
    tail_days = tail_start + truncated_exponential(
        config.saturation_scale_days, CRAWL_DAY - tail_start, n_open - n_spike
    )
    open_days = np.concatenate([spike_days, tail_days])
    rng.shuffle(open_days)
    days = np.concatenate([trial_days, open_days])
    return days[:n_users]


def assign_edge_days(
    graph: GeneratedGraph,
    join_days: np.ndarray,
    rng: np.random.Generator,
    config: GrowthConfig | None = None,
) -> np.ndarray:
    """Creation day per edge: after both endpoints joined, short lag."""
    config = config if config is not None else GrowthConfig()
    both_joined = np.maximum(join_days[graph.sources], join_days[graph.targets])
    lag = rng.exponential(config.edge_lag_days, size=graph.n_edges)
    return np.minimum(both_joined + lag, CRAWL_DAY)


@dataclass
class GrowthTimeline:
    """A world annotated with join/edge days, sliceable into snapshots."""

    graph: GeneratedGraph
    join_days: np.ndarray
    edge_days: np.ndarray

    def __post_init__(self) -> None:
        if len(self.join_days) != self.graph.n_users:
            raise ValueError("one join day per user required")
        if len(self.edge_days) != self.graph.n_edges:
            raise ValueError("one creation day per edge required")

    def nodes_by(self, day: float) -> np.ndarray:
        """User ids joined on or before ``day``."""
        return np.flatnonzero(self.join_days <= day)

    def edge_mask_by(self, day: float) -> np.ndarray:
        return self.edge_days <= day

    def snapshot(self, day: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(node_ids, sources, targets) of the network as of ``day``."""
        mask = self.edge_mask_by(day)
        return (
            self.nodes_by(day),
            self.graph.sources[mask],
            self.graph.targets[mask],
        )

    def adoption_curve(self, days: np.ndarray) -> np.ndarray:
        """Cumulative registered users at each day."""
        sorted_joins = np.sort(self.join_days)
        return np.searchsorted(sorted_joins, days, side="right")


def build_timeline(
    graph: GeneratedGraph,
    field_trial_fraction: float,
    seed: int,
    config: GrowthConfig | None = None,
) -> GrowthTimeline:
    """Annotate a generated graph with a full growth timeline."""
    rng = np.random.default_rng(seed)
    join_days = assign_join_days(
        graph.n_users, field_trial_fraction, rng, config
    )
    edge_days = assign_edge_days(graph, join_days, rng, config)
    return GrowthTimeline(graph=graph, join_days=join_days, edge_days=edge_days)
