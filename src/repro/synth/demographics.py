"""Demographic distributions calibrated to the paper's marginals.

Every probability here is lifted from the paper's tables:

* gender mix — Table 3's all-user column (67.65% male, 31.46% female,
  0.89% other among users sharing gender);
* relationship-status mix — Table 3's all-user column over the nine
  default options;
* per-field base sharing probabilities — Table 2's availability column;
* tel-user risk factors — the gender and relationship skews of Table 3's
  tel-user column, expressed as multiplicative affinities.

The synthetic world samples from these, and the analysis pipeline must
recover them from crawled pages — closing the measurement loop.
"""

from __future__ import annotations

import numpy as np

from repro.platform.models import Gender, Relationship

#: P(gender value | gender shared) — Table 3, all users.
GENDER_DISTRIBUTION: dict[Gender, float] = {
    Gender.MALE: 0.6765,
    Gender.FEMALE: 0.3146,
    Gender.OTHER: 0.0089,
}

#: P(status | relationship shared) — Table 3, all users.
RELATIONSHIP_DISTRIBUTION: dict[Relationship, float] = {
    Relationship.SINGLE: 0.4282,
    Relationship.MARRIED: 0.2659,
    Relationship.IN_A_RELATIONSHIP: 0.1980,
    Relationship.ITS_COMPLICATED: 0.0316,
    Relationship.ENGAGED: 0.0439,
    Relationship.OPEN_RELATIONSHIP: 0.0126,
    Relationship.WIDOWED: 0.0050,
    Relationship.DOMESTIC_PARTNERSHIP: 0.0108,
    Relationship.CIVIL_UNION: 0.0039,
}

#: Base probability that a field is *publicly shared* — Table 2.
FIELD_SHARE_PROBABILITY: dict[str, float] = {
    "gender": 0.9767,
    "education": 0.2711,
    "places_lived": 0.2675,
    "employment": 0.2147,
    "phrase": 0.1479,
    "other_profiles": 0.1348,
    "occupation": 0.1327,
    "contributor_to": 0.1315,
    "introduction": 0.0780,
    "other_names": 0.0439,
    "relationship": 0.0431,
    "bragging_rights": 0.0390,
    "recommended_links": 0.0363,
    "looking_for": 0.0274,
    "work_contact": 0.0022,
    "home_contact": 0.0021,
}

#: Overall tel-user rate: 72,736 of 27,556,390 profiles (Section 3.2).
TEL_USER_RATE = 0.0026

#: Gender affinities of phone sharing, from Table 3's tel-user column
#: (85.99% male vs 67.65% baseline, etc.).
TEL_GENDER_AFFINITY: dict[Gender, float] = {
    Gender.MALE: 0.8599 / 0.6765,
    Gender.FEMALE: 0.1126 / 0.3146,
    Gender.OTHER: 0.0275 / 0.0089,
}

#: Relationship affinities of phone sharing (tel share / all share).
TEL_RELATIONSHIP_AFFINITY: dict[Relationship, float] = {
    Relationship.SINGLE: 0.5724 / 0.4282,
    Relationship.MARRIED: 0.2103 / 0.2659,
    Relationship.IN_A_RELATIONSHIP: 0.1023 / 0.1980,
    Relationship.ITS_COMPLICATED: 0.0398 / 0.0316,
    Relationship.ENGAGED: 0.0298 / 0.0439,
    Relationship.OPEN_RELATIONSHIP: 0.0277 / 0.0126,
    Relationship.WIDOWED: 0.0058 / 0.0050,
    Relationship.DOMESTIC_PARTNERSHIP: 0.0077 / 0.0108,
    Relationship.CIVIL_UNION: 0.0041 / 0.0039,
}

#: Shape of the per-user disclosure propensity (gamma distributed, mean 1).
#: Larger variance widens the gap between tel-users and the population in
#: Figure 2, because phone sharing is weighted by the same propensity.
DISCLOSURE_GAMMA_SHAPE = 1.6

#: Exponent coupling phone sharing to disclosure propensity: tel-users are
#: drawn preferentially from high-disclosure users (Figure 2's separation),
#: putting the typical tel-user near 2.5x the population disclosure and
#: reproducing the 66%-vs-10% share-more-than-6-fields gap.
TEL_DISCLOSURE_EXPONENT = 3.5

#: The disclosure factor is capped before exponentiation. Without the cap
#: a handful of extreme-z users dominate the sampling weights and the
#: gender/relationship skews of Table 3 wash out of small tel-user samples.
TEL_DISCLOSURE_CAP = 3.0


def _normalized(table: dict, keys: list) -> np.ndarray:
    probs = np.array([table[k] for k in keys], dtype=float)
    return probs / probs.sum()


class DemographicsSampler:
    """Draws genders, relationship statuses and disclosure propensities."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._genders = list(GENDER_DISTRIBUTION)
        self._gender_p = _normalized(GENDER_DISTRIBUTION, self._genders)
        self._statuses = list(RELATIONSHIP_DISTRIBUTION)
        self._status_p = _normalized(RELATIONSHIP_DISTRIBUTION, self._statuses)

    def sample_genders(self, n: int) -> list[Gender]:
        idx = self._rng.choice(len(self._genders), size=n, p=self._gender_p)
        return [self._genders[i] for i in idx]

    def sample_relationships(self, n: int) -> list[Relationship]:
        idx = self._rng.choice(len(self._statuses), size=n, p=self._status_p)
        return [self._statuses[i] for i in idx]

    def sample_disclosure(self, n: int) -> np.ndarray:
        """Per-user disclosure propensity, gamma with mean 1."""
        shape = DISCLOSURE_GAMMA_SHAPE
        return self._rng.gamma(shape, 1.0 / shape, size=n)


def tel_user_weights(
    genders: list[Gender],
    relationships: list[Relationship],
    disclosure: np.ndarray,
    country_affinity: np.ndarray,
) -> np.ndarray:
    """Unnormalised phone-sharing weight per user.

    Combines the Table 3 skews (gender, relationship, country) with the
    disclosure propensity driving Figure 2. The caller scales the weights
    so that the expected tel-user count matches :data:`TEL_USER_RATE`.
    """
    n = len(genders)
    if not (len(relationships) == len(disclosure) == len(country_affinity) == n):
        raise ValueError("demographic arrays must have equal length")
    weights = np.array([TEL_GENDER_AFFINITY[g] for g in genders])
    weights *= np.array([TEL_RELATIONSHIP_AFFINITY[r] for r in relationships])
    weights *= country_affinity
    weights *= np.power(
        np.minimum(disclosure, TEL_DISCLOSURE_CAP), TEL_DISCLOSURE_EXPONENT
    )
    return weights
