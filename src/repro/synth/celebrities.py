"""Celebrity seeding: the hubs of the synthetic Google+ graph.

Table 1 of the paper lists the twenty most-followed users; seven of the
twenty are IT-industry figures, which the paper calls out as the service's
signature. The synthetic world plants a matching set of *global* celebrity
archetypes (same names, occupations and countries) plus ten per-country
celebrities per top-10 country carrying the exact Table 5 occupation
sequences. The graph generator gives celebrities Zipf-decaying attachment
weight so the crawled in-degree ranking reproduces both tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.models import Occupation

from .occupations import CELEBRITY_OCCUPATIONS


@dataclass(frozen=True)
class CelebritySpec:
    """One seeded celebrity: rank drives attachment weight."""

    name: str
    about: str
    occupation: Occupation
    country: str
    global_rank: int  # 1 = most followed; 0 = per-country celebrity


#: Table 1: the global top-20, with occupation codes and home countries.
GLOBAL_CELEBRITIES: tuple[CelebritySpec, ...] = (
    CelebritySpec("Larry Page", "IT (Google)", Occupation.IT, "US", 1),
    CelebritySpec("Mark Zuckerberg", "IT (Facebook)", Occupation.IT, "US", 2),
    CelebritySpec("Britney Spears", "Musician", Occupation.MUSICIAN, "US", 3),
    CelebritySpec("Snoop Dogg", "Musician", Occupation.MUSICIAN, "US", 4),
    CelebritySpec("Sergey Brin", "IT (Google)", Occupation.IT, "US", 5),
    CelebritySpec("Tyra Banks", "Model", Occupation.MODEL, "US", 6),
    CelebritySpec("Vic Gundotra", "IT (Google)", Occupation.IT, "US", 7),
    CelebritySpec("Paris Hilton", "Socialite", Occupation.SOCIALITE, "US", 8),
    CelebritySpec("Richard Branson", "Businessman (Virgin Group)",
                  Occupation.BUSINESSMAN, "GB", 9),
    CelebritySpec("Dane Cook", "Comedian", Occupation.COMEDIAN, "US", 10),
    CelebritySpec("Jessi June", "Model", Occupation.MODEL, "US", 11),
    CelebritySpec("Trey Ratcliff", "Blogger", Occupation.BLOGGER, "US", 12),
    CelebritySpec("will.i.am", "Musician", Occupation.MUSICIAN, "US", 13),
    CelebritySpec("Felicia Day", "Actor", Occupation.ACTOR, "US", 14),
    CelebritySpec("Thomas Hawk", "Blogger", Occupation.BLOGGER, "US", 15),
    CelebritySpec("Tom Anderson", "IT (Myspace)", Occupation.IT, "US", 16),
    CelebritySpec("Pete Cashmore", "IT (Mashable)", Occupation.IT, "US", 17),
    CelebritySpec("Guy Kawasaki", "IT (Apple) & Writer", Occupation.IT, "US", 18),
    CelebritySpec("Wil Wheaton", "Actor & Writer", Occupation.ACTOR, "US", 19),
    CelebritySpec("Ron Garan", "Astronaut (NASA)", Occupation.ASTRONAUT, "US", 20),
)


def national_celebrities() -> list[CelebritySpec]:
    """Ten synthetic celebrities per top-10 country (Table 5 sequences)."""
    specs: list[CelebritySpec] = []
    for country, occupations in CELEBRITY_OCCUPATIONS.items():
        for position, occupation in enumerate(occupations, start=1):
            specs.append(
                CelebritySpec(
                    name=f"{country} Celebrity {position}",
                    about=f"Top user #{position} in {country}",
                    occupation=occupation,
                    country=country,
                    global_rank=0,
                )
            )
    return specs


def attachment_weight(
    spec: CelebritySpec,
    n_users: int,
    country_users: int,
    national_position: int = 0,
) -> float:
    """Zipf-decaying preferential-attachment boost for a celebrity.

    Weights scale with the population so the celebrities' share of all
    edges is size-invariant: the paper's top user (Larry Page, 3.7M
    circles) holds roughly 0.6% of all 575M edges. Global celebrities get
    ``~3.5% of initial tokens / rank``; national celebrities a boost
    proportional to their country's user count with a *shallow* Zipf
    decay (``p^-0.7``), so all ten of them outrank organic users in the
    national in-degree ranking (the Table 5 rows) without distorting the
    global tail.
    """
    if spec.global_rank > 0:
        return 0.035 * n_users / spec.global_rank
    base = min(0.09 * max(60, country_users), 0.015 * n_users)
    return base / max(1, national_position) ** 0.7
