"""City gazetteer: real coordinates for "places lived" generation.

Google+ geocoded free-text place names; the synthetic world instead
samples a city from this gazetteer (population-weighted within the user's
country) and jitters the coordinates by a few hundredths of a degree, so
same-city users sit within ~10 miles of each other — the short-range mass
of Figure 9a. Coordinates are approximate city centres; weights are rough
metro populations in millions and only matter relatively, per country.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class City:
    """One gazetteer entry."""

    name: str
    country: str
    latitude: float
    longitude: float
    weight: float


#: (name, lat, lon, weight) per country code.
_RAW_GAZETTEER: dict[str, tuple[tuple[str, float, float, float], ...]] = {
    "US": (
        ("New York", 40.71, -74.01, 19.0),
        ("Los Angeles", 34.05, -118.24, 12.9),
        ("Chicago", 41.88, -87.63, 9.5),
        ("Houston", 29.76, -95.37, 6.1),
        ("San Francisco", 37.77, -122.42, 4.5),
        ("Seattle", 47.61, -122.33, 3.5),
        ("Miami", 25.76, -80.19, 5.6),
        ("Boston", 42.36, -71.06, 4.6),
    ),
    "IN": (
        ("Mumbai", 19.08, 72.88, 20.7),
        ("Delhi", 28.61, 77.21, 21.8),
        ("Bangalore", 12.97, 77.59, 8.5),
        ("Chennai", 13.08, 80.27, 8.7),
        ("Kolkata", 22.57, 88.36, 14.1),
        ("Hyderabad", 17.39, 78.49, 7.7),
    ),
    "BR": (
        ("Sao Paulo", -23.55, -46.63, 19.9),
        ("Rio de Janeiro", -22.91, -43.17, 12.0),
        ("Belo Horizonte", -19.92, -43.94, 5.4),
        ("Brasilia", -15.79, -47.88, 3.8),
        ("Salvador", -12.97, -38.50, 3.9),
        ("Porto Alegre", -30.03, -51.23, 4.0),
    ),
    "GB": (
        ("London", 51.51, -0.13, 13.6),
        ("Manchester", 53.48, -2.24, 2.7),
        ("Birmingham", 52.49, -1.89, 2.4),
        ("Glasgow", 55.86, -4.25, 1.2),
        ("Leeds", 53.80, -1.55, 1.9),
    ),
    "CA": (
        ("Toronto", 43.65, -79.38, 5.9),
        ("Montreal", 45.50, -73.57, 3.9),
        ("Vancouver", 49.28, -123.12, 2.4),
        ("Calgary", 51.05, -114.07, 1.3),
        ("Ottawa", 45.42, -75.70, 1.3),
    ),
    "DE": (
        ("Berlin", 52.52, 13.41, 4.3),
        ("Hamburg", 53.55, 9.99, 3.1),
        ("Munich", 48.14, 11.58, 2.6),
        ("Cologne", 50.94, 6.96, 2.0),
        ("Frankfurt", 50.11, 8.68, 2.3),
    ),
    "ID": (
        ("Jakarta", -6.21, 106.85, 28.0),
        ("Surabaya", -7.25, 112.75, 5.6),
        ("Bandung", -6.92, 107.61, 6.9),
        ("Medan", 3.59, 98.67, 4.1),
    ),
    "MX": (
        ("Mexico City", 19.43, -99.13, 20.1),
        ("Guadalajara", 20.67, -103.35, 4.4),
        ("Monterrey", 25.69, -100.32, 4.1),
        ("Puebla", 19.04, -98.21, 2.7),
    ),
    "IT": (
        ("Rome", 41.90, 12.50, 4.3),
        ("Milan", 45.46, 9.19, 5.2),
        ("Naples", 40.85, 14.27, 3.7),
        ("Turin", 45.07, 7.69, 1.7),
    ),
    "ES": (
        ("Madrid", 40.42, -3.70, 6.3),
        ("Barcelona", 41.39, 2.17, 5.4),
        ("Valencia", 39.47, -0.38, 1.7),
        ("Seville", 37.39, -5.99, 1.5),
    ),
    "VN": (
        ("Ho Chi Minh City", 10.82, 106.63, 7.4),
        ("Hanoi", 21.03, 105.85, 6.5),
        ("Da Nang", 16.05, 108.22, 1.0),
    ),
    "FR": (
        ("Paris", 48.86, 2.35, 12.2),
        ("Lyon", 45.76, 4.84, 2.2),
        ("Marseille", 43.30, 5.37, 1.7),
        ("Toulouse", 43.60, 1.44, 1.3),
    ),
    "RU": (
        ("Moscow", 55.76, 37.62, 16.2),
        ("Saint Petersburg", 59.93, 30.34, 5.0),
        ("Novosibirsk", 55.03, 82.92, 1.5),
        ("Yekaterinburg", 56.84, 60.65, 1.4),
    ),
    "TH": (
        ("Bangkok", 13.76, 100.50, 14.6),
        ("Chiang Mai", 18.79, 98.98, 1.0),
        ("Phuket", 7.89, 98.40, 0.4),
    ),
    "JP": (
        ("Tokyo", 35.68, 139.69, 37.0),
        ("Osaka", 34.69, 135.50, 19.3),
        ("Nagoya", 35.18, 136.91, 9.1),
        ("Fukuoka", 33.59, 130.40, 5.5),
    ),
    "CN": (
        ("Beijing", 39.90, 116.41, 19.6),
        ("Shanghai", 31.23, 121.47, 22.3),
        ("Guangzhou", 23.13, 113.26, 11.1),
        ("Shenzhen", 22.54, 114.06, 10.4),
        ("Chengdu", 30.57, 104.07, 7.7),
    ),
    "TW": (
        ("Taipei", 25.03, 121.57, 6.9),
        ("Kaohsiung", 22.63, 120.30, 2.8),
        ("Taichung", 24.15, 120.67, 2.7),
    ),
    "AR": (
        ("Buenos Aires", -34.60, -58.38, 13.6),
        ("Cordoba", -31.42, -64.18, 1.5),
        ("Rosario", -32.94, -60.64, 1.3),
    ),
    "AU": (
        ("Sydney", -33.87, 151.21, 4.6),
        ("Melbourne", -37.81, 144.96, 4.1),
        ("Brisbane", -27.47, 153.03, 2.1),
        ("Perth", -31.95, 115.86, 1.7),
    ),
    "IR": (
        ("Tehran", 35.69, 51.39, 12.2),
        ("Mashhad", 36.26, 59.62, 2.8),
        ("Isfahan", 32.65, 51.67, 1.8),
    ),
    "PL": (
        ("Warsaw", 52.23, 21.01, 3.1),
        ("Krakow", 50.06, 19.94, 1.4),
        ("Wroclaw", 51.11, 17.04, 1.0),
    ),
    "NL": (
        ("Amsterdam", 52.37, 4.90, 2.4),
        ("Rotterdam", 51.92, 4.48, 1.4),
        ("The Hague", 52.08, 4.31, 1.0),
    ),
    "TR": (
        ("Istanbul", 41.01, 28.98, 13.3),
        ("Ankara", 39.93, 32.86, 4.6),
        ("Izmir", 38.42, 27.14, 3.4),
    ),
    "PH": (
        ("Manila", 14.60, 120.98, 11.9),
        ("Cebu", 10.32, 123.89, 2.6),
        ("Davao", 7.19, 125.46, 1.5),
    ),
    "ZA": (
        ("Johannesburg", -26.20, 28.05, 7.9),
        ("Cape Town", -33.92, 18.42, 3.7),
        ("Durban", -29.86, 31.02, 3.4),
    ),
    "NG": (
        ("Lagos", 6.52, 3.38, 11.2),
        ("Abuja", 9.06, 7.49, 2.2),
        ("Kano", 12.00, 8.52, 3.6),
    ),
    "EG": (
        ("Cairo", 30.04, 31.24, 17.3),
        ("Alexandria", 31.20, 29.92, 4.4),
        ("Giza", 30.01, 31.21, 3.6),
    ),
    "KR": (
        ("Seoul", 37.57, 126.98, 23.5),
        ("Busan", 35.18, 129.08, 3.4),
        ("Incheon", 37.46, 126.71, 2.8),
    ),
    "SE": (
        ("Stockholm", 59.33, 18.07, 2.1),
        ("Gothenburg", 57.71, 11.97, 1.0),
        ("Malmo", 55.60, 13.00, 0.7),
    ),
    "PT": (
        ("Lisbon", 38.72, -9.14, 2.8),
        ("Porto", 41.15, -8.61, 1.7),
    ),
    "RO": (
        ("Bucharest", 44.43, 26.10, 1.9),
        ("Cluj-Napoca", 46.77, 23.62, 0.4),
    ),
    "CO": (
        ("Bogota", 4.71, -74.07, 9.0),
        ("Medellin", 6.24, -75.58, 3.6),
        ("Cali", 3.45, -76.53, 2.6),
    ),
    "CL": (
        ("Santiago", -33.45, -70.67, 6.7),
        ("Valparaiso", -33.05, -71.62, 1.0),
    ),
    "MY": (
        ("Kuala Lumpur", 3.14, 101.69, 6.9),
        ("Penang", 5.42, 100.33, 1.6),
    ),
    "PK": (
        ("Karachi", 24.86, 67.01, 13.9),
        ("Lahore", 31.55, 74.34, 8.7),
        ("Islamabad", 33.68, 73.05, 1.4),
    ),
}


def build_gazetteer() -> dict[str, tuple[City, ...]]:
    """Gazetteer keyed by country code."""
    return {
        code: tuple(City(name, code, lat, lon, w) for name, lat, lon, w in rows)
        for code, rows in _RAW_GAZETTEER.items()
    }


class CitySampler:
    """Population-weighted city sampling per country, with coordinate jitter.

    ``jitter_deg`` spreads users across the metro area (0.05 degrees is
    roughly 3.5 miles at the equator), keeping same-city pairs within the
    ~10-mile bucket of Figure 9a.
    """

    def __init__(self, jitter_deg: float = 0.04):
        self._gazetteer = build_gazetteer()
        self._jitter = jitter_deg
        self._weights: dict[str, np.ndarray] = {}
        self._cums: dict[str, np.ndarray] = {}
        self._latlons: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for code, cities in self._gazetteer.items():
            weights = np.array([c.weight for c in cities], dtype=float)
            self._weights[code] = weights / weights.sum()
            self._cums[code] = self._weights[code].cumsum()
            self._latlons[code] = (
                np.array([c.latitude for c in cities]),
                np.array([c.longitude for c in cities]),
            )

    def countries(self) -> list[str]:
        return list(self._gazetteer)

    def cities_of(self, country: str) -> tuple[City, ...]:
        return self._gazetteer[country]

    def sample_city_index(self, country: str, rng: np.random.Generator) -> int:
        """Pick a city index within a country, population-weighted."""
        return int(rng.choice(len(self._gazetteer[country]), p=self._weights[country]))

    def sample_city_indices(
        self, countries: list[str], rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized :meth:`sample_city_index`, one country code per row.

        Rows are grouped by country and drawn by inverse-CDF lookup over
        the country's cumulative weights — the same distribution as the
        scalar path, but a different consumption of the RNG stream (one
        uniform per row instead of ``rng.choice`` internals).
        """
        codes = np.asarray(countries)
        rolls = rng.random(len(codes))
        out = np.empty(len(codes), dtype=np.int64)
        for code in np.unique(codes):
            mask = codes == code
            cum = self._cums[str(code)]
            idx = cum.searchsorted(rolls[mask], side="right")
            out[mask] = np.minimum(idx, len(cum) - 1)
        return out

    def coordinates_for_many(
        self,
        countries: list[str],
        city_indices: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`coordinates_for` (jittered lat/lon arrays).

        Draws all latitude jitters, then all longitude jitters — a
        different RNG consumption order than the scalar per-user path,
        with identical marginal distributions.
        """
        codes = np.asarray(countries)
        n = len(codes)
        lats = np.empty(n)
        lons = np.empty(n)
        for code in np.unique(codes):
            mask = codes == code
            base_lat, base_lon = self._latlons[str(code)]
            picks = city_indices[mask]
            lats[mask] = base_lat[picks]
            lons[mask] = base_lon[picks]
        lats = lats + rng.normal(0.0, self._jitter, size=n)
        lons = lons + rng.normal(0.0, self._jitter, size=n)
        return np.clip(lats, -90.0, 90.0), (lons + 180.0) % 360.0 - 180.0

    def coordinates_for(
        self, country: str, city_index: int, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Jittered (lat, lon) for a resident of the given city."""
        city = self._gazetteer[country][city_index]
        lat = city.latitude + rng.normal(0.0, self._jitter)
        lon = city.longitude + rng.normal(0.0, self._jitter)
        return float(np.clip(lat, -90.0, 90.0)), float((lon + 180.0) % 360.0 - 180.0)
