"""Content activity simulation — the paper's second future-work item.

Section 7: *"having seen the key differences of Google+ from other online
social networks, we would like to understand how different privacy
settings and openness impact the types of conversations and the patterns
of content sharing."*

This module generates posting and resharing activity *through the
platform API* (:class:`repro.platform.service.GooglePlusService`): users
publish posts — public or scoped to one of their circles, with the
public/scoped split driven by the same per-country openness culture that
shapes their profiles — and content then cascades: followers who can see
a post may +1 it or reshare it to their own audience, reshares of
reshares forming diffusion trees. The analysis side lives in
:mod:`repro.analysis.diffusion`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.platform.service import GooglePlusService, Post

from .world import SyntheticWorld


@dataclass(frozen=True)
class ActivityConfig:
    """Knobs of the activity simulation.

    * ``posts_per_user`` — mean original posts per user (Poisson);
      scaled by the user's disclosure propensity, so prolific sharers
      are also the privacy risk-takers, as Section 3.2 suggests;
    * ``public_post_base`` — base probability a post is public rather
      than circle-scoped; multiplied by the author country's openness;
    * ``reshare_prob`` / ``plus_one_prob`` — per-viewing follower
      engagement probabilities (reshares decay with depth);
    * ``reshare_depth_decay`` — multiplicative decay of the reshare
      probability per cascade level;
    * ``max_audience_sample`` — at most this many followers are offered
      each post (keeps celebrity cascades tractable).
    """

    posts_per_user: float = 0.4
    public_post_base: float = 0.55
    reshare_prob: float = 0.05
    plus_one_prob: float = 0.12
    reshare_depth_decay: float = 0.6
    max_audience_sample: int = 150
    max_cascade_size: int = 2_000


@dataclass
class Cascade:
    """One original post and everything that grew from it."""

    root_post_id: int
    author_id: int
    is_public: bool
    reshare_post_ids: list[int] = field(default_factory=list)
    resharer_ids: list[int] = field(default_factory=list)
    depth: int = 0
    plus_ones: int = 0
    audience: int = 0  # distinct users who saw the root or a reshare

    @property
    def size(self) -> int:
        """Nodes in the diffusion tree (root + reshares)."""
        return 1 + len(self.reshare_post_ids)


@dataclass
class ActivityLog:
    """The full product of one activity simulation."""

    cascades: list[Cascade]
    n_posts: int = 0
    n_reshares: int = 0
    n_plus_ones: int = 0

    def public_cascades(self) -> list[Cascade]:
        return [c for c in self.cascades if c.is_public]

    def scoped_cascades(self) -> list[Cascade]:
        return [c for c in self.cascades if not c.is_public]


def _audience_of(
    service: GooglePlusService,
    user_id: int,
    rng: np.random.Generator,
    cap: int,
) -> list[int]:
    """A sample of a user's followers who would see a new post."""
    followers = service.followers(user_id)
    if len(followers) <= cap:
        return followers
    chosen = rng.choice(len(followers), size=cap, replace=False)
    return [followers[i] for i in chosen]


def simulate_activity(
    world: SyntheticWorld,
    config: ActivityConfig | None = None,
    seed: int = 0,
    max_users: int | None = None,
) -> ActivityLog:
    """Generate posts, +1s and reshare cascades over a world's service.

    ``max_users`` limits how many users author original posts (highest
    ids first are skipped), which keeps large worlds affordable; the
    engagement side always uses the full follower structure.
    """
    config = config if config is not None else ActivityConfig()
    rng = np.random.default_rng(seed)
    service = world.service
    population = world.population
    n_authors = population.n if max_users is None else min(max_users, population.n)

    post_counts = rng.poisson(
        config.posts_per_user * np.minimum(population.disclosure[:n_authors], 3.0)
    )
    log = ActivityLog(cascades=[])
    for author_id in range(n_authors):
        for _ in range(int(post_counts[author_id])):
            cascade = _run_cascade(service, population, author_id, config, rng)
            log.cascades.append(cascade)
            log.n_posts += 1
            log.n_reshares += len(cascade.reshare_post_ids)
            log.n_plus_ones += cascade.plus_ones
    return log


def _pick_visibility(
    population, author_id: int, config: ActivityConfig, rng: np.random.Generator
) -> frozenset[str] | None:
    """Public (None) or a single-circle scope, by the author's culture."""
    openness = population.openness_of(author_id)
    if rng.random() < min(0.98, config.public_post_base * openness):
        return None
    return frozenset({"friends"})


def _run_cascade(
    service: GooglePlusService,
    population,
    author_id: int,
    config: ActivityConfig,
    rng: np.random.Generator,
) -> Cascade:
    to_circles = _pick_visibility(population, author_id, config, rng)
    root = service.publish(author_id, f"post by {author_id}", to_circles=to_circles)
    cascade = Cascade(
        root_post_id=root.post_id,
        author_id=author_id,
        is_public=to_circles is None,
    )
    seen: set[int] = {author_id}
    # Queue of (post, poster, depth): followers of `poster` may engage.
    queue: deque[tuple[Post, int, int]] = deque([(root, author_id, 0)])
    while queue:
        post, poster, depth = queue.popleft()
        if cascade.size >= config.max_cascade_size:
            break
        audience = _audience_of(service, poster, rng, config.max_audience_sample)
        reshare_p = config.reshare_prob * config.reshare_depth_decay**depth
        rolls = rng.random((len(audience), 2))
        for follower, (reshare_roll, plus_roll) in zip(audience, rolls):
            if follower in seen:
                continue
            if not service.can_view_post(post.post_id, follower):
                continue
            seen.add(follower)
            if plus_roll < config.plus_one_prob:
                service.plus_one(follower, post.post_id)
                cascade.plus_ones += 1
            if reshare_roll < reshare_p:
                reshare = service.publish(
                    follower,
                    f"reshare of {post.post_id}",
                    reshared_from=post.post_id,
                )
                cascade.reshare_post_ids.append(reshare.post_id)
                cascade.resharer_ids.append(follower)
                cascade.depth = max(cascade.depth, depth + 1)
                queue.append((reshare, follower, depth + 1))
    cascade.audience = len(seen) - 1
    return cascade
