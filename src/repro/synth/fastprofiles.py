"""Vectorized profile generation — the ``engine="fast"`` counterpart of
:func:`repro.synth.profiles.build_profiles`.

The reference builder draws ~30 scalar uniforms per user (one or two per
field decision). This module draws them as whole-population matrices —
one ``(n, n_fields)`` public-share Bernoulli matrix, one hidden-field
matrix, one privacy-level matrix — and then assembles the
:class:`~repro.platform.models.UserProfile` objects in a lean loop that
only constructs field values that actually appear on the profile.

Equivalence contract (same as :mod:`repro.synth.fastgen`): identical
marginal distributions per decision, *not* an identical RNG stream. Every
decision gets its own roll (the reference draws a second roll only when
the first fails, and reuses none), and rolls are consumed column-by-column
rather than user-by-user. Determinism holds: the same seed produces the
same profiles across runs and processes, because everything flows from the
caller's ``Generator`` in a fixed order and the phone prefix uses
``zlib.crc32`` (never salted ``hash()``).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.platform.models import (
    ContactInfo,
    FieldValue,
    LookingFor,
    OCCUPATION_LABELS,
    Place,
    UserProfile,
)
from repro.platform.gcpause import gc_paused
from repro.platform.privacy import PUBLIC

from .cities import CitySampler
from .config import WorldConfig
from .demographics import FIELD_SHARE_PROBABILITY
from .profiles import _HIDDEN_LEVELS, Population

#: The decide()-style fields, in the reference builder's set order.
#: ``gender`` and the contact blocks are handled specially, as there.
_DECIDE_FIELDS: tuple[str, ...] = (
    "places_lived",
    "education",
    "employment",
    "phrase",
    "other_profiles",
    "occupation",
    "contributor_to",
    "introduction",
    "other_names",
    "relationship",
    "bragging_rights",
    "recommended_links",
    "looking_for",
)

#: Fields celebrities always publish (curated public presence).
_CELEBRITY_PUBLIC: tuple[str, ...] = (
    "occupation",
    "places_lived",
    "employment",
)


def _decision_matrices(
    population: Population,
    config: WorldConfig,
    openness: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(user, field) presence status and hidden privacy level.

    Status: 0 = absent, 1 = public, 2 = hidden (privacy from ``level``).
    """
    n = population.n
    k = len(_DECIDE_FIELDS)
    base = np.array([FIELD_SHARE_PROBABILITY[f] for f in _DECIDE_FIELDS])
    factor = np.repeat(openness[:, None], k, axis=1)
    factor[:, _DECIDE_FIELDS.index("places_lived")] = 1.0
    p_public = np.minimum(
        0.995, base[None, :] * factor * population.disclosure[:, None]
    )
    public = rng.random((n, k)) < p_public
    hidden = rng.random((n, k)) < config.profiles.hidden_field_prob
    status = np.where(public, 1, np.where(hidden, 2, 0)).astype(np.int8)
    level = rng.integers(0, len(_HIDDEN_LEVELS), size=(n, k), dtype=np.int8)

    # Tel-users always carry a relationship status: 40% public (Table 3),
    # the rest hidden at a uniform level.
    rel = _DECIDE_FIELDS.index("relationship")
    tel = np.flatnonzero(population.tel_users)
    if len(tel):
        tel_public = rng.random(len(tel)) < 0.40
        status[tel, rel] = np.where(tel_public, 1, 2)
        level[tel, rel] = rng.integers(
            0, len(_HIDDEN_LEVELS), size=len(tel), dtype=np.int8
        )
    # Celebrities run open, curated profiles: forced-public fields.
    celebs = np.fromiter(
        population.celebrity_spec, dtype=np.int64, count=len(population.celebrity_spec)
    )
    if len(celebs):
        for key in _CELEBRITY_PUBLIC:
            status[celebs, _DECIDE_FIELDS.index(key)] = 1
    return status, level


def _places_values(
    population: Population,
    config: WorldConfig,
    sampler: CitySampler,
    present: np.ndarray,
    rng: np.random.Generator,
) -> dict[int, list[Place]]:
    """Places-lived lists for every user whose field is present.

    Previous places are drawn in one batch across the population (foreign
    flag, country, city, jittered coordinates), then sliced per owner; the
    current city always closes the list, as in the reference.
    """
    owners = np.flatnonzero(present)
    n_present = len(owners)
    multi = rng.random(n_present) < config.profiles.multi_place_prob
    extra = np.where(multi, rng.integers(1, 3, size=n_present), 0)
    total = int(extra.sum())

    codes = np.asarray(population.country_codes)
    gaz_codes = np.asarray(sampler.countries())
    prev_owner = np.repeat(owners, extra)
    foreign = rng.random(total) < config.profiles.foreign_previous_place_prob
    prev_codes = codes[prev_owner].copy()
    prev_codes[foreign] = gaz_codes[rng.integers(0, len(gaz_codes), size=int(foreign.sum()))]
    prev_list = [str(c) for c in prev_codes]
    prev_city = sampler.sample_city_indices(prev_list, rng)
    prev_lat, prev_lon = sampler.coordinates_for_many(prev_list, prev_city, rng)

    names_of = {
        code: [c.name for c in sampler.cities_of(code)] for code in sampler.countries()
    }
    prev_places = [
        Place(names_of[code][city], lat, lon, code)
        for code, city, lat, lon in zip(
            prev_list, prev_city.tolist(), prev_lat.tolist(), prev_lon.tolist()
        )
    ]
    offsets = np.zeros(n_present + 1, dtype=np.int64)
    np.cumsum(extra, out=offsets[1:])
    city_idx = population.city_indices
    lats = population.latitudes
    lons = population.longitudes
    result: dict[int, list[Place]] = {}
    country_list = population.country_codes
    for row, user_id in enumerate(owners.tolist()):
        code = country_list[user_id]
        places = prev_places[offsets[row] : offsets[row + 1]]
        places.append(
            Place(
                names_of[code][int(city_idx[user_id])],
                float(lats[user_id]),
                float(lons[user_id]),
                code,
            )
        )
        result[user_id] = places
    return result


def build_profiles_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> dict[int, UserProfile]:
    """Drop-in fast counterpart of :func:`repro.synth.profiles.build_profiles`."""
    with gc_paused():
        return _build_profiles_fast(population, config, rng)


def _build_profiles_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> dict[int, UserProfile]:
    n = population.n
    sampler = CitySampler()
    openness = np.array(
        [population.countries[c].openness for c in population.country_codes]
    )
    lists_public = (
        rng.random(n) >= config.profiles.private_lists_prob
    ).tolist()

    # Gender availability barely varies by culture; soft openness exponent,
    # exactly as the reference.
    gender_p = np.minimum(
        0.999, FIELD_SHARE_PROBABILITY["gender"] * openness**0.05
    )
    # Note: the reference routes gender around decide(), so the celebrity
    # forced-public rule never applies to it; mirror that exactly.
    gender_public = rng.random(n) < gender_p
    gender_level = rng.integers(0, len(_HIDDEN_LEVELS), size=n)

    status, level = _decision_matrices(population, config, openness, rng)
    places_col = _DECIDE_FIELDS.index("places_lived")
    places = _places_values(
        population, config, sampler, status[:, places_col] > 0, rng
    )

    looking_for_options = list(LookingFor)
    looking_idx = rng.integers(0, len(looking_for_options), size=n)

    tel_roll = rng.random(n).tolist()
    sliver = rng.random(n) < 0.01
    sliver_level = rng.integers(0, len(_HIDDEN_LEVELS), size=n).tolist()

    both_frac = config.profiles.tel_both_fraction
    work_frac = both_frac + config.profiles.tel_work_only_fraction
    hidden_levels = _HIDDEN_LEVELS
    genders = population.genders
    relationships = population.relationships
    occupations = population.occupations
    spec_of = population.celebrity_spec
    country_codes = population.country_codes

    # Assembly is column-major: every fields dict starts with gender,
    # then each decide() column inserts its values for the users that
    # carry it, walking the columns in the reference field order — so the
    # per-user key order matches the reference exactly. The synthetic
    # values repeat with small periods, so whole *FieldValue* instances
    # are cached per (value, privacy level) and shared between users —
    # FieldValue is frozen and compares by value, so sharing is
    # indistinguishable from constructing one per user. Only per-user
    # values (places, per-user URLs/names) and list-valued fields (whose
    # inner list stays fresh per user) are built individually.
    levels_all = (PUBLIC, *hidden_levels)
    n_levels = len(levels_all)
    # Privacy-level code per user per column: 0 = public, 1 + j = the
    # j-th hidden level. Columns index this with their own status row.
    gcode = np.where(gender_public, 0, gender_level + 1).tolist()
    gender_vals = list(dict.fromkeys(genders))
    gender_index = {v: j for j, v in enumerate(gender_vals)}
    gcache = [
        FieldValue(v, lev) for v in gender_vals for lev in levels_all
    ]
    gi = list(map(gender_index.__getitem__, genders))
    fields_by_user: list[dict[str, FieldValue]] = [
        {"gender": gcache[gi[i] * n_levels + gcode[i]]} for i in range(n)
    ]
    edu_pool = [f"Studied at University {i}" for i in range(409)]
    emp_pool = [f"Works at Company {i}" for i in range(997)]
    contrib_pool = [f"https://blog.example/{i}" for i in range(211)]
    rec_pool = [f"https://links.example/{i}" for i in range(53)]

    def _pool_cache(values) -> list[FieldValue]:
        """FieldValue per (pool value, privacy level), level-minor."""
        return [FieldValue(v, lev) for v in values for lev in levels_all]

    user_ids = np.arange(n, dtype=np.int64)
    for col, key in enumerate(_DECIDE_FIELDS):
        scol = status[:, col]
        idx_arr = np.flatnonzero(scol)
        idx = idx_arr.tolist()
        # 0 = public, 1 + j = j-th hidden level (meaningful where scol).
        code = np.where(scol == 1, 0, level[:, col] + 1)
        if key == "places_lived":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    places[i], levels_all[codes[i]]
                )
        elif key == "education":
            cache = _pool_cache(edu_pool)
            ci = ((user_ids % 409) * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "employment":
            cache = _pool_cache(emp_pool)
            ci = ((user_ids % 997) * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "phrase":
            cache = _pool_cache(["Carpe diem"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "other_profiles":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [f"https://social.example/{i}"], levels_all[codes[i]]
                )
        elif key == "occupation":
            occ_vals = list(dict.fromkeys(occupations))
            occ_index = {v: j for j, v in enumerate(occ_vals)}
            cache = _pool_cache([OCCUPATION_LABELS[v] for v in occ_vals])
            oi = np.fromiter(
                map(occ_index.__getitem__, occupations), np.int64, count=n
            )
            ci = (oi * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "contributor_to":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [contrib_pool[i % 211]], levels_all[codes[i]]
                )
        elif key == "introduction":
            cache = _pool_cache(["Hi, I joined Google+!"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "other_names":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    f"U{i:06d}", levels_all[codes[i]]
                )
        elif key == "relationship":
            rel_vals = list(dict.fromkeys(relationships))
            rel_index = {v: j for j, v in enumerate(rel_vals)}
            cache = _pool_cache(rel_vals)
            ri = np.fromiter(
                map(rel_index.__getitem__, relationships), np.int64, count=n
            )
            ci = (ri * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "bragging_rights":
            cache = _pool_cache(["Survived the invite queue"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "recommended_links":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [rec_pool[i % 53]], levels_all[codes[i]]
                )
        else:  # looking_for
            cache = _pool_cache(looking_for_options)
            ci = (looking_idx * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]

    # Contact blocks close each fields dict, exactly as in the reference.
    prefix_of = {
        code: (zlib.crc32(code.encode("ascii")) % 90) + 10
        for code in set(country_codes)
    }
    for i in np.flatnonzero(population.tel_users).tolist():
        prefix = prefix_of[country_codes[i]]
        contact = ContactInfo(
            phone=f"+{prefix} 555 {i % 10_000:04d}",
            email=f"user{i}@example.com",
        )
        fields = fields_by_user[i]
        roll = tel_roll[i]
        if roll < both_frac:
            fields["work_contact"] = FieldValue(contact, PUBLIC)
            fields["home_contact"] = FieldValue(contact, PUBLIC)
        elif roll < work_frac:
            fields["work_contact"] = FieldValue(contact, PUBLIC)
        else:
            fields["home_contact"] = FieldValue(contact, PUBLIC)
    for i in np.flatnonzero(sliver & ~population.tel_users).tolist():
        fields_by_user[i]["work_contact"] = FieldValue(
            ContactInfo(email=f"user{i}@example.com"),
            hidden_levels[sliver_level[i]],
        )

    profiles: dict[int, UserProfile] = {}
    for user_id in range(n):
        spec = spec_of.get(user_id)
        profiles[user_id] = UserProfile(
            user_id=user_id,
            name=spec.name if spec else f"User {user_id:06d}",
            fields=fields_by_user[user_id],
            lists_public=lists_public[user_id],
        )
    return profiles
