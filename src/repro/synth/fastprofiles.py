"""Vectorized profile generation — the ``engine="fast"`` counterpart of
:func:`repro.synth.profiles.build_profiles`.

The reference builder draws ~30 scalar uniforms per user (one or two per
field decision). This module draws them as whole-population matrices —
one ``(n, n_fields)`` public-share Bernoulli matrix, one hidden-field
matrix, one privacy-level matrix — and then assembles the
:class:`~repro.platform.models.UserProfile` objects in a lean loop that
only constructs field values that actually appear on the profile.

Equivalence contract (same as :mod:`repro.synth.fastgen`): identical
marginal distributions per decision, *not* an identical RNG stream. Every
decision gets its own roll (the reference draws a second roll only when
the first fails, and reuses none), and rolls are consumed column-by-column
rather than user-by-user. Determinism holds: the same seed produces the
same profiles across runs and processes, because everything flows from the
caller's ``Generator`` in a fixed order and the phone prefix uses
``zlib.crc32`` (never salted ``hash()``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.platform.columnar import ABSENT, ColumnarProfileStore, FieldColumn
from repro.platform.models import (
    ContactInfo,
    FieldValue,
    LookingFor,
    OCCUPATION_LABELS,
    Place,
    UserProfile,
)
from repro.platform.gcpause import gc_paused
from repro.platform.privacy import PUBLIC

from .cities import CitySampler
from .config import WorldConfig
from .demographics import FIELD_SHARE_PROBABILITY
from .profiles import _HIDDEN_LEVELS, Population

#: The decide()-style fields, in the reference builder's set order.
#: ``gender`` and the contact blocks are handled specially, as there.
_DECIDE_FIELDS: tuple[str, ...] = (
    "places_lived",
    "education",
    "employment",
    "phrase",
    "other_profiles",
    "occupation",
    "contributor_to",
    "introduction",
    "other_names",
    "relationship",
    "bragging_rights",
    "recommended_links",
    "looking_for",
)

#: Fields celebrities always publish (curated public presence).
_CELEBRITY_PUBLIC: tuple[str, ...] = (
    "occupation",
    "places_lived",
    "employment",
)


def _decision_matrices(
    population: Population,
    config: WorldConfig,
    openness: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(user, field) presence status and hidden privacy level.

    Status: 0 = absent, 1 = public, 2 = hidden (privacy from ``level``).
    """
    n = population.n
    k = len(_DECIDE_FIELDS)
    base = np.array([FIELD_SHARE_PROBABILITY[f] for f in _DECIDE_FIELDS])
    factor = np.repeat(openness[:, None], k, axis=1)
    factor[:, _DECIDE_FIELDS.index("places_lived")] = 1.0
    p_public = np.minimum(
        0.995, base[None, :] * factor * population.disclosure[:, None]
    )
    public = rng.random((n, k)) < p_public
    hidden = rng.random((n, k)) < config.profiles.hidden_field_prob
    status = np.where(public, 1, np.where(hidden, 2, 0)).astype(np.int8)
    level = rng.integers(0, len(_HIDDEN_LEVELS), size=(n, k), dtype=np.int8)

    # Tel-users always carry a relationship status: 40% public (Table 3),
    # the rest hidden at a uniform level.
    rel = _DECIDE_FIELDS.index("relationship")
    tel = np.flatnonzero(population.tel_users)
    if len(tel):
        tel_public = rng.random(len(tel)) < 0.40
        status[tel, rel] = np.where(tel_public, 1, 2)
        level[tel, rel] = rng.integers(
            0, len(_HIDDEN_LEVELS), size=len(tel), dtype=np.int8
        )
    # Celebrities run open, curated profiles: forced-public fields.
    celebs = np.fromiter(
        population.celebrity_spec, dtype=np.int64, count=len(population.celebrity_spec)
    )
    if len(celebs):
        for key in _CELEBRITY_PUBLIC:
            status[celebs, _DECIDE_FIELDS.index(key)] = 1
    return status, level


@dataclass
class _PlacesPlan:
    """Every RNG-derived ingredient of the places-lived lists, as arrays.

    ``owners`` (ascending) are the users whose field is present;
    ``offsets`` is the CSR cut of the previous-place rows per owner.
    Both assemblers — dict and columnar — construct identical
    :class:`Place` values from this plan; the columnar store keeps the
    plan itself and builds the lists only on access.
    """

    owners: np.ndarray
    offsets: np.ndarray
    prev_codes: list[str]
    prev_city: np.ndarray
    prev_lat: np.ndarray
    prev_lon: np.ndarray
    names_of: dict[str, list[str]]


def _places_plan(
    population: Population,
    config: WorldConfig,
    sampler: CitySampler,
    present: np.ndarray,
    rng: np.random.Generator,
) -> _PlacesPlan:
    """Draw previous places for every present owner, in one batch.

    The draw order (multi flag, extra count, foreign flag, foreign
    country, city, jittered coordinates) is the RNG contract both
    profile assemblers rely on.
    """
    owners = np.flatnonzero(present)
    n_present = len(owners)
    multi = rng.random(n_present) < config.profiles.multi_place_prob
    extra = np.where(multi, rng.integers(1, 3, size=n_present), 0)
    total = int(extra.sum())

    codes = np.asarray(population.country_codes)
    gaz_codes = np.asarray(sampler.countries())
    prev_owner = np.repeat(owners, extra)
    foreign = rng.random(total) < config.profiles.foreign_previous_place_prob
    prev_codes = codes[prev_owner].copy()
    prev_codes[foreign] = gaz_codes[rng.integers(0, len(gaz_codes), size=int(foreign.sum()))]
    # One shared str per country code, not one per row.
    interned: dict[str, str] = {}
    prev_list = [interned.setdefault(c, c) for c in map(str, prev_codes)]
    prev_city = sampler.sample_city_indices(prev_list, rng)
    prev_lat, prev_lon = sampler.coordinates_for_many(prev_list, prev_city, rng)
    names_of = {
        code: [c.name for c in sampler.cities_of(code)] for code in sampler.countries()
    }
    offsets = np.zeros(n_present + 1, dtype=np.int64)
    np.cumsum(extra, out=offsets[1:])
    return _PlacesPlan(
        owners=owners,
        offsets=offsets,
        prev_codes=prev_list,
        prev_city=prev_city,
        prev_lat=prev_lat,
        prev_lon=prev_lon,
        names_of=names_of,
    )


def _places_values(
    population: Population, plan: _PlacesPlan
) -> dict[int, list[Place]]:
    """Materialize every present owner's places-lived list from the plan."""
    names_of = plan.names_of
    prev_places = [
        Place(names_of[code][city], lat, lon, code)
        for code, city, lat, lon in zip(
            plan.prev_codes,
            plan.prev_city.tolist(),
            plan.prev_lat.tolist(),
            plan.prev_lon.tolist(),
        )
    ]
    offsets = plan.offsets
    city_idx = population.city_indices
    lats = population.latitudes
    lons = population.longitudes
    result: dict[int, list[Place]] = {}
    country_list = population.country_codes
    for row, user_id in enumerate(plan.owners.tolist()):
        code = country_list[user_id]
        places = prev_places[offsets[row] : offsets[row + 1]]
        places.append(
            Place(
                names_of[code][int(city_idx[user_id])],
                float(lats[user_id]),
                float(lons[user_id]),
                code,
            )
        )
        result[user_id] = places
    return result


def _places_formula(population: Population, plan: _PlacesPlan):
    """Per-user places-lived builder over the plan arrays (columnar path).

    Constructs the same list :func:`_places_values` stores, but only when
    a profile view is actually read — nothing is resident per user.
    """
    owners = plan.owners
    offsets = plan.offsets
    names_of = plan.names_of
    country_list = population.country_codes
    city_idx = population.city_indices
    lats = population.latitudes
    lons = population.longitudes

    def places_of(user_id: int) -> list[Place]:
        row = int(np.searchsorted(owners, user_id))
        places = [
            Place(
                names_of[plan.prev_codes[j]][int(plan.prev_city[j])],
                float(plan.prev_lat[j]),
                float(plan.prev_lon[j]),
                plan.prev_codes[j],
            )
            for j in range(int(offsets[row]), int(offsets[row + 1]))
        ]
        code = country_list[user_id]
        places.append(
            Place(
                names_of[code][int(city_idx[user_id])],
                float(lats[user_id]),
                float(lons[user_id]),
                code,
            )
        )
        return places

    return places_of


@dataclass
class _ProfileDraws:
    """Every random draw behind a profile batch, in the order drawn.

    Both assemblers consume this one plan, so a seed produces the same
    profile semantics whether the result is a dict of
    :class:`UserProfile` objects or a :class:`ColumnarProfileStore`.
    """

    lists_public: np.ndarray
    gender_public: np.ndarray
    gender_level: np.ndarray
    status: np.ndarray
    level: np.ndarray
    places: _PlacesPlan
    looking_idx: np.ndarray
    tel_roll: np.ndarray
    sliver: np.ndarray
    sliver_level: np.ndarray


def _draw_profile_plan(
    population: Population,
    config: WorldConfig,
    sampler: CitySampler,
    rng: np.random.Generator,
) -> _ProfileDraws:
    """All profile-stage RNG consumption, in the pinned order."""
    n = population.n
    openness = np.array(
        [population.countries[c].openness for c in population.country_codes]
    )
    lists_public = rng.random(n) >= config.profiles.private_lists_prob
    # Gender availability barely varies by culture; soft openness exponent,
    # exactly as the reference.
    gender_p = np.minimum(
        0.999, FIELD_SHARE_PROBABILITY["gender"] * openness**0.05
    )
    # Note: the reference routes gender around decide(), so the celebrity
    # forced-public rule never applies to it; mirror that exactly.
    gender_public = rng.random(n) < gender_p
    gender_level = rng.integers(0, len(_HIDDEN_LEVELS), size=n)
    status, level = _decision_matrices(population, config, openness, rng)
    places_col = _DECIDE_FIELDS.index("places_lived")
    places = _places_plan(
        population, config, sampler, status[:, places_col] > 0, rng
    )
    looking_idx = rng.integers(0, len(LookingFor), size=n)
    tel_roll = rng.random(n)
    sliver = rng.random(n) < 0.01
    sliver_level = rng.integers(0, len(_HIDDEN_LEVELS), size=n)
    return _ProfileDraws(
        lists_public=lists_public,
        gender_public=gender_public,
        gender_level=gender_level,
        status=status,
        level=level,
        places=places,
        looking_idx=looking_idx,
        tel_roll=tel_roll,
        sliver=sliver,
        sliver_level=sliver_level,
    )


def build_profiles_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> dict[int, UserProfile]:
    """Drop-in fast counterpart of :func:`repro.synth.profiles.build_profiles`."""
    with gc_paused():
        return _build_profiles_fast(population, config, rng)


def _build_profiles_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> dict[int, UserProfile]:
    n = population.n
    sampler = CitySampler()
    draws = _draw_profile_plan(population, config, sampler, rng)
    lists_public = draws.lists_public.tolist()
    gender_public = draws.gender_public
    gender_level = draws.gender_level
    status, level = draws.status, draws.level
    places = _places_values(population, draws.places)
    looking_for_options = list(LookingFor)
    looking_idx = draws.looking_idx
    tel_roll = draws.tel_roll.tolist()
    sliver = draws.sliver
    sliver_level = draws.sliver_level.tolist()

    both_frac = config.profiles.tel_both_fraction
    work_frac = both_frac + config.profiles.tel_work_only_fraction
    hidden_levels = _HIDDEN_LEVELS
    genders = population.genders
    relationships = population.relationships
    occupations = population.occupations
    spec_of = population.celebrity_spec
    country_codes = population.country_codes

    # Assembly is column-major: every fields dict starts with gender,
    # then each decide() column inserts its values for the users that
    # carry it, walking the columns in the reference field order — so the
    # per-user key order matches the reference exactly. The synthetic
    # values repeat with small periods, so whole *FieldValue* instances
    # are cached per (value, privacy level) and shared between users —
    # FieldValue is frozen and compares by value, so sharing is
    # indistinguishable from constructing one per user. Only per-user
    # values (places, per-user URLs/names) and list-valued fields (whose
    # inner list stays fresh per user) are built individually.
    levels_all = (PUBLIC, *hidden_levels)
    n_levels = len(levels_all)
    # Privacy-level code per user per column: 0 = public, 1 + j = the
    # j-th hidden level. Columns index this with their own status row.
    gcode = np.where(gender_public, 0, gender_level + 1).tolist()
    gender_vals = list(dict.fromkeys(genders))
    gender_index = {v: j for j, v in enumerate(gender_vals)}
    gcache = [
        FieldValue(v, lev) for v in gender_vals for lev in levels_all
    ]
    gi = list(map(gender_index.__getitem__, genders))
    fields_by_user: list[dict[str, FieldValue]] = [
        {"gender": gcache[gi[i] * n_levels + gcode[i]]} for i in range(n)
    ]
    edu_pool = [f"Studied at University {i}" for i in range(409)]
    emp_pool = [f"Works at Company {i}" for i in range(997)]
    contrib_pool = [f"https://blog.example/{i}" for i in range(211)]
    rec_pool = [f"https://links.example/{i}" for i in range(53)]

    def _pool_cache(values) -> list[FieldValue]:
        """FieldValue per (pool value, privacy level), level-minor."""
        return [FieldValue(v, lev) for v in values for lev in levels_all]

    user_ids = np.arange(n, dtype=np.int64)
    for col, key in enumerate(_DECIDE_FIELDS):
        scol = status[:, col]
        idx_arr = np.flatnonzero(scol)
        idx = idx_arr.tolist()
        # 0 = public, 1 + j = j-th hidden level (meaningful where scol).
        code = np.where(scol == 1, 0, level[:, col] + 1)
        if key == "places_lived":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    places[i], levels_all[codes[i]]
                )
        elif key == "education":
            cache = _pool_cache(edu_pool)
            ci = ((user_ids % 409) * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "employment":
            cache = _pool_cache(emp_pool)
            ci = ((user_ids % 997) * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "phrase":
            cache = _pool_cache(["Carpe diem"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "other_profiles":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [f"https://social.example/{i}"], levels_all[codes[i]]
                )
        elif key == "occupation":
            occ_vals = list(dict.fromkeys(occupations))
            occ_index = {v: j for j, v in enumerate(occ_vals)}
            cache = _pool_cache([OCCUPATION_LABELS[v] for v in occ_vals])
            oi = np.fromiter(
                map(occ_index.__getitem__, occupations), np.int64, count=n
            )
            ci = (oi * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "contributor_to":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [contrib_pool[i % 211]], levels_all[codes[i]]
                )
        elif key == "introduction":
            cache = _pool_cache(["Hi, I joined Google+!"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "other_names":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    f"U{i:06d}", levels_all[codes[i]]
                )
        elif key == "relationship":
            rel_vals = list(dict.fromkeys(relationships))
            rel_index = {v: j for j, v in enumerate(rel_vals)}
            cache = _pool_cache(rel_vals)
            ri = np.fromiter(
                map(rel_index.__getitem__, relationships), np.int64, count=n
            )
            ci = (ri * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "bragging_rights":
            cache = _pool_cache(["Survived the invite queue"])
            ci = code[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]
        elif key == "recommended_links":
            codes = code.tolist()
            for i in idx:
                fields_by_user[i][key] = FieldValue(
                    [rec_pool[i % 53]], levels_all[codes[i]]
                )
        else:  # looking_for
            cache = _pool_cache(looking_for_options)
            ci = (looking_idx * n_levels + code)[idx_arr].tolist()
            for i, c in zip(idx, ci):
                fields_by_user[i][key] = cache[c]

    # Contact blocks close each fields dict, exactly as in the reference.
    prefix_of = {
        code: (zlib.crc32(code.encode("ascii")) % 90) + 10
        for code in set(country_codes)
    }
    for i in np.flatnonzero(population.tel_users).tolist():
        prefix = prefix_of[country_codes[i]]
        contact = ContactInfo(
            phone=f"+{prefix} 555 {i % 10_000:04d}",
            email=f"user{i}@example.com",
        )
        fields = fields_by_user[i]
        roll = tel_roll[i]
        if roll < both_frac:
            fields["work_contact"] = FieldValue(contact, PUBLIC)
            fields["home_contact"] = FieldValue(contact, PUBLIC)
        elif roll < work_frac:
            fields["work_contact"] = FieldValue(contact, PUBLIC)
        else:
            fields["home_contact"] = FieldValue(contact, PUBLIC)
    for i in np.flatnonzero(sliver & ~population.tel_users).tolist():
        fields_by_user[i]["work_contact"] = FieldValue(
            ContactInfo(email=f"user{i}@example.com"),
            hidden_levels[sliver_level[i]],
        )

    profiles: dict[int, UserProfile] = {}
    for user_id in range(n):
        spec = spec_of.get(user_id)
        profiles[user_id] = UserProfile(
            user_id=user_id,
            name=spec.name if spec else f"User {user_id:06d}",
            fields=fields_by_user[user_id],
            lists_public=lists_public[user_id],
        )
    return profiles


#: Field-dict insertion order of both fast assemblers: gender opens every
#: dict, the decide() columns follow in reference order, contacts close.
_FAST_KEY_SEQUENCE: tuple[str, ...] = (
    "gender",
    *_DECIDE_FIELDS,
    "work_contact",
    "home_contact",
)


def build_profile_columns_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> ColumnarProfileStore:
    """Profiles as a :class:`ColumnarProfileStore` — no object per user.

    Consumes the RNG in exactly the same order as
    :func:`build_profiles_fast`, so the same seed yields the same world
    whether it is assembled as dicts or as columns: every profile view
    read from the columnar store equals the :class:`UserProfile` the
    dict assembler would have built.  Field values that repeat across
    the population live in small interned tables (gender, occupation,
    relationship, looking-for); per-user values (places, URLs, contact
    blocks) are derived from the user id and the draw plan on access,
    so the resident cost per field is two bytes of privacy code plus at
    most four bytes of value code per user.
    """
    with gc_paused():
        return _build_profile_columns_fast(population, config, rng)


def _build_profile_columns_fast(
    population: Population, config: WorldConfig, rng: np.random.Generator
) -> ColumnarProfileStore:
    n = population.n
    sampler = CitySampler()
    d = _draw_profile_plan(population, config, sampler, rng)
    levels_all = list((PUBLIC, *_HIDDEN_LEVELS))
    absent = int(ABSENT)
    columns: dict[str, FieldColumn] = {}

    # Gender is present on every profile; privacy code 0 = public,
    # 1 + j = the j-th hidden level — the same coding every column uses.
    gcode = np.where(d.gender_public, 0, d.gender_level + 1).astype(np.uint16)
    gender_vals = list(dict.fromkeys(population.genders))
    gender_index = {v: j for j, v in enumerate(gender_vals)}
    gvcode = np.fromiter(
        map(gender_index.__getitem__, population.genders), np.uint32, count=n
    )
    columns["gender"] = FieldColumn(
        pcode=gcode, privacies=levels_all, values=gender_vals, vcode=gvcode
    )

    def _const(value):
        return lambda user_id: value

    def _listing(template: str, period: int):
        return lambda user_id: [template.format(user_id % period)]

    occ_vals = list(dict.fromkeys(population.occupations))
    occ_index = {v: j for j, v in enumerate(occ_vals)}
    rel_vals = list(dict.fromkeys(population.relationships))
    rel_index = {v: j for j, v in enumerate(rel_vals)}
    formulas = {
        "places_lived": _places_formula(population, d.places),
        "education": lambda user_id: f"Studied at University {user_id % 409}",
        "employment": lambda user_id: f"Works at Company {user_id % 997}",
        "phrase": _const("Carpe diem"),
        "other_profiles": lambda user_id: [f"https://social.example/{user_id}"],
        "contributor_to": _listing("https://blog.example/{}", 211),
        "introduction": _const("Hi, I joined Google+!"),
        "other_names": lambda user_id: f"U{user_id:06d}",
        "bragging_rights": _const("Survived the invite queue"),
        "recommended_links": _listing("https://links.example/{}", 53),
    }
    tables = {
        "occupation": (
            [OCCUPATION_LABELS[v] for v in occ_vals],
            np.fromiter(
                map(occ_index.__getitem__, population.occupations),
                np.uint32,
                count=n,
            ),
        ),
        "relationship": (
            rel_vals,
            np.fromiter(
                map(rel_index.__getitem__, population.relationships),
                np.uint32,
                count=n,
            ),
        ),
        "looking_for": (list(LookingFor), d.looking_idx.astype(np.uint32)),
    }
    for col, key in enumerate(_DECIDE_FIELDS):
        scol = d.status[:, col]
        code = np.where(scol == 1, 0, d.level[:, col].astype(np.int32) + 1)
        pcode = np.where(scol > 0, code, absent).astype(np.uint16)
        if key in tables:
            values, vcode = tables[key]
            columns[key] = FieldColumn(
                pcode=pcode, privacies=levels_all, values=values, vcode=vcode
            )
        else:
            columns[key] = FieldColumn(
                pcode=pcode, privacies=levels_all, formula=formulas[key]
            )

    # Contact blocks: tel-users public, the email-only sliver hidden.
    both_frac = config.profiles.tel_both_fraction
    work_frac = both_frac + config.profiles.tel_work_only_fraction
    tel = population.tel_users
    work_pcode = np.full(n, absent, dtype=np.uint16)
    home_pcode = np.full(n, absent, dtype=np.uint16)
    work_pcode[tel & (d.tel_roll < work_frac)] = 0
    home_pcode[tel & ((d.tel_roll < both_frac) | (d.tel_roll >= work_frac))] = 0
    sliver_only = d.sliver & ~tel
    work_pcode[sliver_only] = (d.sliver_level[sliver_only] + 1).astype(np.uint16)

    prefix_of = {
        code: (zlib.crc32(code.encode("ascii")) % 90) + 10
        for code in set(population.country_codes)
    }
    prefix = np.fromiter(
        map(prefix_of.__getitem__, population.country_codes), np.int16, count=n
    )
    tel_flags = tel

    def _tel_contact(user_id: int) -> ContactInfo:
        return ContactInfo(
            phone=f"+{prefix[user_id]} 555 {user_id % 10_000:04d}",
            email=f"user{user_id}@example.com",
        )

    def _work_value(user_id: int) -> ContactInfo:
        if tel_flags[user_id]:
            return _tel_contact(user_id)
        return ContactInfo(email=f"user{user_id}@example.com")

    columns["work_contact"] = FieldColumn(
        pcode=work_pcode, privacies=levels_all, formula=_work_value
    )
    columns["home_contact"] = FieldColumn(
        pcode=home_pcode, privacies=levels_all, formula=_tel_contact
    )

    return ColumnarProfileStore(
        n=n,
        columns=columns,
        lists_public=d.lists_public,
        name_overrides={
            user_id: spec.name
            for user_id, spec in population.celebrity_spec.items()
        },
        key_sequence=_FAST_KEY_SEQUENCE,
    )
