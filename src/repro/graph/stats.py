"""One-stop structural summary of a social graph (Table 4 row).

Bundles the individual metrics — node/edge counts, mean degrees, global
reciprocity, sampled average path length, estimated diameter, giant-SCC
share — into the row format of Table 4 so the comparison against the
quoted Facebook/Twitter/Orkut numbers is mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .components import strongly_connected_components
from .csr import CSRGraph
from .parallel import BFSEngine
from .paths import DIRECTED, UNDIRECTED, estimate_diameter, sampled_path_lengths
from .reciprocity import global_reciprocity


@dataclass(frozen=True)
class GraphSummary:
    """The Table 4 metrics for one graph."""

    n_nodes: int
    n_edges: int
    mean_in_degree: float
    mean_out_degree: float
    reciprocity: float
    avg_path_length: float
    path_length_mode: int
    diameter: int
    undirected_avg_path_length: float
    undirected_diameter: int
    n_sccs: int
    giant_scc_fraction: float


def summarize_graph(
    graph: CSRGraph,
    rng: np.random.Generator,
    path_samples: int = 2_000,
    diameter_sweeps: int = 10,
    precomputed_directed=None,
    precomputed_undirected=None,
    engine: BFSEngine | None = None,
) -> GraphSummary:
    """Compute the full structural summary of a graph.

    ``path_samples`` caps the BFS-source count for the path-length
    estimates; the convergence procedure of Section 3.3.5 may stop
    earlier. Callers that already ran the Figure 5 sampling can pass the
    two distributions in to avoid recomputing them, and an ``engine``
    to share one BFS worker pool across every sweep.
    """
    own_engine = engine is None
    if own_engine:
        engine = BFSEngine(graph)
    try:
        dist_directed = precomputed_directed or sampled_path_lengths(
            graph,
            rng,
            initial_k=min(500, path_samples),
            max_k=path_samples,
            mode=DIRECTED,
            engine=engine,
        )
        dist_undirected = precomputed_undirected or sampled_path_lengths(
            graph,
            rng,
            initial_k=min(500, path_samples),
            max_k=path_samples,
            mode=UNDIRECTED,
            engine=engine,
        )
        sccs = strongly_connected_components(graph)
        mean_degree = graph.n_edges / graph.n if graph.n else 0.0
        return GraphSummary(
            n_nodes=graph.n,
            n_edges=graph.n_edges,
            mean_in_degree=mean_degree,
            mean_out_degree=mean_degree,
            reciprocity=global_reciprocity(graph),
            avg_path_length=dist_directed.mean,
            path_length_mode=dist_directed.mode,
            diameter=max(
                estimate_diameter(
                    graph, rng, n_sweeps=diameter_sweeps, mode=DIRECTED, engine=engine
                ),
                dist_directed.max_observed,
            ),
            undirected_avg_path_length=dist_undirected.mean,
            undirected_diameter=max(
                estimate_diameter(
                    graph,
                    rng,
                    n_sweeps=diameter_sweeps,
                    mode=UNDIRECTED,
                    engine=engine,
                ),
                dist_undirected.max_observed,
            ),
            n_sccs=sccs.n_components,
            giant_scc_fraction=sccs.giant_fraction(),
        )
    finally:
        if own_engine:
            engine.close()
