"""Process-parallel executor for the batched multi-source BFS kernel.

:class:`BFSEngine` shards a source list into batches of ``batch_size``
(one :mod:`~repro.graph.msbfs` kernel invocation each) and fans the
batches out over a ``multiprocessing`` worker pool.  The CSR arrays are
published once into ``multiprocessing.shared_memory`` — workers attach
read-only views, so the graph is never pickled and never copied per
task.  Results are merged in submission order, which together with the
deterministic kernel makes every engine answer independent of worker
count: ``n_workers=8`` and the in-process ``n_workers=1`` fallback are
bit-identical.

The engine owns OS resources (worker processes, shared-memory
segments); call :meth:`BFSEngine.close` or use it as a context manager.
Engine throughput is published under the ``graph.*`` metrics (see
``docs/observability.md``).
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.obs.metrics import Registry, get_registry

from .msbfs import (
    batch_eccentricities,
    batch_hop_counts,
    DIRECTED,
    msbfs_distances,
    WORD_BITS,
)

__all__ = ["BFSEngine", "DEFAULT_BATCH_SIZE", "SharedCSR"]

#: Eight frontier words per node. The per-hop radix sort of gathered
#: targets is paid once per batch whatever the width, so wider batches
#: amortise it further; 512 lanes still keeps the visited matrix under
#: ~1 MB per 16k nodes. Measured on the bench graph: 512 is ~2x faster
#: than 64-lane batches end to end.
DEFAULT_BATCH_SIZE = 8 * WORD_BITS

#: CSR arrays the kernel traverses (node_ids is never needed).
_CSR_ARRAYS = ("indptr", "indices", "rindptr", "rindices")


class SharedCSR:
    """The four CSR arrays exported into shared-memory segments.

    ``descriptor`` is a picklable recipe (segment names, lengths,
    dtypes) from which :class:`_SharedCSRView` reattaches zero-copy in a
    worker process.  The owner must :meth:`unlink` when done.
    """

    def __init__(self, graph):
        self._segments: list[shared_memory.SharedMemory] = []
        self.descriptor: dict = {"n": int(graph.n)}
        try:
            for name in _CSR_ARRAYS:
                source = np.ascontiguousarray(getattr(graph, name))
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, source.nbytes)
                )
                self._segments.append(segment)
                view = np.ndarray(source.shape, source.dtype, buffer=segment.buf)
                view[:] = source
                self.descriptor[name] = (
                    segment.name,
                    int(source.shape[0]),
                    str(source.dtype),
                )
        except BaseException:
            self.unlink()
            raise

    def unlink(self) -> None:
        """Release the segments (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments = []


class _SharedCSRView:
    """Worker-side zero-copy view satisfying the kernel's CSR protocol."""

    def __init__(self, descriptor: dict):
        self.n = int(descriptor["n"])
        self._segments = []
        for name in _CSR_ARRAYS:
            segment_name, length, dtype = descriptor[name]
            # Workers share the owner's resource tracker (the fd is
            # inherited), so this attach-time registration is a set
            # no-op and the owner's unlink() is the single cleanup.
            segment = shared_memory.SharedMemory(name=segment_name)
            self._segments.append(segment)
            setattr(
                self,
                name,
                np.ndarray((length,), np.dtype(dtype), buffer=segment.buf),
            )


_KERNELS = {
    "hop_counts": batch_hop_counts,
    "eccentricities": batch_eccentricities,
    "distances": msbfs_distances,
}

#: Worker-global graph view, installed once per process by the
#: pool initializer so tasks only ship (kind, sources, mode).
_WORKER_GRAPH: _SharedCSRView | None = None


def _worker_init(descriptor: dict) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = _SharedCSRView(descriptor)


def _worker_run(task: tuple) -> object:
    kind, sources, mode = task
    return _KERNELS[kind](_WORKER_GRAPH, sources, mode)


class BFSEngine:
    """Batched BFS over a fixed graph, optionally across processes.

    ``n_workers=1`` (the default) runs every batch in-process — no
    processes, no shared memory — and is what the analysis entry points
    create when not handed an engine.  ``n_workers > 1`` lazily starts
    the pool on first use.  Answers are bit-identical either way.
    """

    def __init__(
        self,
        graph,
        n_workers: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        registry: Registry | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.graph = graph
        self.n_workers = n_workers
        self.batch_size = batch_size
        self._pool: ProcessPoolExecutor | None = None
        self._shared: SharedCSR | None = None
        registry = registry if registry is not None else get_registry()
        self._m_seconds = registry.histogram(
            "graph.bfs_seconds",
            "Wall time per engine call, by operation",
            labels=("op",),
        )
        self._m_sources = registry.counter(
            "graph.bfs_sources",
            "BFS sources traversed by the analysis engine",
            labels=("mode",),
        )
        self._m_batches = registry.counter(
            "graph.bfs_batches", "Source batches executed by the engine"
        )
        self._m_throughput = registry.gauge(
            "graph.bfs_source_throughput",
            "Sources per wall second of the engine's most recent call",
        )
        registry.gauge(
            "graph.parallel_workers", "Worker processes configured on the engine"
        ).set(float(n_workers))

    # -- lifecycle ---------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._shared = SharedCSR(self.graph)
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._shared.descriptor,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and release the shared segments."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None

    def __enter__(self) -> "BFSEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; close() is the supported path
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def _batches(self, sources: np.ndarray) -> list[np.ndarray]:
        return [
            sources[i : i + self.batch_size]
            for i in range(0, len(sources), self.batch_size)
        ]

    def _run(self, kind: str, sources, mode: str) -> list:
        sources = np.asarray(sources, dtype=np.int64)
        batches = self._batches(sources)
        started = time.perf_counter()
        if self.n_workers == 1 or len(batches) <= 1:
            results = [_KERNELS[kind](self.graph, batch, mode) for batch in batches]
        else:
            pool = self._ensure_pool()
            # Executor.map preserves submission order: the merge is
            # deterministic no matter which worker finishes first.
            results = list(
                pool.map(_worker_run, [(kind, batch, mode) for batch in batches])
            )
        elapsed = time.perf_counter() - started
        self._m_seconds.observe(elapsed, op=kind)
        self._m_sources.inc(len(sources), mode=mode)
        self._m_batches.inc(len(batches))
        if elapsed > 0:
            self._m_throughput.set(len(sources) / elapsed)
        return results

    def hop_counts(self, sources, mode: str = DIRECTED) -> np.ndarray:
        """Pooled hop histogram over all sources (see ``msbfs``)."""
        partials = self._run("hop_counts", sources, mode)
        if not partials:
            return np.zeros(1, dtype=np.int64)
        width = max(len(p) for p in partials)
        merged = np.zeros(width, dtype=np.int64)
        for partial in partials:
            merged[: len(partial)] += partial
        return merged

    def eccentricities(
        self, sources, mode: str = DIRECTED
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-source (eccentricity, first farthest node), source order."""
        partials = self._run("eccentricities", sources, mode)
        if not partials:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ecc = np.concatenate([p[0] for p in partials])
        far = np.concatenate([p[1] for p in partials])
        return ecc, far

    def distances(self, sources, mode: str = DIRECTED) -> np.ndarray:
        """Stacked per-source distance rows (mainly for tests/tools)."""
        partials = self._run("distances", sources, mode)
        if not partials:
            return np.empty((0, self.graph.n), dtype=np.int32)
        return np.vstack(partials)
