"""Degree statistics and empirical distribution functions.

Provides the CCDF machinery behind Figure 3 (degree distributions) and
all other CCDF/CDF plots in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class EmpiricalCCDF:
    """An empirical complementary CDF: ``P(X >= x)`` at each unique value.

    ``x`` is ascending and ``p`` is non-increasing; ``p[0]`` is 1.0 when
    all observations are at least ``x[0]``.
    """

    x: np.ndarray
    p: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.p):
            raise ValueError("x and p must have equal length")
        if len(self.x) > 1 and not np.all(np.diff(self.x) > 0):
            raise ValueError("x must be strictly increasing")

    def evaluate(self, values) -> np.ndarray:
        """P(X >= v) for each v, by step-function lookup."""
        values = np.atleast_1d(np.asarray(values, dtype=float))
        idx = np.searchsorted(self.x, values, side="left")
        out = np.empty(len(values))
        inside = idx < len(self.x)
        out[~inside] = 0.0
        # For v <= x[idx], P(X >= v) >= P(X >= x[idx]); exact on support points.
        below_support = values < (self.x[0] if len(self.x) else np.inf)
        out[inside] = self.p[idx[inside]]
        out[below_support] = 1.0
        return out


def ccdf(values) -> EmpiricalCCDF:
    """Empirical CCDF ``P(X >= x)`` of a sample, at its unique values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot build a CCDF from an empty sample")
    unique, counts = np.unique(values, return_counts=True)
    # P(X >= unique[i]) = (count of values >= unique[i]) / n
    tail = np.cumsum(counts[::-1])[::-1]
    return EmpiricalCCDF(unique, tail / values.size)


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF ``P(X <= x)`` as ``(x, p)`` arrays at unique values."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    unique, counts = np.unique(values, return_counts=True)
    return unique, np.cumsum(counts) / values.size


@dataclass(frozen=True)
class DegreeDistributions:
    """In- and out-degree arrays plus their CCDFs for one graph."""

    in_degrees: np.ndarray
    out_degrees: np.ndarray
    in_ccdf: EmpiricalCCDF
    out_ccdf: EmpiricalCCDF

    @property
    def mean_in_degree(self) -> float:
        return float(self.in_degrees.mean())

    @property
    def mean_out_degree(self) -> float:
        return float(self.out_degrees.mean())


def degree_distributions(graph: CSRGraph) -> DegreeDistributions:
    """Compute Figure 3's raw material for a graph."""
    in_deg = graph.in_degrees()
    out_deg = graph.out_degrees()
    return DegreeDistributions(
        in_degrees=in_deg,
        out_degrees=out_deg,
        in_ccdf=ccdf(in_deg),
        out_ccdf=ccdf(out_deg),
    )
