"""Shortest-path analysis: degrees of separation (Section 3.3.5).

Exact all-pairs BFS is infeasible at crawl scale, so the paper samples
``k`` source users, runs single-source BFS from each, and grows ``k``
(2,000 -> 10,000) until the hop distribution stops changing. The same
procedure is implemented here, for the directed graph and its undirected
version, together with the observed-diameter estimate.

The sampled estimators route their traversals through the batched
multi-source kernel (:mod:`repro.graph.msbfs`) via a
:class:`~repro.graph.parallel.BFSEngine` — pass ``engine=`` to share a
worker pool across calls; the default is an in-process engine that is
still batched.  Results are bit-identical to the retained sequential
reference implementations for every engine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .csr import CSRGraph
from .msbfs import DIRECTED, UNDIRECTED
from .parallel import BFSEngine


def _gather_neighbors(
    frontier: np.ndarray, indptr: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """All successors of a frontier, fully vectorised (with duplicates).

    Standard ragged-gather: for each frontier node, its CSR slice is
    addressed by ``base + within`` where ``within`` counts 0..k-1 inside
    each slice. No Python-level per-node loop.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    base = np.repeat(starts, counts)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return indices[base + within]


def bfs_distances(graph: CSRGraph, source: int, mode: str = DIRECTED) -> np.ndarray:
    """Hop counts from ``source`` to every node; -1 where unreachable.

    ``mode=UNDIRECTED`` treats every edge as bidirectional (the paper's
    "undirected version" of G).
    """
    if mode not in (DIRECTED, UNDIRECTED):
        raise ValueError(f"unknown BFS mode: {mode!r}")
    dist = np.full(graph.n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    hop = 0
    while len(frontier):
        hop += 1
        candidates = _gather_neighbors(frontier, graph.indptr, graph.indices)
        if mode == UNDIRECTED:
            reverse = _gather_neighbors(frontier, graph.rindptr, graph.rindices)
            candidates = np.concatenate([candidates, reverse])
        if candidates.size == 0:
            break
        fresh = candidates[dist[candidates] == -1]
        if fresh.size == 0:
            break
        # Assigning dist deduplicates implicitly; the next frontier is
        # recovered with a linear scan, which beats np.unique's hashing
        # on social-graph frontiers by a wide margin.
        dist[fresh] = hop
        frontier = np.flatnonzero(dist == hop)
    return dist


@dataclass(frozen=True)
class PathLengthDistribution:
    """Estimated hop-count distribution from sampled single-source BFS.

    ``counts[h]`` is the number of sampled (source, target) pairs at hop
    distance ``h`` (h >= 1). Unreachable pairs are excluded, matching the
    paper's treatment.
    """

    counts: np.ndarray
    n_sources: int

    def probabilities(self) -> np.ndarray:
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total

    @property
    def mean(self) -> float:
        total = self.counts.sum()
        if total == 0:
            return float("nan")
        hops = np.arange(len(self.counts))
        return float((hops * self.counts).sum() / total)

    @property
    def mode(self) -> int:
        return int(np.argmax(self.counts))

    @property
    def max_observed(self) -> int:
        """Largest observed hop count — a lower bound on the diameter."""
        nonzero = np.flatnonzero(self.counts)
        return int(nonzero[-1]) if len(nonzero) else 0


def _grow_until_stable(
    graph: CSRGraph,
    rng: np.random.Generator,
    hop_counts: Callable[[np.ndarray], np.ndarray],
    initial_k: int,
    max_k: int,
    growth_step: int,
    tolerance: float,
) -> PathLengthDistribution:
    """The paper's grow-until-stable procedure over any batch runner.

    Start from ``initial_k`` sampled sources, add ``growth_step`` more at
    a time, and stop when the L-infinity distance between successive
    normalised distributions drops below ``tolerance`` (or ``max_k``
    sources were used). All sampling is without replacement.
    """
    if graph.n == 0:
        raise ValueError("cannot sample paths of an empty graph")
    max_k = min(max_k, graph.n)
    initial_k = min(initial_k, max_k)
    order = rng.permutation(graph.n)[:max_k]
    counts = np.zeros(1, dtype=np.int64)
    previous = None
    used = 0

    def run_batch(sources: np.ndarray) -> None:
        nonlocal counts
        batch = hop_counts(sources)
        if len(batch) > len(counts):
            grown = np.zeros(len(batch), dtype=np.int64)
            grown[: len(counts)] = counts
            counts = grown
        counts[: len(batch)] += batch

    run_batch(order[:initial_k])
    used = initial_k
    while used < max_k:
        current = counts / counts.sum() if counts.sum() else counts.astype(float)
        if previous is not None:
            width = max(len(previous), len(current))
            a = np.zeros(width)
            b = np.zeros(width)
            a[: len(previous)] = previous
            b[: len(current)] = current
            if np.abs(a - b).max() < tolerance:
                break
        previous = current
        step = min(growth_step, max_k - used)
        run_batch(order[used : used + step])
        used += step
    return PathLengthDistribution(counts=counts, n_sources=used)


def sampled_path_lengths(
    graph: CSRGraph,
    rng: np.random.Generator,
    initial_k: int = 2_000,
    max_k: int = 10_000,
    growth_step: int = 2_000,
    tolerance: float = 1e-3,
    mode: str = DIRECTED,
    engine: BFSEngine | None = None,
) -> PathLengthDistribution:
    """Estimate the hop distribution, growing the sample until stable.

    Traversals run through the batched multi-source kernel; pass
    ``engine`` to reuse a (possibly multi-process) :class:`BFSEngine`.
    The result is bit-identical to
    :func:`sampled_path_lengths_sequential` for any engine.
    """
    own_engine = engine is None
    if own_engine:
        engine = BFSEngine(graph)
    try:
        return _grow_until_stable(
            graph,
            rng,
            lambda sources: engine.hop_counts(sources, mode),
            initial_k,
            max_k,
            growth_step,
            tolerance,
        )
    finally:
        if own_engine:
            engine.close()


def sampled_path_lengths_sequential(
    graph: CSRGraph,
    rng: np.random.Generator,
    initial_k: int = 2_000,
    max_k: int = 10_000,
    growth_step: int = 2_000,
    tolerance: float = 1e-3,
    mode: str = DIRECTED,
) -> PathLengthDistribution:
    """Reference implementation: one :func:`bfs_distances` per source.

    Kept as the ground truth the batched engine is verified against (and
    as the baseline the fig5 bench times the engine's speedup from).
    """

    def hop_counts(sources: np.ndarray) -> np.ndarray:
        counts = np.zeros(1, dtype=np.int64)
        for source in sources:
            dist = bfs_distances(graph, int(source), mode=mode)
            reached = dist[dist > 0]
            if reached.size == 0:
                continue
            top = int(reached.max())
            if top + 1 > len(counts):
                grown = np.zeros(top + 1, dtype=np.int64)
                grown[: len(counts)] = counts
                counts = grown
            counts += np.bincount(reached, minlength=len(counts))
        return counts

    return _grow_until_stable(
        graph, rng, hop_counts, initial_k, max_k, growth_step, tolerance
    )


def estimate_diameter(
    graph: CSRGraph,
    rng: np.random.Generator,
    n_sweeps: int = 20,
    mode: str = DIRECTED,
    engine: BFSEngine | None = None,
) -> int:
    """Lower-bound the diameter via repeated double sweeps.

    From each random start, run a BFS, then a second BFS from the farthest
    node found; the largest eccentricity observed is returned. This is the
    standard practical diameter estimator for huge graphs.  Both sweep
    phases run batched through the engine; the answer matches the
    one-source-at-a-time double sweep exactly.
    """
    if graph.n == 0:
        return 0
    starts = rng.integers(0, graph.n, size=min(n_sweeps, graph.n))
    own_engine = engine is None
    if own_engine:
        engine = BFSEngine(graph)
    try:
        ecc, far = engine.eccentricities(starts.astype(np.int64), mode)
        best = int(ecc.max(initial=0))
        reachable = ecc > 0
        if reachable.any():
            second, _ = engine.eccentricities(far[reachable], mode)
            best = max(best, int(second.max(initial=0)))
        return best
    finally:
        if own_engine:
            engine.close()
