"""A minimal directed-graph container.

The paper models Google+ as a directed graph ``G(V, E)`` where an edge
``(u, v)`` means user ``u`` added user ``v`` to a circle. This class is a
mutable adjacency-set container optimised for graph construction; the
heavy structural algorithms (SCC, BFS sweeps, clustering) operate on the
frozen CSR form produced by :meth:`DiGraph.to_csr`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class DiGraph:
    """Directed graph over integer node ids, with in- and out-adjacency."""

    def __init__(self) -> None:
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        self._n_edges = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_node(self, node: int) -> None:
        """Add an isolated node; adding an existing node is a no-op."""
        if node not in self._out:
            self._out[node] = set()
            self._in[node] = set()

    def add_edge(self, u: int, v: int) -> bool:
        """Add the directed edge ``u -> v``; returns True if it was new.

        Self-loops are rejected — a user cannot add herself to a circle.
        """
        if u == v:
            raise ValueError("self-loops are not allowed in the social graph")
        self.add_node(u)
        self.add_node(v)
        if v in self._out[u]:
            return False
        self._out[u].add(v)
        self._in[v].add(u)
        self._n_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove ``u -> v``; raises KeyError when absent."""
        if not self.has_edge(u, v):
            raise KeyError(f"no edge {u} -> {v}")
        self._out[u].remove(v)
        self._in[v].remove(u)
        self._n_edges -= 1

    # -- queries --------------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._out

    def __len__(self) -> int:
        return len(self._out)

    @property
    def n_nodes(self) -> int:
        return len(self._out)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._out and v in self._out[u]

    def nodes(self) -> Iterator[int]:
        return iter(self._out)

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, targets in self._out.items():
            for v in targets:
                yield u, v

    def out_neighbors(self, node: int) -> set[int]:
        """OS(u): users ``node`` has added to circles (read-only view)."""
        return self._out[node]

    def in_neighbors(self, node: int) -> set[int]:
        """IS(u): users that added ``node`` to circles (read-only view)."""
        return self._in[node]

    def out_degree(self, node: int) -> int:
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        return len(self._in[node])

    # -- export -----------------------------------------------------------------

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return parallel (sources, targets) int64 arrays of all edges."""
        sources = np.empty(self._n_edges, dtype=np.int64)
        targets = np.empty(self._n_edges, dtype=np.int64)
        i = 0
        for u, outs in self._out.items():
            k = len(outs)
            sources[i : i + k] = u
            targets[i : i + k] = np.fromiter(outs, dtype=np.int64, count=k)
            i += k
        return sources, targets

    def to_csr(self) -> "CSRGraph":
        """Freeze into the CSR form used by the structural algorithms."""
        from .csr import CSRGraph

        node_ids = np.fromiter(self._out, dtype=np.int64, count=len(self._out))
        sources, targets = self.edge_arrays()
        return CSRGraph.from_edge_arrays(sources, targets, node_ids=node_ids)
