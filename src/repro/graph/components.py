"""Connected components: SCC and WCC decompositions (Section 3.3.4).

The paper identifies 9,771,696 strongly connected components, among which
a single giant SCC of ~25.2M nodes (70% of the graph), using "a procedure
involving two Depth First Searches" (Kosaraju's algorithm). We provide an
iterative Tarjan implementation — one pass, no recursion, safe for graphs
far deeper than Python's recursion limit — plus a union-find WCC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class ComponentDecomposition:
    """Node labels plus per-component sizes, largest component first.

    ``labels[i]`` is the component index of compact node ``i``; component
    indexes are ordered by decreasing size, so label 0 is the giant
    component (when any).
    """

    labels: np.ndarray
    sizes: np.ndarray

    @property
    def n_components(self) -> int:
        return len(self.sizes)

    @property
    def giant_size(self) -> int:
        return int(self.sizes[0]) if len(self.sizes) else 0

    def giant_fraction(self) -> float:
        total = int(self.sizes.sum())
        return self.giant_size / total if total else 0.0

    def members(self, component: int) -> np.ndarray:
        return np.flatnonzero(self.labels == component)


def _sorted_by_size(raw_labels: np.ndarray) -> ComponentDecomposition:
    """Relabel components in decreasing-size order."""
    unique, counts = np.unique(raw_labels, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    remap = np.empty(len(unique), dtype=np.int64)
    remap[order] = np.arange(len(unique))
    # unique is sorted, so raw labels can be mapped via searchsorted.
    labels = remap[np.searchsorted(unique, raw_labels)]
    return ComponentDecomposition(labels=labels, sizes=counts[order])


def strongly_connected_components(graph: CSRGraph) -> ComponentDecomposition:
    """Tarjan's SCC algorithm, fully iterative.

    Runs in O(n + m); the explicit work stack replaces recursion so the
    giant-component case (paths of millions of nodes) cannot overflow.
    """
    n = graph.n
    indptr, indices = graph.indptr, graph.indices
    UNVISITED = -1
    index_of = np.full(n, UNVISITED, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = np.full(n, UNVISITED, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_label = 0

    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        # Work stack of (node, next-edge-offset) frames.
        work: list[tuple[int, int]] = [(root, int(indptr[root]))]
        while work:
            node, edge_pos = work[-1]
            if index_of[node] == UNVISITED:
                index_of[node] = lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            end = int(indptr[node + 1])
            while edge_pos < end:
                child = int(indices[edge_pos])
                edge_pos += 1
                if index_of[child] == UNVISITED:
                    work[-1] = (node, edge_pos)
                    work.append((child, int(indptr[child])))
                    advanced = True
                    break
                if on_stack[child]:
                    if index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
            if advanced:
                continue
            # All children explored: close the frame.
            work.pop()
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    labels[member] = next_label
                    if member == node:
                        break
                next_label += 1
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return _sorted_by_size(labels)


class UnionFind:
    """Disjoint-set forest with path halving and union by size."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def weakly_connected_components(graph: CSRGraph) -> ComponentDecomposition:
    """WCC decomposition via union-find over all edges."""
    uf = UnionFind(graph.n)
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), graph.out_degrees())
    for u, v in zip(sources, graph.indices):
        uf.union(int(u), int(v))
    raw = np.fromiter((uf.find(i) for i in range(graph.n)), dtype=np.int64, count=graph.n)
    return _sorted_by_size(raw)


def scc_size_ccdf_input(decomposition: ComponentDecomposition) -> np.ndarray:
    """Component sizes array — the sample behind Figure 4c's CCDF."""
    return decomposition.sizes.astype(np.int64)
