"""Compressed-sparse-row form of the social graph.

All heavy structural algorithms (SCC decomposition, BFS sweeps, clustering
coefficients, reciprocity) run on this immutable numpy-backed form. Nodes
are re-labelled to the contiguous range ``0..n-1``; ``node_ids[i]`` maps a
compact index back to the original user id.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class CSRGraph:
    """Immutable directed graph in CSR form with forward and reverse indexes.

    Attributes:
        n: number of nodes.
        indptr / indices: forward adjacency — out-neighbors of compact node
            ``i`` are ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.
        rindptr / rindices: reverse adjacency (in-neighbors), sorted.
        node_ids: original id of each compact node, ascending.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        rindptr: np.ndarray,
        rindices: np.ndarray,
        node_ids: np.ndarray,
    ):
        self.indptr = indptr
        self.indices = indices
        self.rindptr = rindptr
        self.rindices = rindices
        self.node_ids = node_ids
        self.n = len(node_ids)
        if len(indptr) != self.n + 1 or len(rindptr) != self.n + 1:
            raise ValueError("indptr length must be n_nodes + 1")
        if indptr[-1] != len(indices) or rindptr[-1] != len(rindices):
            raise ValueError("indptr terminal must equal edge count")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edge_arrays(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build from parallel edge arrays of original node ids.

        ``node_ids`` may list extra isolated nodes; ids appearing in edges
        are always included. Duplicate edges are collapsed.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have equal length")
        pools = [sources, targets]
        if node_ids is not None:
            pools.append(np.asarray(node_ids, dtype=np.int64))
        total = sum(p.size for p in pools)
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls._from_compact_edges(empty, empty.copy(), empty.copy())
        max_id = max(int(p.max()) for p in pools if p.size)
        min_id = min(int(p.min()) for p in pools if p.size)
        if min_id >= 0 and max_id < 4 * total + 1024:
            # Densely-allocated ids (every dataset this repo produces):
            # an O(max_id) lookup table replaces the sort-based unique
            # and the per-edge binary searches.
            seen = np.zeros(max_id + 1, dtype=bool)
            for pool in pools:
                seen[pool] = True
            all_ids = np.flatnonzero(seen)
            inverse = np.empty(max_id + 1, dtype=np.int64)
            inverse[all_ids] = np.arange(len(all_ids), dtype=np.int64)
            src = inverse[sources]
            dst = inverse[targets]
        else:
            all_ids = np.unique(np.concatenate(pools))
            src = np.searchsorted(all_ids, sources)
            dst = np.searchsorted(all_ids, targets)
        return cls._from_compact_edges(src, dst, all_ids)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "CSRGraph":
        """Convenience constructor from an iterable of (u, v) pairs."""
        pairs = list(edges)
        if not pairs:
            return cls._from_compact_edges(
                np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64)
            )
        arr = np.asarray(pairs, dtype=np.int64)
        return cls.from_edge_arrays(arr[:, 0], arr[:, 1])

    @classmethod
    def _from_compact_edges(
        cls, src: np.ndarray, dst: np.ndarray, node_ids: np.ndarray
    ) -> "CSRGraph":
        n = len(node_ids)
        if src.size:
            # Sort-and-deduplicate in one pass on a packed (src, dst)
            # key: one int64 sort beats two lexsorts, and the unpacked
            # result is already in (src, dst) order.  Compact ids are
            # < n, so the key stays within int64 for any graph whose
            # edge arrays fit in memory.
            # np.sort + a diff mask, not np.unique: unique's stable
            # mergesort is several times slower than the default sort.
            key = np.sort(src * np.int64(n) + dst)
            keep = np.ones(len(key), dtype=bool)
            keep[1:] = key[1:] != key[:-1]
            key = key[keep]
            src, dst = key // n, key % n
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.bincount(src, minlength=n)
        np.cumsum(indptr, out=indptr)
        indices = dst.copy()
        # Reverse adjacency: the same trick keyed by (dst, src).
        rkey = np.sort(dst * np.int64(n) + src)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        rindptr[1:] = np.bincount(dst, minlength=n)
        np.cumsum(rindptr, out=rindptr)
        rindices = rkey % n
        return cls(indptr, indices, rindptr, rindices, node_ids)

    # -- accessors ---------------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return int(self.indptr[-1])

    def out_neighbors(self, i: int) -> np.ndarray:
        """Sorted compact out-neighbors of compact node ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def in_neighbors(self, i: int) -> np.ndarray:
        """Sorted compact in-neighbors of compact node ``i``."""
        return self.rindices[self.rindptr[i] : self.rindptr[i + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.rindptr)

    def has_edge(self, i: int, j: int) -> bool:
        """True when compact edge ``i -> j`` exists (binary search)."""
        row = self.out_neighbors(i)
        pos = np.searchsorted(row, j)
        # bool() matters: numpy bools saturate under +, breaking callers
        # that count edges arithmetically.
        return bool(pos < len(row) and row[pos] == j)

    def compact_index(self, original_id: int) -> int:
        """Map an original user id to its compact index."""
        pos = int(np.searchsorted(self.node_ids, original_id))
        if pos >= self.n or self.node_ids[pos] != original_id:
            raise KeyError(f"unknown node id: {original_id}")
        return pos

    def undirected_neighbors(self, i: int) -> np.ndarray:
        """Union of in- and out-neighbors, sorted and deduplicated."""
        return np.union1d(self.out_neighbors(i), self.in_neighbors(i))
