"""Directed triad census (Holland & Leinhardt).

The classic 16-type census of three-node directed subgraphs. It
generalises the two local quantities the paper measures — reciprocity
(dyads) and the out-neighborhood clustering coefficient (one family of
closed triads) — and makes statements like "Google+ is more transitive
than a Twitter-shaped graph" precise.

Triad type codes follow the standard MAN (mutual/asymmetric/null
dyad-count) naming: ``003`` is empty, ``102`` one mutual dyad, ``030T``
the transitive triangle, ``300`` the complete mutual triangle, etc.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

#: The sixteen triad types in canonical order.
TRIAD_TYPES: tuple[str, ...] = (
    "003", "012", "102", "021D", "021U", "021C", "111D", "111U",
    "030T", "030C", "201", "120D", "120U", "120C", "210", "300",
)

#: Code lookup used by the per-triple classifier: index by
#: (#mutual, #asymmetric) plus a disambiguation among same-MAN types.
_MAN_INDEX = {name: i for i, name in enumerate(TRIAD_TYPES)}


def _classify(links: tuple[bool, bool, bool, bool, bool, bool]) -> str:
    """Classify one triple from its six possible directed edges.

    ``links`` is (ab, ba, ac, ca, bc, cb).
    """
    # Coerce defensively: numpy bools saturate under addition.
    ab, ba, ac, ca, bc, cb = (bool(x) for x in links)
    links = (ab, ba, ac, ca, bc, cb)
    dyads = ((ab, ba), (ac, ca), (bc, cb))
    mutual = sum(1 for x, y in dyads if x and y)
    asym = sum(1 for x, y in dyads if x != y)
    null = 3 - mutual - asym
    man = (mutual, asym, null)
    if man == (0, 0, 3):
        return "003"
    if man == (0, 1, 2):
        return "012"
    if man == (1, 0, 2):
        return "102"
    if man == (0, 2, 1):
        # 021D (one source feeds two), 021U (two feed one sink), 021C (chain)
        out_degrees = (ab + ac, ba + bc, ca + cb)
        if 2 in out_degrees:
            return "021D"
        in_degrees = (ba + ca, ab + cb, ac + bc)
        if 2 in in_degrees:
            return "021U"
        return "021C"
    if man == (1, 1, 1):
        # 111D: the asymmetric edge points *into* the mutual dyad;
        # 111U: it points out of it.
        for (x, y), (i, j) in zip(dyads, ((0, 1), (0, 2), (1, 2))):
            if x and y:
                third = 3 - i - j
                into = _edge(links, third, i) or _edge(links, third, j)
                return "111D" if into else "111U"
    if man == (0, 3, 0):
        # 030T transitive vs 030C cyclic.
        out_degrees = (ab + ac, ba + bc, ca + cb)
        return "030C" if out_degrees == (1, 1, 1) else "030T"
    if man == (2, 0, 1):
        return "201"
    if man == (1, 2, 0):
        # Locate the node not in the mutual dyad; D if it receives both
        # asymmetric edges' sources... standard: 120D both asym point at
        # the pair? Use out-degree of the outside node.
        for (x, y), (i, j) in zip(dyads, ((0, 1), (0, 2), (1, 2))):
            if x and y:
                third = 3 - i - j
                out_from_third = int(_edge(links, third, i)) + int(
                    _edge(links, third, j)
                )
                if out_from_third == 2:
                    return "120D"
                if out_from_third == 0:
                    return "120U"
                return "120C"
    if man == (2, 1, 0):
        return "210"
    return "300"


def _edge(links, i: int, j: int) -> bool:
    """Edge presence i -> j with nodes indexed 0(a), 1(b), 2(c)."""
    table = {
        (0, 1): 0, (1, 0): 1,
        (0, 2): 2, (2, 0): 3,
        (1, 2): 4, (2, 1): 5,
    }
    return bool(links[table[(i, j)]])


def triad_census_sampled(
    graph: CSRGraph,
    rng: np.random.Generator,
    n_samples: int = 50_000,
    connected_only: bool = True,
) -> dict[str, int]:
    """Monte-Carlo triad census.

    Exact enumeration is O(n^3); for measurement purposes a uniform
    sample of triples suffices. With ``connected_only`` the first node is
    drawn uniformly and its companions from its neighborhood union, which
    concentrates samples on non-null triads (the interesting ones) —
    counts are then *conditional* on that sampling and comparable across
    graphs sampled the same way.
    """
    counts = {name: 0 for name in TRIAD_TYPES}
    if graph.n < 3:
        return counts
    for _ in range(n_samples):
        a = int(rng.integers(0, graph.n))
        if connected_only:
            hood = graph.undirected_neighbors(a)
            hood = hood[hood != a]
            if len(hood) < 2:
                continue
            pick = rng.choice(len(hood), size=2, replace=False)
            b, c = int(hood[pick[0]]), int(hood[pick[1]])
        else:
            b = int(rng.integers(0, graph.n))
            c = int(rng.integers(0, graph.n))
            if len({a, b, c}) < 3:
                continue
        links = (
            graph.has_edge(a, b), graph.has_edge(b, a),
            graph.has_edge(a, c), graph.has_edge(c, a),
            graph.has_edge(b, c), graph.has_edge(c, b),
        )
        counts[_classify(links)] += 1
    return counts


def triad_census_exact(graph: CSRGraph) -> dict[str, int]:
    """Exact census by triple enumeration — small graphs only (O(n^3))."""
    counts = {name: 0 for name in TRIAD_TYPES}
    for a in range(graph.n):
        for b in range(a + 1, graph.n):
            for c in range(b + 1, graph.n):
                links = (
                    graph.has_edge(a, b), graph.has_edge(b, a),
                    graph.has_edge(a, c), graph.has_edge(c, a),
                    graph.has_edge(b, c), graph.has_edge(c, b),
                )
                counts[_classify(links)] += 1
    return counts


def transitivity_signature(census: dict[str, int]) -> float:
    """Share of closed (triangle-bearing) triads among connected ones.

    Closed types: 030T, 030C, 120D, 120U, 120C, 210, 300.
    """
    closed = sum(
        census[name] for name in ("030T", "030C", "120D", "120U", "120C", "210", "300")
    )
    connected = sum(census.values()) - census["003"] - census["012"] - census["102"]
    if connected <= 0:
        return float("nan")
    return closed / connected
