"""Power-law fitting by log-log linear regression on the CCDF.

The paper estimates the degree-distribution exponent with "a simple
statistical linear regression (in the log-log scale)" of the CCDF
``P(X >= x) = C x^-alpha``, reporting alpha = 1.3 (in) and 1.2 (out) with
R^2 = 0.99. This module reproduces that estimator exactly (rather than an
MLE such as Clauset-Shalizi-Newman) so the fitted numbers are directly
comparable with the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .degree import EmpiricalCCDF, ccdf


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log CCDF regression ``P(X >= x) ~ C x^-alpha``."""

    alpha: float
    log10_c: float
    r_squared: float
    x_min: float
    x_max: float
    n_points: int

    @property
    def c(self) -> float:
        return float(10.0**self.log10_c)

    def predict_ccdf(self, x) -> np.ndarray:
        """Model CCDF at the given x values."""
        x = np.asarray(x, dtype=float)
        return self.c * np.power(x, -self.alpha)


def fit_powerlaw_ccdf(
    curve: EmpiricalCCDF, x_min: float = 1.0, x_max: float | None = None
) -> PowerLawFit:
    """Fit ``log10 p = log10 C - alpha * log10 x`` over a support window.

    Points with ``x < x_min`` (typically degree 0, which has no log) and,
    when given, ``x > x_max`` (e.g. beyond the out-degree cap knee) are
    excluded from the regression.
    """
    mask = curve.x >= x_min
    if x_max is not None:
        mask &= curve.x <= x_max
    x = curve.x[mask]
    p = curve.p[mask]
    positive = p > 0
    x, p = x[positive], p[positive]
    if len(x) < 3:
        raise ValueError("need at least 3 CCDF points to fit a power law")
    log_x = np.log10(x)
    log_p = np.log10(p)
    slope, intercept = np.polyfit(log_x, log_p, 1)
    predicted = slope * log_x + intercept
    ss_res = float(np.sum((log_p - predicted) ** 2))
    ss_tot = float(np.sum((log_p - log_p.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        alpha=float(-slope),
        log10_c=float(intercept),
        r_squared=r_squared,
        x_min=float(x[0]),
        x_max=float(x[-1]),
        n_points=len(x),
    )


def fit_powerlaw(values, x_min: float = 1.0, x_max: float | None = None) -> PowerLawFit:
    """Fit a power law to a raw sample via its empirical CCDF."""
    return fit_powerlaw_ccdf(ccdf(values), x_min=x_min, x_max=x_max)


def sample_powerlaw_degrees(
    rng: np.random.Generator,
    n: int,
    alpha: float,
    x_min: int = 1,
    x_max: int | None = None,
) -> np.ndarray:
    """Draw integer degrees whose CCDF is approximately ``C x^-alpha``.

    Inverse-transform sampling of the continuous Pareto with CCDF exponent
    ``alpha``, floored to integers. Used by the synthetic graph generator.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    u = rng.random(n)
    raw = x_min * np.power(u, -1.0 / alpha)
    if x_max is not None:
        raw = np.minimum(raw, float(x_max))
    return np.floor(raw).astype(np.int64)
