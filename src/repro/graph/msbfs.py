"""Batched multi-source BFS over the CSR arrays (the analysis kernel).

The paper's Section 3.3.5 estimates run thousands of single-source BFS
traversals; doing them one at a time costs a full Python/numpy round
trip per source per hop.  This kernel runs a *batch* of B sources at
once: each node carries ``ceil(B / 64)`` ``np.uint64`` words, one bit
per source, and one hop of the whole batch is a handful of vectorised
gathers and ORs — frontier nodes shared by many sources are expanded
once instead of once per source, which on small-diameter social graphs
collapses most of the work.

The traversal semantics match :func:`repro.graph.paths.bfs_distances`
exactly in both modes: BFS levels are unique, so every derived quantity
(distance matrices, hop histograms, eccentricities) is bit-identical to
the sequential path.  :mod:`repro.graph.parallel` shards batches of
this kernel across worker processes.
"""

from __future__ import annotations

import sys

import numpy as np

#: BFS traversal modes (canonical home; re-exported by ``paths``).
DIRECTED = "directed"
UNDIRECTED = "undirected"

#: Sources packed per frontier word.
WORD_BITS = 64

__all__ = [
    "DIRECTED",
    "UNDIRECTED",
    "WORD_BITS",
    "batch_eccentricities",
    "batch_hop_counts",
    "msbfs_distances",
]


def _check_mode(mode: str) -> None:
    if mode not in (DIRECTED, UNDIRECTED):
        raise ValueError(f"unknown BFS mode: {mode!r}")


def _source_bit_rows(sources: np.ndarray, n_words: int) -> np.ndarray:
    """Row ``j`` holds the single set bit addressing source ``j``."""
    rows = np.zeros((len(sources), n_words), dtype=np.uint64)
    lanes = np.arange(len(sources), dtype=np.uint64)
    rows[np.arange(len(sources)), (lanes // WORD_BITS).astype(np.int64)] = (
        np.uint64(1) << (lanes % np.uint64(WORD_BITS))
    )
    return rows


def _unpack_lanes(bits: np.ndarray, n_sources: int) -> np.ndarray:
    """(k, W) uint64 words -> (k, n_sources) boolean lane matrix."""
    if sys.byteorder == "little":
        as_bytes = bits.view(np.uint8)
    else:
        # Big-endian: reverse each word's bytes so lane 0 is bit 0.
        as_bytes = (
            bits[:, :, None].view(np.uint8)[:, :, ::-1].reshape(len(bits), -1)
        )
    unpacked = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return unpacked[:, :n_sources].astype(bool, copy=False)


def _popcount(bits: np.ndarray) -> int:
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(bits).sum())
    return int(_unpack_lanes(bits, bits.shape[1] * WORD_BITS).sum())


def _expand(
    frontier: np.ndarray,
    words: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All successors of the frontier, each carrying its source word.

    The same ragged gather as the single-source kernel, plus a repeat of
    the (k, W) frontier words so every emitted edge knows which sources
    reached it.
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty((0, words.shape[1]), dtype=np.uint64)
        return np.empty(0, dtype=np.int64), empty
    base = np.repeat(starts, counts)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    targets = indices[base + within].astype(np.int64, copy=False)
    return targets, np.repeat(words, counts, axis=0)


def _bfs_levels(graph, sources: np.ndarray, mode: str):
    """Yield ``(hop, nodes, fresh)`` per BFS level of the whole batch.

    ``nodes`` is ascending; ``fresh`` holds the bits of the sources that
    first reached each node at this hop.  ``graph`` is anything carrying
    CSR attributes (``n``/``indptr``/``indices``/``rindptr``/``rindices``)
    — a :class:`~repro.graph.csr.CSRGraph` or a shared-memory view.
    """
    _check_mode(mode)
    n_words = max(1, -(-len(sources) // WORD_BITS))
    # When the batch fits one word AND (target, word) packs into 63 bits,
    # duplicate-target aggregation can sort a single packed key array —
    # the stable argsort it replaces dominated the whole sweep's cost.
    # The OR-reduce is order-insensitive, so both paths are bit-identical.
    pack_bits = len(sources)
    can_pack = (
        n_words == 1
        and pack_bits + max(1, graph.n - 1).bit_length() < 63
    )
    visited = np.zeros((graph.n, n_words), dtype=np.uint64)
    np.bitwise_or.at(visited, sources, _source_bit_rows(sources, n_words))
    nodes = np.flatnonzero(visited.any(axis=1))
    bits = visited[nodes]
    hop = 0
    while len(nodes):
        hop += 1
        targets, words = _expand(nodes, bits, graph.indptr, graph.indices)
        if mode == UNDIRECTED:
            rtargets, rwords = _expand(nodes, bits, graph.rindptr, graph.rindices)
            targets = np.concatenate([targets, rtargets])
            words = np.concatenate([words, rwords])
        if targets.size == 0:
            break
        # OR together duplicate targets: sort by target, then one
        # reduceat per contiguous run.
        if can_pack:
            shift = np.uint64(pack_bits)
            key = np.sort(
                (targets.astype(np.uint64) << shift) | words[:, 0]
            )
            targets = (key >> shift).astype(np.int64)
            seg = np.flatnonzero(np.r_[True, targets[1:] != targets[:-1]])
            candidates = targets[seg]
            combined = np.bitwise_or.reduceat(
                key & np.uint64((1 << pack_bits) - 1), seg
            )[:, None]
        else:
            order = np.argsort(targets)
            targets = targets[order]
            words = words[order]
            seg = np.flatnonzero(np.r_[True, targets[1:] != targets[:-1]])
            candidates = targets[seg]
            combined = np.bitwise_or.reduceat(words, seg, axis=0)
        fresh = combined & ~visited[candidates]
        keep = fresh.any(axis=1)
        if not keep.any():
            break
        nodes = candidates[keep]
        bits = fresh[keep]
        visited[nodes] |= bits
        yield hop, nodes, bits


def msbfs_distances(graph, sources, mode: str = DIRECTED) -> np.ndarray:
    """Hop counts from each source to every node; -1 where unreachable.

    Row ``j`` equals ``bfs_distances(graph, sources[j], mode)`` exactly.
    """
    sources = np.asarray(sources, dtype=np.int64)
    dist = np.full((len(sources), graph.n), -1, dtype=np.int32)
    if len(sources) == 0:
        _check_mode(mode)
        return dist
    dist[np.arange(len(sources)), sources] = 0
    for hop, nodes, bits in _bfs_levels(graph, sources, mode):
        reached, lane = np.nonzero(_unpack_lanes(bits, len(sources)))
        dist[lane, nodes[reached]] = hop
    return dist


def batch_hop_counts(graph, sources, mode: str = DIRECTED) -> np.ndarray:
    """Pooled hop histogram of the batch: ``counts[h]`` (source, target)
    pairs at distance ``h >= 1``, unreachable pairs excluded.

    Equals the sum over the batch of ``np.bincount(dist[dist > 0])`` on
    the per-source sequential distances — the popcount of each level's
    freshly visited bits, without materialising any distance matrix.
    """
    sources = np.asarray(sources, dtype=np.int64)
    counts: list[int] = [0]
    if len(sources) == 0:
        _check_mode(mode)
        return np.asarray(counts, dtype=np.int64)
    for hop, _nodes, bits in _bfs_levels(graph, sources, mode):
        counts.append(_popcount(bits))
    return np.asarray(counts, dtype=np.int64)


def batch_eccentricities(
    graph, sources, mode: str = DIRECTED
) -> tuple[np.ndarray, np.ndarray]:
    """Per-source eccentricity and the first farthest node.

    Matches the sequential double-sweep bookkeeping: ``ecc[j]`` is
    ``dist.max()`` of source ``j``'s BFS (0 when nothing is reachable)
    and ``far[j]`` the smallest compact index at that distance.
    """
    sources = np.asarray(sources, dtype=np.int64)
    ecc = np.zeros(len(sources), dtype=np.int64)
    far = sources.copy()
    if len(sources) == 0:
        _check_mode(mode)
        return ecc, far
    for hop, nodes, bits in _bfs_levels(graph, sources, mode):
        lanes = _unpack_lanes(bits, len(sources))
        touched = lanes.any(axis=0)
        # nodes is ascending, so argmax picks the smallest node index.
        first = np.argmax(lanes, axis=0)
        ecc[touched] = hop
        far[touched] = nodes[first[touched]]
    return ecc, far
