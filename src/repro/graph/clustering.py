"""Directed clustering coefficient (Section 3.3.3).

The paper defines the clustering coefficient of a node ``u`` over its
*outgoing* neighborhood: with ``k = |OS(u)|`` out-neighbors, the maximum
number of directed edges among them is ``k (k - 1)``, and

    C(u) = (# directed edges among OS(u)) / (k (k - 1)).

Only nodes with ``|OS(u)| > 1`` are considered. The paper computes C over
a random sample of one million nodes; :func:`sampled_clustering` mirrors
that procedure at any scale.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def clustering_coefficient(graph: CSRGraph, node: int) -> float:
    """C(u) for one compact node; NaN when out-degree < 2."""
    outs = graph.out_neighbors(node)
    k = len(outs)
    if k < 2:
        return float("nan")
    links = 0
    for v in outs:
        # Edges v -> w with w also an out-neighbor of u; both arrays sorted.
        links += len(np.intersect1d(graph.out_neighbors(int(v)), outs, assume_unique=True))
    # v -> v cannot exist (no self-loops), so no correction term is needed.
    return links / (k * (k - 1))


def clustering_coefficients(
    graph: CSRGraph, nodes: np.ndarray | None = None
) -> np.ndarray:
    """C(u) for each given compact node (default: all), NaN where undefined."""
    if nodes is None:
        nodes = np.arange(graph.n)
    return np.array([clustering_coefficient(graph, int(u)) for u in nodes])


def sampled_clustering(
    graph: CSRGraph,
    sample_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Clustering coefficients of a random node sample (Figure 4b).

    Samples uniformly among nodes with out-degree > 1 — the paper's
    necessary condition — and returns their C values. When fewer eligible
    nodes exist than requested, all of them are used.
    """
    eligible = np.flatnonzero(graph.out_degrees() > 1)
    if len(eligible) == 0:
        return np.empty(0)
    if sample_size >= len(eligible):
        chosen = eligible
    else:
        chosen = rng.choice(eligible, size=sample_size, replace=False)
    return clustering_coefficients(graph, chosen)


def average_clustering(graph: CSRGraph, sample: np.ndarray | None = None) -> float:
    """Mean C over defined nodes, optionally restricted to a sample."""
    values = clustering_coefficients(graph, sample)
    values = values[~np.isnan(values)]
    if len(values) == 0:
        return float("nan")
    return float(values.mean())
