"""Degree correlations.

Two measures the comparison literature around the paper uses:

* **in/out degree correlation** — Ahn et al. (cited in Section 5) found
  Cyworld's in- and out-degrees "close to each other"; heavy follow-back
  makes the same true of Google+ for ordinary users while celebrities
  break the symmetry;
* **degree assortativity** (Newman) — the Pearson correlation of degrees
  across edge endpoints. Social networks are usually assortative among
  ordinary users, but celebrity hubs followed by low-degree masses push
  measured assortativity negative in follower graphs.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def _pearson(a: np.ndarray, b: np.ndarray) -> float:
    if len(a) < 2 or a.std() == 0 or b.std() == 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])


def in_out_degree_correlation(graph: CSRGraph) -> float:
    """Pearson correlation of (in-degree, out-degree) across nodes."""
    return _pearson(
        graph.in_degrees().astype(float), graph.out_degrees().astype(float)
    )


def degree_assortativity(graph: CSRGraph, mode: str = "out-in") -> float:
    """Degree assortativity over directed edges.

    ``mode`` picks which degrees are correlated across each edge
    ``u -> v``: ``"out-in"`` (source out-degree vs target in-degree, the
    standard directed definition), ``"in-in"``, ``"out-out"`` or
    ``"in-out"``.
    """
    source_kind, target_kind = mode.split("-")
    degrees = {
        "in": graph.in_degrees().astype(float),
        "out": graph.out_degrees().astype(float),
    }
    if source_kind not in degrees or target_kind not in degrees:
        raise ValueError(f"unknown assortativity mode: {mode!r}")
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), graph.out_degrees())
    targets = graph.indices
    return _pearson(degrees[source_kind][sources], degrees[target_kind][targets])


def mean_neighbor_degree(graph: CSRGraph) -> np.ndarray:
    """Average in-degree of each node's out-neighbors (k_nn profile).

    NaN for nodes without out-neighbors. The k_nn-vs-k profile is the
    classic way to visualise assortative mixing.
    """
    in_degrees = graph.in_degrees().astype(float)
    out_degrees = graph.out_degrees()
    sums = np.zeros(graph.n)
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), out_degrees)
    np.add.at(sums, sources, in_degrees[graph.indices])
    with np.errstate(invalid="ignore", divide="ignore"):
        result = sums / out_degrees
    result[out_degrees == 0] = np.nan
    return result
