"""Node- and pair-sampling helpers shared by the analyses.

The paper relies on random sampling for its expensive measurements —
one million nodes for clustering (Fig 4b), up to 10,000 BFS sources for
path lengths (Fig 5), and 20 million random user pairs for the path-mile
baseline (Fig 9a). These helpers centralise seeded, reproducible sampling.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def sample_nodes(
    graph: CSRGraph, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform node sample without replacement (all nodes when size >= n)."""
    if size >= graph.n:
        return np.arange(graph.n)
    return rng.choice(graph.n, size=size, replace=False)


def sample_node_pairs(
    n: int, size: int, rng: np.random.Generator, forbid_equal: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Random (u, v) pairs drawn uniformly with replacement over pairs.

    ``forbid_equal`` resamples the few collisions so u != v, matching the
    "randomly chosen pairs of users (not linked)" baseline of Figure 9a —
    the caller filters out linked pairs separately when required.
    """
    if n < 2 and forbid_equal:
        raise ValueError("need at least two nodes for distinct pairs")
    u = rng.integers(0, n, size=size)
    v = rng.integers(0, n, size=size)
    if forbid_equal:
        clash = u == v
        while clash.any():
            v[clash] = rng.integers(0, n, size=int(clash.sum()))
            clash = u == v
    return u, v


def sample_edges(
    graph: CSRGraph, size: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform sample of directed edges, as (sources, targets) arrays."""
    m = graph.n_edges
    if m == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64)
    chosen = (
        np.arange(m)
        if size >= m
        else rng.choice(m, size=size, replace=False)
    )
    chosen.sort()
    # Recover source of each edge offset from indptr via searchsorted.
    sources = np.searchsorted(graph.indptr, chosen, side="right") - 1
    return sources.astype(np.int64), graph.indices[chosen].astype(np.int64)
