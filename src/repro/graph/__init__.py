"""From-scratch directed-graph library powering the structural analyses."""

from .clustering import (
    average_clustering,
    clustering_coefficient,
    clustering_coefficients,
    sampled_clustering,
)
from .correlations import (
    degree_assortativity,
    in_out_degree_correlation,
    mean_neighbor_degree,
)
from .components import (
    ComponentDecomposition,
    scc_size_ccdf_input,
    strongly_connected_components,
    UnionFind,
    weakly_connected_components,
)
from .csr import CSRGraph
from .degree import (
    ccdf,
    cdf,
    degree_distributions,
    DegreeDistributions,
    EmpiricalCCDF,
)
from .digraph import DiGraph
from .msbfs import (
    batch_eccentricities,
    batch_hop_counts,
    msbfs_distances,
)
from .parallel import BFSEngine, SharedCSR
from .paths import (
    bfs_distances,
    DIRECTED,
    estimate_diameter,
    PathLengthDistribution,
    sampled_path_lengths,
    sampled_path_lengths_sequential,
    UNDIRECTED,
)
from .powerlaw import (
    fit_powerlaw,
    fit_powerlaw_ccdf,
    PowerLawFit,
    sample_powerlaw_degrees,
)
from .reciprocity import (
    global_reciprocity,
    reciprocated_edge_mask,
    reciprocity_cdf_input,
    relation_reciprocity,
)
from .sampling import sample_edges, sample_node_pairs, sample_nodes
from .stats import GraphSummary, summarize_graph
from .triads import (
    transitivity_signature,
    TRIAD_TYPES,
    triad_census_exact,
    triad_census_sampled,
)

__all__ = [
    "average_clustering",
    "batch_eccentricities",
    "batch_hop_counts",
    "bfs_distances",
    "BFSEngine",
    "ccdf",
    "cdf",
    "clustering_coefficient",
    "clustering_coefficients",
    "degree_assortativity",
    "ComponentDecomposition",
    "CSRGraph",
    "degree_distributions",
    "DegreeDistributions",
    "DiGraph",
    "DIRECTED",
    "EmpiricalCCDF",
    "estimate_diameter",
    "fit_powerlaw",
    "fit_powerlaw_ccdf",
    "global_reciprocity",
    "in_out_degree_correlation",
    "mean_neighbor_degree",
    "GraphSummary",
    "msbfs_distances",
    "PathLengthDistribution",
    "PowerLawFit",
    "reciprocated_edge_mask",
    "reciprocity_cdf_input",
    "relation_reciprocity",
    "sample_edges",
    "sample_node_pairs",
    "sample_nodes",
    "sample_powerlaw_degrees",
    "sampled_clustering",
    "sampled_path_lengths",
    "sampled_path_lengths_sequential",
    "scc_size_ccdf_input",
    "SharedCSR",
    "strongly_connected_components",
    "summarize_graph",
    "transitivity_signature",
    "TRIAD_TYPES",
    "triad_census_exact",
    "triad_census_sampled",
    "UnionFind",
    "UNDIRECTED",
    "weakly_connected_components",
]
