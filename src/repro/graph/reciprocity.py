"""Reciprocity metrics (Section 3.3.2).

Two quantities from the paper:

* **Relation Reciprocity** of a node,
  ``RR(u) = |OS(u) ∩ IS(u)| / |OS(u)|`` — the fraction of a user's
  followees that follow back (Equation 1);
* **global reciprocity** — the fraction of all directed edges whose
  reverse edge also exists (32% for Google+ vs 22.1% for Twitter).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def _edge_keys(graph: CSRGraph) -> np.ndarray:
    """Sorted array of ``u * n + v`` keys for every edge, for O(log m) lookup."""
    n = np.int64(graph.n)
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), graph.out_degrees())
    keys = sources * n + graph.indices
    keys.sort()
    return keys


def reciprocated_edge_mask(graph: CSRGraph) -> np.ndarray:
    """Boolean mask over edges (CSR order): True when the reverse exists."""
    n = np.int64(graph.n)
    sources = np.repeat(np.arange(graph.n, dtype=np.int64), graph.out_degrees())
    keys = _edge_keys(graph)
    reverse = graph.indices.astype(np.int64) * n + sources
    pos = np.searchsorted(keys, reverse)
    pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
    return keys[pos] == reverse if len(keys) else np.zeros(0, dtype=bool)


def global_reciprocity(graph: CSRGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.n_edges == 0:
        return 0.0
    return float(reciprocated_edge_mask(graph).mean())


def relation_reciprocity(graph: CSRGraph, nodes: np.ndarray | None = None) -> np.ndarray:
    """RR(u) per node (Equation 1); NaN for nodes with out-degree 0.

    Uses the fact that both adjacency rows are sorted, so the intersection
    size is a linear merge via :func:`numpy.intersect1d`.
    """
    if nodes is None:
        nodes = np.arange(graph.n)
    result = np.full(len(nodes), np.nan)
    for slot, u in enumerate(np.asarray(nodes)):
        outs = graph.out_neighbors(int(u))
        if len(outs) == 0:
            continue
        ins = graph.in_neighbors(int(u))
        mutual = np.intersect1d(outs, ins, assume_unique=True)
        result[slot] = len(mutual) / len(outs)
    return result


def reciprocity_cdf_input(graph: CSRGraph) -> np.ndarray:
    """RR values of all nodes with out-degree > 0 (Figure 4a's sample)."""
    rr = relation_reciprocity(graph)
    return rr[~np.isnan(rr)]
