"""Circles: the contact-management primitive of Google+.

A circle is a labelled group of contacts private to its owner. Adding a
user to any circle creates a directed social link (the paper's edge
``u -> v``) and needs no confirmation from the added user. The platform
distinguishes:

* **out-circles** — users the owner has added (followees),
* **in-circles** — users who added the owner (followers).

Circle *names and memberships* are private; the profile page only exposes
the flattened "In user's circles" / "Have user in circles" lists, each
truncated at :data:`CIRCLE_DISPLAY_LIMIT` entries (Section 2.2) while still
reporting the true count — which is what lets the crawler estimate lost
edges. Ordinary accounts may not add more than :data:`OUT_CIRCLE_LIMIT`
contacts in total; Google whitelisted some special users past the cap,
which the simulator models explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CircleLimitError, UnknownCircleError

#: Maximum number of users shown in a public circle list (Section 2.2).
CIRCLE_DISPLAY_LIMIT = 10_000

#: Out-circle size cap for ordinary accounts (Section 3.3.1 conjecture).
OUT_CIRCLE_LIMIT = 5_000

#: Default circle created for every account.
DEFAULT_CIRCLE = "friends"


@dataclass
class CircleStore:
    """All circles owned by one user.

    ``members_by_circle`` maps circle name to an insertion-ordered member
    dict used as an ordered set; ``all_members`` caches the union so that
    the out-degree check and flattened list are O(1) amortised.
    """

    owner_id: int
    exempt_from_limit: bool = False
    members_by_circle: dict[str, dict[int, None]] = field(default_factory=dict)
    all_members: dict[int, None] = field(default_factory=dict)

    def create_circle(self, name: str) -> None:
        """Create an empty circle; creating an existing name is a no-op."""
        self.members_by_circle.setdefault(name, {})

    def circle_names(self) -> list[str]:
        return list(self.members_by_circle)

    def add(self, target_id: int, circle: str = DEFAULT_CIRCLE) -> bool:
        """Add ``target_id`` to a circle, creating the circle if needed.

        Returns True when a *new* social link was formed (the target was
        in no circle of this owner before), False when the target merely
        joined an additional circle. Raises :class:`CircleLimitError` when
        a non-exempt owner would exceed :data:`OUT_CIRCLE_LIMIT` distinct
        contacts.
        """
        if target_id == self.owner_id:
            raise ValueError("users cannot add themselves to their own circles")
        is_new_contact = target_id not in self.all_members
        if (
            is_new_contact
            and not self.exempt_from_limit
            and len(self.all_members) >= OUT_CIRCLE_LIMIT
        ):
            raise CircleLimitError(self.owner_id, OUT_CIRCLE_LIMIT)
        self.members_by_circle.setdefault(circle, {})[target_id] = None
        self.all_members[target_id] = None
        return is_new_contact

    def extend(self, target_ids, circle: str = DEFAULT_CIRCLE) -> list[int]:
        """Batch :meth:`add`: validate once, then insert in a tight loop.

        Unlike repeated ``add`` calls, all validation (self-adds, the
        out-circle cap) happens up front, so a failing batch mutates
        nothing — and a succeeding batch leaves the store in exactly the
        state the equivalent ``add`` sequence would. Returns the targets
        that became *new* contacts, in first-added order.
        """
        target_ids = [int(t) for t in target_ids]
        if not target_ids:
            # Zero add() calls create nothing — neither may an empty
            # batch, or a phantom empty circle appears in circle_names().
            return []
        owner_id = self.owner_id
        all_members = self.all_members
        if any(t == owner_id for t in target_ids):
            raise ValueError("users cannot add themselves to their own circles")
        if not self.exempt_from_limit:
            new_count = len({t for t in target_ids if t not in all_members})
            if len(all_members) + new_count > OUT_CIRCLE_LIMIT:
                raise CircleLimitError(owner_id, OUT_CIRCLE_LIMIT)
        members = self.members_by_circle.setdefault(circle, {})
        new_contacts: list[int] = []
        for t in target_ids:
            if t not in all_members:
                new_contacts.append(t)
            members[t] = None
            all_members[t] = None
        return new_contacts

    def remove(self, target_id: int, circle: str | None = None) -> bool:
        """Remove a contact from one circle, or from all circles.

        Returns True when an *existing* social link disappeared entirely
        (the target was in some circle and is now in none). Removing a
        target that was never a contact returns False — callers key
        follower-list cleanup off this, so a spurious True would claim a
        link died that never existed.
        """
        was_linked = target_id in self.all_members
        if circle is not None:
            if circle not in self.members_by_circle:
                raise UnknownCircleError(self.owner_id, circle)
            self.members_by_circle[circle].pop(target_id, None)
        else:
            for members in self.members_by_circle.values():
                members.pop(target_id, None)
        still_linked = any(
            target_id in members for members in self.members_by_circle.values()
        )
        if not still_linked:
            self.all_members.pop(target_id, None)
        return was_linked and not still_linked

    def contains(self, target_id: int) -> bool:
        """True when the target is in at least one circle of this owner."""
        return target_id in self.all_members

    def member_of(self, target_id: int, circle: str) -> bool:
        """True when the target is in the named circle (missing = False).

        The read primitive behind CUSTOM privacy checks: callers go
        through this instead of reaching into ``members_by_circle`` so
        alternative stores can answer without materializing dicts.
        """
        return target_id in self.members_by_circle.get(circle, ())

    def circles_of(self, target_id: int) -> list[str]:
        """Names of the owner's circles containing the target."""
        return [
            name
            for name, members in self.members_by_circle.items()
            if target_id in members
        ]

    def out_degree(self) -> int:
        """Number of distinct contacts across all circles."""
        return len(self.all_members)

    def flattened(self) -> list[int]:
        """All distinct contacts, in first-added order."""
        return list(self.all_members)
