"""Registry of Google+ profile fields (Table 2 of the paper).

The paper enumerates seventeen profile attributes, of which only three
("relationship", "looking for" and gender) are *restricted* — the user
chooses among fixed options — while the rest are free-form *open* fields.
The "name" field is mandatory and always public.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FieldKind(enum.Enum):
    """Whether a field offers fixed choices or free-form text."""

    RESTRICTED = "restricted"
    OPEN = "open"


@dataclass(frozen=True)
class FieldSpec:
    """Static description of one profile field.

    Attributes:
        key: machine name used in profile dictionaries and page documents.
        label: human-readable label as printed in Table 2 of the paper.
        kind: restricted (fixed options) or open (free text).
        mandatory: True only for the name field, which cannot be hidden.
        contact: True for the two contact blocks (work / home), which the
            paper excludes when counting "fields shared" (Figures 2 and 8).
    """

    key: str
    label: str
    kind: FieldKind = FieldKind.OPEN
    mandatory: bool = False
    contact: bool = False


#: All seventeen profile attributes, in Table 2 order.
FIELD_SPECS: tuple[FieldSpec, ...] = (
    FieldSpec("name", "Name", mandatory=True),
    FieldSpec("gender", "Gender", kind=FieldKind.RESTRICTED),
    FieldSpec("education", "Education"),
    FieldSpec("places_lived", "Places lived"),
    FieldSpec("employment", "Employment"),
    FieldSpec("phrase", "Phrase"),
    FieldSpec("other_profiles", "Other profiles"),
    FieldSpec("occupation", "Occupation"),
    FieldSpec("contributor_to", "Contributor to"),
    FieldSpec("introduction", "Introduction"),
    FieldSpec("other_names", "Other names"),
    FieldSpec("relationship", "Relationship", kind=FieldKind.RESTRICTED),
    FieldSpec("bragging_rights", "Braggin rights"),
    FieldSpec("recommended_links", "Recommended links"),
    FieldSpec("looking_for", "Looking for", kind=FieldKind.RESTRICTED),
    FieldSpec("work_contact", "Work (contact)", contact=True),
    FieldSpec("home_contact", "Home (contact)", contact=True),
)

#: Lookup by machine key.
FIELDS_BY_KEY: dict[str, FieldSpec] = {spec.key: spec for spec in FIELD_SPECS}

#: Field keys counted by Figures 2 and 8 ("fields shared", contacts excluded).
COUNTABLE_FIELD_KEYS: tuple[str, ...] = tuple(
    spec.key for spec in FIELD_SPECS if not spec.contact
)

#: Field keys a user may hide (everything but the mandatory name).
OPTIONAL_FIELD_KEYS: tuple[str, ...] = tuple(
    spec.key for spec in FIELD_SPECS if not spec.mandatory
)


def field_label(key: str) -> str:
    """Return the Table 2 label for a field key."""
    return FIELDS_BY_KEY[key].label
