"""Public profile-page documents — what the crawler actually sees.

A :class:`ProfilePage` is the structured equivalent of the HTML page the
authors scraped: the mandatory name, every field whose privacy admits the
viewer, and the two flattened circle lists ("Have user in circles" /
"In user's circles"), each truncated at the display limit but accompanied
by the *true* count, which Section 2.2 uses to estimate lost edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .circles import CIRCLE_DISPLAY_LIMIT


@dataclass(frozen=True)
class CircleListView:
    """One flattened, possibly truncated circle list on a profile page."""

    user_ids: tuple[int, ...]
    declared_count: int

    def __post_init__(self) -> None:
        if self.declared_count < len(self.user_ids):
            raise ValueError("declared count cannot be below the shown list")

    @property
    def truncated(self) -> bool:
        return self.declared_count > len(self.user_ids)


@dataclass(frozen=True)
class ProfilePage:
    """The publicly served document for one user profile.

    ``fields`` holds only the values visible to the requesting viewer
    (an anonymous crawler sees PUBLIC fields only). The circle lists are
    ``None`` when the owner hides them.
    """

    user_id: int
    name: str
    fields: dict[str, Any] = field(default_factory=dict)
    in_list: CircleListView | None = None
    out_list: CircleListView | None = None

    def visible_field_keys(self) -> list[str]:
        """All field keys on the page, name included."""
        return ["name", *self.fields]


def truncate_list(user_ids: list[int], limit: int = CIRCLE_DISPLAY_LIMIT) -> CircleListView:
    """Apply the circle-list display cap, preserving the true count."""
    return CircleListView(tuple(user_ids[:limit]), len(user_ids))
