"""The simulated Google+ service.

This is the substrate the paper measures: account signup (invitation-only
field trial, then open signup), circle management with the out-circle cap
and whitelist, follower tracking, per-field privacy enforcement, and the
public profile pages the crawler scrapes. A lightweight content layer
(posts with circle-scoped visibility, reshares and +1s) rounds out the
platform description of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .circles import CIRCLE_DISPLAY_LIMIT, CircleStore, DEFAULT_CIRCLE
from .errors import (
    AlreadyRegisteredError,
    SignupClosedError,
    UnknownUserError,
)
from .http import STATUS_NOT_FOUND, STATUS_OK
from .models import UserProfile
from .pages import ProfilePage, truncate_list
from .privacy import Visibility


@dataclass(frozen=True)
class Notification:
    """An in-app notification.

    Section 2.1: "A user can identify all the others who included the
    user in their circles (i.e., followers), because the user receives a
    notification when someone adds him to a circle."
    """

    kind: str
    actor_id: int
    subject_id: int | None = None


@dataclass
class Post:
    """A stream item: content shared to a set of the author's circles.

    ``to_circles`` of ``None`` means shared publicly.
    """

    post_id: int
    author_id: int
    content: str
    to_circles: frozenset[str] | None = None
    plus_ones: set[int] = field(default_factory=set)
    reshared_from: int | None = None


@dataclass
class _Account:
    """Internal per-user record: profile, circles, and follower index."""

    profile: UserProfile
    circles: CircleStore
    followers: dict[int, None] = field(default_factory=dict)
    notifications: list[Notification] = field(default_factory=list)


class GooglePlusService:
    """In-process simulation of the Google+ social networking service."""

    def __init__(
        self,
        open_signup: bool = False,
        circle_display_limit: int = CIRCLE_DISPLAY_LIMIT,
    ):
        if circle_display_limit < 1:
            raise ValueError("circle display limit must be positive")
        self._accounts: dict[int, _Account] = {}
        self._posts: dict[int, Post] = {}
        self._next_post_id = 1
        self.open_signup = open_signup
        self.circle_display_limit = circle_display_limit

    # -- account lifecycle -------------------------------------------------

    def register(
        self,
        profile: UserProfile,
        invited_by: int | None = None,
        exempt_from_circle_limit: bool = False,
    ) -> None:
        """Create an account.

        During the field trial (``open_signup`` False) a valid inviter who
        is already a member is required, mirroring the invitation-viral
        growth phase described in Section 2.1.
        """
        if profile.user_id in self._accounts:
            raise AlreadyRegisteredError(profile.user_id)
        if not self.open_signup:
            if invited_by is None:
                raise SignupClosedError(
                    "signups are invitation-only during the field trial"
                )
            if invited_by not in self._accounts:
                raise UnknownUserError(invited_by)
        store = CircleStore(profile.user_id, exempt_from_limit=exempt_from_circle_limit)
        store.create_circle(DEFAULT_CIRCLE)
        self._accounts[profile.user_id] = _Account(profile=profile, circles=store)

    def enable_open_signup(self) -> None:
        """End the field trial: anyone may sign up (September 20th, 2011)."""
        self.open_signup = True

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def user_ids(self) -> Iterator[int]:
        return iter(self._accounts)

    def profile(self, user_id: int) -> UserProfile:
        return self._account(user_id).profile

    def _account(self, user_id: int) -> _Account:
        try:
            return self._accounts[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    # -- circles / social links --------------------------------------------

    def add_to_circle(
        self, user_id: int, target_id: int, circle: str = DEFAULT_CIRCLE
    ) -> bool:
        """``user_id`` adds ``target_id`` to a circle (no confirmation needed).

        Returns True when a new directed social link was created.
        """
        account = self._account(user_id)
        target = self._account(target_id)
        is_new_link = account.circles.add(target_id, circle)
        if is_new_link:
            target.followers[user_id] = None
            # Section 2.1: the added user is notified (circle name stays
            # private — only the fact of the add is revealed).
            target.notifications.append(
                Notification(kind="added_to_circle", actor_id=user_id)
            )
        return is_new_link

    def remove_from_circle(
        self, user_id: int, target_id: int, circle: str | None = None
    ) -> bool:
        """Remove a contact from one circle (or all). True if the link died."""
        account = self._account(user_id)
        link_removed = account.circles.remove(target_id, circle)
        if link_removed:
            self._account(target_id).followers.pop(user_id, None)
        return link_removed

    def followees(self, user_id: int) -> list[int]:
        """Users ``user_id`` has in circles ("In user's circles")."""
        return self._account(user_id).circles.flattened()

    def followers(self, user_id: int) -> list[int]:
        """Users that have ``user_id`` in circles ("Have user in circles")."""
        return list(self._account(user_id).followers)

    def out_degree(self, user_id: int) -> int:
        return self._account(user_id).circles.out_degree()

    def in_degree(self, user_id: int) -> int:
        return len(self._account(user_id).followers)

    # -- privacy-aware profile views ----------------------------------------

    def can_view_field(self, owner_id: int, viewer_id: int | None, key: str) -> bool:
        """Decide whether ``viewer_id`` (None = anonymous) may see a field."""
        if key == "name":
            return True
        owner = self._account(owner_id)
        entry = owner.profile.fields.get(key)
        if entry is None:
            return False
        if viewer_id == owner_id:
            return True
        visibility = entry.privacy.visibility
        if visibility is Visibility.PUBLIC:
            return True
        if viewer_id is None:
            return False
        if visibility is Visibility.ONLY_YOU:
            return False
        if visibility is Visibility.YOUR_CIRCLES:
            return owner.circles.contains(viewer_id)
        if visibility is Visibility.EXTENDED_CIRCLES:
            if owner.circles.contains(viewer_id):
                return True
            return any(
                self._account(contact).circles.contains(viewer_id)
                for contact in owner.circles.flattened()
            )
        # CUSTOM: the viewer must be in one of the named circles.
        return any(
            viewer_id in owner.circles.members_by_circle.get(name, {})
            for name in entry.privacy.custom_circles
        )

    def profile_page(self, user_id: int, viewer_id: int | None = None) -> ProfilePage:
        """Render the profile page as seen by ``viewer_id`` (None = crawler)."""
        account = self._account(user_id)
        profile = account.profile
        visible = {
            key: entry.value
            for key, entry in profile.fields.items()
            if self.can_view_field(user_id, viewer_id, key)
        }
        in_list = out_list = None
        if profile.lists_public or viewer_id == user_id:
            in_list = truncate_list(list(account.followers), self.circle_display_limit)
            out_list = truncate_list(
                account.circles.flattened(), self.circle_display_limit
            )
        return ProfilePage(
            user_id=user_id,
            name=profile.name,
            fields=visible,
            in_list=in_list,
            out_list=out_list,
        )

    # -- content layer (stream, +1, reshare) --------------------------------

    def publish(
        self,
        author_id: int,
        content: str,
        to_circles: frozenset[str] | None = None,
        reshared_from: int | None = None,
    ) -> Post:
        """Publish a post to the author's stream, optionally circle-scoped."""
        account = self._account(author_id)
        if to_circles is not None:
            unknown = to_circles - set(account.circles.circle_names())
            if unknown:
                raise ValueError(f"author has no circles named {sorted(unknown)}")
        if reshared_from is not None and reshared_from not in self._posts:
            raise KeyError(f"unknown post id: {reshared_from}")
        post = Post(
            post_id=self._next_post_id,
            author_id=author_id,
            content=content,
            to_circles=to_circles,
            reshared_from=reshared_from,
        )
        self._next_post_id += 1
        self._posts[post.post_id] = post
        return post

    def notifications(self, user_id: int, clear: bool = False) -> list[Notification]:
        """The user's notification feed (optionally consuming it)."""
        account = self._account(user_id)
        items = list(account.notifications)
        if clear:
            account.notifications.clear()
        return items

    def plus_one(self, user_id: int, post_id: int) -> None:
        """Record a +1: a public recommendation of a post."""
        self._account(user_id)
        try:
            post = self._posts[post_id]
        except KeyError:
            raise KeyError(f"unknown post id: {post_id}") from None
        if user_id not in post.plus_ones:
            post.plus_ones.add(user_id)
            self._account(post.author_id).notifications.append(
                Notification(kind="plus_one", actor_id=user_id, subject_id=post_id)
            )

    def can_view_post(self, post_id: int, viewer_id: int | None) -> bool:
        """Circle-scoped posts are visible to members of the named circles."""
        post = self._posts[post_id]
        if post.to_circles is None:
            return True
        if viewer_id is None:
            return False
        if viewer_id == post.author_id:
            return True
        author = self._account(post.author_id)
        return any(
            viewer_id in author.circles.members_by_circle.get(name, {})
            for name in post.to_circles
        )

    def stream_for(self, viewer_id: int) -> list[Post]:
        """Posts flowing into a user's stream from the circles they follow."""
        followed = set(self.followees(viewer_id))
        return [
            post
            for post in self._posts.values()
            if post.author_id in followed and self.can_view_post(post.post_id, viewer_id)
        ]

    # -- HTTP handler ---------------------------------------------------------

    def handle_path(self, path: str) -> tuple[int, ProfilePage | None]:
        """Serve ``/u/<id>`` paths for :class:`repro.platform.http.HttpFrontend`."""
        if not path.startswith("/u/"):
            return STATUS_NOT_FOUND, None
        try:
            user_id = int(path[3:])
        except ValueError:
            return STATUS_NOT_FOUND, None
        if user_id not in self._accounts:
            return STATUS_NOT_FOUND, None
        return STATUS_OK, self.profile_page(user_id, viewer_id=None)
